//! End-to-end pin of the closed calibration loop: the pinned d = 3 / d = 5
//! memory + transversal-CNOT sweeps run through the cached orchestrator,
//! the (α, Λ) fit anchors `p_thres = Λ·p_phys` at the sweep's own noise,
//! and the calibrated model drives the Shor optimizer to a
//! simulation-calibrated RSA-2048 estimate — with exact failure-count
//! anchors, bit-identical records at 1/2/8 point workers, and a warm-cache
//! replay that samples nothing.

use raa::core::ErrorModelParams;
use raa::shor::{TransversalArchitecture, DEFAULT_TOTAL_BUDGET};
use raa::sim::{calibrate, Calibration, CalibrationConfig};
use std::fs;
use std::path::PathBuf;

fn temp_cache(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raa-e2e-cal-{tag}-{}", std::process::id()))
}

fn record_json(cal: &Calibration) -> Vec<String> {
    cal.memory_records
        .iter()
        .chain(&cal.cnot_records)
        .map(|r| r.to_json())
        .collect()
}

#[test]
fn calibration_loop_pins_counts_fit_and_headline_estimate() {
    let dir = temp_cache("pin");
    let _ = fs::remove_dir_all(&dir);
    let cfg = CalibrationConfig {
        cache_dir: Some(dir.clone()),
        ..CalibrationConfig::default()
    };

    // --- Cold run: every point sampled, anchors exact -------------------
    let cold = calibrate(&cfg).expect("default calibration is fittable");
    assert_eq!(cold.cached_points, 0);
    assert_eq!(cold.fresh_points, 10);
    assert_eq!(cold.fresh_shots, 2 * 20_000 + 8 * 6_000);
    // Deterministic engine ⇒ exact failure counts (the same pins as
    // crates/sim/tests/pinned_sweep.rs — the calibration grids reuse those
    // seeds; re-pin on a vendored-RNG or default-sampler swap).
    let memory_failures: Vec<usize> = cold.memory_records.iter().map(|r| r.failures).collect();
    assert_eq!(memory_failures, vec![887, 582], "memory anchors drifted");
    assert_eq!(cold.cnot_records[1].failures, 2375, "d=3, x=1 drifted");
    assert_eq!(cold.cnot_records[7].failures, 723, "d=5, x=4 drifted");

    // --- Fit: threshold anchored at the sweep's p, not the paper's 1% ---
    assert!(
        (cold.params.p_thres - cold.fit.lambda * cfg.p_phys).abs() < 1e-15,
        "p_thres must be Lambda * p_phys"
    );
    assert_eq!(cold.params.p_phys, cfg.p_phys);
    assert!(
        (1.5..6.0).contains(&cold.fit.lambda),
        "union-find at p = 4e-3 sits near Lambda ~ 2.4, got {}",
        cold.fit.lambda
    );
    let lambda_mem = cold.lambda_memory.expect("two distances");
    assert!(
        (0.5..2.0).contains(&(cold.fit.lambda / lambda_mem)),
        "joint fit {} vs memory anchor {lambda_mem}",
        cold.fit.lambda
    );

    // --- Warm cache: byte-identical replay, zero sampling ---------------
    let warm = calibrate(&cfg).expect("warm calibration");
    assert_eq!(warm.fresh_shots, 0, "warm cache must sample nothing");
    assert_eq!(warm.fresh_points, 0);
    assert_eq!(warm.cached_points, 10);
    assert_eq!(
        record_json(&warm),
        record_json(&cold),
        "byte-identical replay"
    );
    assert_eq!(warm.fit, cold.fit);

    // --- Calibrated Shor estimate inside the headline tolerance ---------
    let (arch, est) = TransversalArchitecture::calibrated(cold.params);
    assert_eq!(arch.error.p_phys, 1e-3, "re-anchored at hardware noise");
    assert_eq!(arch.error.p_thres, cold.params.p_thres);
    assert!(est.total_error <= DEFAULT_TOTAL_BUDGET);
    assert!(
        est.qubits < 25e6,
        "calibrated qubits = {} off the paper's headline band",
        est.qubits
    );
    assert!(
        est.expected_days() < 7.0,
        "calibrated runtime = {} days off the paper's headline band",
        est.expected_days()
    );
    // And the calibrated point stays commensurate with the paper-assumed
    // model (the calibrated threshold lands near the assumed 1%).
    let (_, paper_est) = TransversalArchitecture::calibrated(ErrorModelParams::paper());
    assert!((0.5..2.0).contains(&(est.qubits / paper_est.qubits)));
    assert!((0.5..2.0).contains(&(est.expected_days() / paper_est.expected_days())));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn calibration_is_bit_identical_across_point_workers() {
    // Uncached runs at 1, 2 and 8 concurrent grid points must produce
    // byte-identical records (the engine's determinism contract lifted to
    // the orchestrator's point axis). Reduced shot budgets keep the three
    // full samplings cheap; bit-identity is budget-independent.
    let mut cfg = CalibrationConfig {
        memory_shots: 4_000,
        cnot_shots: 1_500,
        cache_dir: None,
        ..CalibrationConfig::default()
    };

    cfg.point_threads = 1;
    let serial = calibrate(&cfg).expect("serial calibration");
    assert_eq!(serial.fresh_shots, 2 * 4_000 + 8 * 1_500);
    for threads in [2usize, 8] {
        cfg.point_threads = threads;
        let parallel = calibrate(&cfg).expect("parallel calibration");
        assert_eq!(
            record_json(&parallel),
            record_json(&serial),
            "point_threads = {threads}"
        );
        assert_eq!(parallel.fit, serial.fit);
    }
}
