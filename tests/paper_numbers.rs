//! Integration tests pinning the reproduction to the paper's quantitative
//! claims (the EXPERIMENTS.md checklist). Each test names the paper location
//! it checks.

use raa::core::{logical, ErrorModelParams};
use raa::factory::CczFactory;
use raa::physics::{move_time, CycleModel, PhysicalParams};
use raa::shor::{
    AlgorithmParams, BeverlandModel, FactoringInstance, GidneyEkeraModel, TransversalArchitecture,
};
use raa::surface::code832;

/// Abstract / §IV.2: 19 million qubits, 5.6 days for 2048-bit factoring.
#[test]
fn headline_19m_qubits_5p6_days() {
    let est = TransversalArchitecture::paper().estimate();
    let mq = est.qubits / 1e6;
    let days = est.expected_days();
    assert!((14.0..24.0).contains(&mq), "qubits = {mq}M (paper: 19M)");
    assert!((4.5..7.0).contains(&days), "days = {days} (paper: 5.6)");
}

/// Abstract / Fig. 2: close to 50x run-time speed-up over existing estimates
/// with similar assumptions, with no increase in space footprint.
#[test]
fn fifty_x_speedup_at_same_footprint() {
    let ours = TransversalArchitecture::paper().estimate();
    let ge = GidneyEkeraModel::atom_array(1e-3);
    let speedup = ge.runtime_seconds() / ours.expected_seconds();
    assert!(
        (20.0..100.0).contains(&speedup),
        "speed-up = {speedup} (paper: ~50x)"
    );
    assert!(
        ours.qubits <= ge.qubits() * 1.1,
        "space footprint must not increase: {:.1}M vs {:.1}M",
        ours.qubits / 1e6,
        ge.qubits() / 1e6
    );
}

/// §IV.2: ~1.07e6 lookup-additions, 0.17 s lookups, 0.28 s additions.
#[test]
fn operation_counts_and_times() {
    let est = TransversalArchitecture::paper().estimate();
    let la = est.lookup_additions as f64;
    assert!((1.0e6..1.15e6).contains(&la), "lookup-additions = {la}");
    assert!(
        (est.lookup_seconds - 0.17).abs() < 0.03,
        "lookup = {} s",
        est.lookup_seconds
    );
    assert!(
        (est.addition_seconds - 0.28).abs() < 0.03,
        "addition = {} s",
        est.addition_seconds
    );
}

/// §III.6: ~3e9 CCZ states; 5% CCZ budget → 1.6e-11 per CCZ → 7.7e-7 per T.
#[test]
fn magic_state_chain() {
    let est = TransversalArchitecture::paper().estimate();
    assert!(
        (2.5e9..3.6e9).contains(&est.ccz_total),
        "CCZ total = {:.2e}",
        est.ccz_total
    );
    let ctx = TransversalArchitecture::paper().context();
    let factory = CczFactory::for_target(&ctx, 1.6e-11).unwrap();
    let p_t = factory.t_input_error();
    assert!(
        (5e-7..9.5e-7).contains(&p_t),
        "per-T error = {p_t:.2e} (paper: 7.7e-7)"
    );
}

/// Eq. (8): p_out = 28 p_in², verified by exact enumeration.
#[test]
fn factory_suppression_coefficient() {
    let (w2, _, _, _) = code832::harmful_pattern_counts();
    assert_eq!(w2, 28);
    let p = 1e-5;
    assert!((code832::output_error_exact(p) / (28.0 * p * p) - 1.0).abs() < 0.01);
}

/// Eq. (5) / §III.4: effective thresholds 0.86% (α = 1/6) and 0.67% (α = 1/2)
/// at one CNOT per SE round.
#[test]
fn effective_thresholds() {
    let p = ErrorModelParams::paper();
    assert!((logical::effective_threshold(&p, 1.0) * 100.0 - 0.857).abs() < 0.01);
    let p2 = ErrorModelParams::paper().with_alpha(0.5);
    assert!((logical::effective_threshold(&p2, 1.0) * 100.0 - 0.667).abs() < 0.01);
}

/// Fig. 6(b) / Fig. 11(a): the optimal schedule is ≲ 1 SE round per CNOT.
#[test]
fn optimal_se_rounds_per_cnot() {
    let p = ErrorModelParams::paper();
    let x_opt = logical::optimal_cnots_per_round(&p, 1e-12);
    assert!(x_opt >= 0.5, "x_opt = {x_opt} (rounds per CNOT ≤ ~2)");
}

/// Table I + §IV.2 derived timing: gates ≈ 400 µs, patch move ≈ 500 µs ≈
/// measurement, QEC cycle ≈ 1 ms, reaction 1 ms, Eq. (1) calibration point.
#[test]
fn table1_derived_timing() {
    let p = PhysicalParams::default();
    assert!((move_time(&p, 55e-6) - 200e-6).abs() < 3e-6);
    let cycle = CycleModel::new(&p, 27);
    assert!((cycle.gate_segment() - 0.4e-3).abs() < 0.05e-3);
    assert!((cycle.patch_move_time() - 0.5e-3).abs() < 0.03e-3);
    assert!(cycle.cycle_time() < 1.05e-3);
    assert!((p.reaction_time() - 1e-3).abs() < 1e-12);
}

/// Table II: the optimizer's region and the paper's fixed choice agree.
#[test]
fn table2_parameters() {
    let paper = AlgorithmParams::paper_table2();
    assert_eq!(
        (
            paper.w_exp,
            paper.w_mul,
            paper.r_sep,
            paper.r_pad,
            paper.distance
        ),
        (3, 4, 96, 43, 27)
    );
    // The paper choice stays within the failure budget at its distance.
    let est = TransversalArchitecture::paper().estimate();
    assert!(est.total_error < 0.10, "p_fail = {}", est.total_error);
}

/// §V / Fig. 2: the Beverland-style estimate is year-scale at atomic
/// timescales and exceeds the GE19 rescaling.
#[test]
fn baseline_ordering() {
    let bev = BeverlandModel::atomic_reference();
    assert!(bev.runtime_seconds() > 365.0 * 86_400.0);
    let ge = GidneyEkeraModel::atom_array(1e-3);
    assert!(bev.space_time().volume() > ge.space_time().volume());
}

/// §IV.2: GE19 at their superconducting reference reproduces ~20M/8h.
#[test]
fn ge19_reference_point() {
    let m = GidneyEkeraModel::superconducting_reference();
    assert!((m.qubits() - 20e6).abs() < 1e3);
    let hours = m.runtime_seconds() / 3600.0;
    assert!((5.0..11.0).contains(&hours), "hours = {hours}");
}

/// Fig. 14(d): a 15 M-qubit cap is feasible; far tighter caps degrade volume.
#[test]
fn qubit_constrained_knee() {
    use raa::shor::sensitivity::sweep_qubit_cap;
    let base = TransversalArchitecture::paper();
    let pts = sweep_qubit_cap(&base, &[15e6, 30e6]);
    assert!(pts[0].estimate.qubits <= 15e6);
    // The generous-cap configuration is at least as fast.
    assert!(pts[1].estimate.expected_seconds() <= pts[0].estimate.expected_seconds() * 1.01);
}

/// Instance sanity: larger moduli cost strictly more.
#[test]
fn scaling_with_modulus() {
    let mut a = TransversalArchitecture::paper();
    a.instance = FactoringInstance::new(1024);
    let small = a.estimate();
    let big = TransversalArchitecture::paper().estimate();
    assert!(small.space_time().volume() < big.space_time().volume());
}
