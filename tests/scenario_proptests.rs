//! Property-based cross-validation of the factory/gadget scenario circuits:
//! random protocol/kind, depth and deterministic Pauli injections, checked
//! between the exact tableau simulator and the bit-packed Pauli-frame
//! sampler.
//!
//! The scheduled-CNOT skeletons are built at zero noise plus p = 1 Pauli
//! injections placed after random SE rounds, so the frame sampler's
//! measurement flips are unique and the contract is exactly testable (the
//! `crates/stabsim/tests/cross_validation.rs` argument, applied to the real
//! scenario builders instead of random gate soup): replaying the circuit
//! through the tableau while steering every random outcome to
//! `reference ⊕ flip` must find every deterministic measurement equal to
//! the frame sampler's prediction, and every detector/observable bit must
//! agree between the engines.

use proptest::prelude::*;
use raa::stabsim::circuit::OpKind;
use raa::stabsim::{Circuit, FrameSim, MeasureResult, TableauSim};
use raa::surface::{Basis, NoiseModel, PauliInjection, ScheduledCnotExperiment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn zero_noise() -> NoiseModel {
    NoiseModel {
        p2: 0.0,
        p_idle: 0.0,
        p_prep: 0.0,
        p_meas: 0.0,
    }
}

/// Picks one of the six scheduled-CNOT skeleton families. Gadget widths are
/// drawn from `width_raw` (Adder accepts width ≥ 1, Lookup/Fanout ≥ 2).
fn skeleton(which: usize, width_raw: usize) -> (usize, Vec<Vec<(usize, usize)>>) {
    use raa::factory::FactoryProtocol;
    use raa::gadgets::GadgetKind;
    match which % 6 {
        0 => (
            FactoryProtocol::Distill15.patches(),
            FactoryProtocol::Distill15.schedule(),
        ),
        1 => (
            FactoryProtocol::Ccz.patches(),
            FactoryProtocol::Ccz.schedule(),
        ),
        2 => (
            FactoryProtocol::Cultivation.patches(),
            FactoryProtocol::Cultivation.schedule(),
        ),
        n => {
            let kind = [GadgetKind::Adder, GadgetKind::Lookup, GadgetKind::Fanout][n - 3];
            let width = 2 + width_raw % 3;
            (kind.patches(width), kind.schedule(width))
        }
    }
}

/// Deterministic tableau replay: applies p = 1 Pauli channels as gates,
/// skips p = 0 channels (the zero-noise builder still emits them) and
/// steers every random measurement to `desired`.
fn tableau_replay(circuit: &Circuit, desired: &[bool]) -> Vec<MeasureResult> {
    let mut sim = TableauSim::new(circuit.num_qubits() as usize);
    let mut out: Vec<MeasureResult> = Vec::new();
    for op in circuit.ops() {
        match op.kind {
            OpKind::X => op.targets.iter().for_each(|&q| sim.x_gate(q as usize)),
            OpKind::Y => op.targets.iter().for_each(|&q| sim.y_gate(q as usize)),
            OpKind::Z => op.targets.iter().for_each(|&q| sim.z_gate(q as usize)),
            OpKind::H => op.targets.iter().for_each(|&q| sim.h(q as usize)),
            OpKind::S => op.targets.iter().for_each(|&q| sim.s(q as usize)),
            OpKind::SDag => op.targets.iter().for_each(|&q| sim.s_dag(q as usize)),
            OpKind::SqrtX => op.targets.iter().for_each(|&q| sim.sqrt_x(q as usize)),
            OpKind::SqrtXDag => op.targets.iter().for_each(|&q| sim.sqrt_x_dag(q as usize)),
            OpKind::CX => op.pairs().for_each(|(a, b)| sim.cx(a as usize, b as usize)),
            OpKind::CZ => op.pairs().for_each(|(a, b)| sim.cz(a as usize, b as usize)),
            OpKind::Swap => op
                .pairs()
                .for_each(|(a, b)| sim.swap(a as usize, b as usize)),
            OpKind::R => op.targets.iter().for_each(|&q| sim.reset(q as usize)),
            OpKind::RX => op.targets.iter().for_each(|&q| sim.reset_x(q as usize)),
            OpKind::XError | OpKind::ZError | OpKind::YError => {
                assert!(
                    op.arg == 0.0 || op.arg == 1.0,
                    "deterministic replay needs p in {{0, 1}}"
                );
                if op.arg == 1.0 {
                    for &q in &op.targets {
                        match op.kind {
                            OpKind::XError => sim.x_gate(q as usize),
                            OpKind::ZError => sim.z_gate(q as usize),
                            _ => sim.y_gate(q as usize),
                        }
                    }
                }
            }
            OpKind::Depolarize1 | OpKind::Depolarize2 => {
                assert!(op.arg == 0.0, "deterministic replay needs p = 0 depolarize");
            }
            OpKind::Tick => {}
            OpKind::M => {
                for &q in &op.targets {
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    out.push(m);
                }
            }
            OpKind::MX => {
                for &q in &op.targets {
                    sim.h(q as usize);
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    sim.h(q as usize);
                    out.push(m);
                }
            }
            OpKind::MR => {
                for &q in &op.targets {
                    let m = sim.measure_desired(q as usize, desired[out.len()]);
                    if m.value {
                        sim.x_gate(q as usize);
                    }
                    out.push(m);
                }
            }
        }
    }
    out
}

fn check_agreement(c: &Circuit, injected: bool) {
    let reference = TableauSim::reference_sample(c);
    // One shot suffices: every channel is p ∈ {0, 1}, so the flips are
    // unique.
    let flip_rows = FrameSim::sample_measurement_flips(c, 1, &mut StdRng::seed_from_u64(1));
    let flips: Vec<bool> = (0..flip_rows.num_measurements())
        .map(|m| flip_rows.flipped(0, m))
        .collect();
    assert_eq!(flips.len(), reference.len());
    if !injected {
        assert!(
            flips.iter().all(|&f| !f),
            "no injections must mean no flips"
        );
    }
    let desired: Vec<bool> = reference.iter().zip(&flips).map(|(&r, &f)| r ^ f).collect();

    let replayed = tableau_replay(c, &desired);
    assert_eq!(replayed.len(), desired.len());
    for (m, (result, &want)) in replayed.iter().zip(&desired).enumerate() {
        assert_eq!(
            result.value, want,
            "measurement {m}: tableau {} vs frame prediction {want}",
            result.value
        );
    }

    // Detector/observable bits agree through the independent sampling path.
    let samples = FrameSim::sample(c, 1, &mut StdRng::seed_from_u64(2));
    for d in 0..c.num_detectors() {
        let tableau_bit = c
            .detector_measurements(d)
            .iter()
            .fold(false, |acc, &m| acc ^ replayed[m].value);
        let reference_bit = c
            .detector_measurements(d)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert_eq!(
            tableau_bit,
            samples.detector(0, d) ^ reference_bit,
            "detector {d}"
        );
    }
    for o in 0..c.num_observables() {
        let tableau_bit = c
            .observable(o)
            .iter()
            .fold(false, |acc, &m| acc ^ replayed[m].value);
        let reference_bit = c
            .observable(o)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert_eq!(
            tableau_bit,
            samples.observable(0, o) ^ reference_bit,
            "observable {o}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random factory/gadget skeletons with random deterministic Pauli
    /// injections: both engines agree on every bit either determines.
    #[test]
    fn injected_scenario_circuits_cross_validate(
        which in 0usize..6,
        width_raw in 0usize..3,
        rounds in 1usize..=3,
        raw_injections in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()),
            0..6,
        ),
    ) {
        let (patches, schedule) = skeleton(which, width_raw);
        let distance = 3u32;
        let exp = ScheduledCnotExperiment {
            distance,
            patches,
            schedule,
            rounds,
            basis: Basis::Z,
            noise: zero_noise(),
        };
        let injections: Vec<PauliInjection> = raw_injections
            .iter()
            .map(|&(r, p, d, x)| PauliInjection {
                after_round: 1 + r as usize % rounds,
                patch: p as usize % patches,
                data: d as usize % (distance * distance) as usize,
                x,
            })
            .collect();
        let c = exp.build_with_injections(&injections);
        check_agreement(&c, !injections.is_empty());
    }
}

/// The injection-free degenerate case, pinned outside the proptest budget:
/// with no faults the frame sampler reports no flips and the tableau
/// reproduces the reference on every scenario family.
#[test]
fn clean_scenario_circuits_cross_validate() {
    for which in 0..6 {
        let (patches, schedule) = skeleton(which, 1);
        let exp = ScheduledCnotExperiment {
            distance: 3,
            patches,
            schedule,
            rounds: 2,
            basis: Basis::Z,
            noise: zero_noise(),
        };
        check_agreement(&exp.build(), false);
    }
}
