//! Golden tests for detector-error-model extraction: the DEMs of two small
//! reference circuits are pinned byte-for-byte as text fixtures under
//! `tests/fixtures/`. Any change to the extractor's sensitivity propagation,
//! probability merging or canonical ordering shows up as a fixture diff.
//!
//! To regenerate the fixtures after an *intentional* change, run
//! `RAA_BLESS=1 cargo test --test golden_dem` and review the diff.

use raa::stabsim::{dem_to_text, parse_dem, Circuit, DetectorErrorModel, MeasRecord};
use raa::surface::code832::{Z_LOGICALS, Z_STABILIZER_GENERATORS};
use raa::surface::{Basis, MemoryExperiment, NoiseModel};
use std::path::Path;

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `RAA_BLESS` is set.
fn assert_golden(actual: &str, fixture: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    if std::env::var_os("RAA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e} (run with RAA_BLESS=1)", fixture));
    assert!(
        actual == expected,
        "DEM text differs from golden fixture {fixture}; \
         if the change is intentional, regenerate with RAA_BLESS=1 and review the diff"
    );
}

/// d = 3 rotated surface-code memory, two SE rounds, uniform p = 1e-3.
fn d3_memory_circuit() -> Circuit {
    MemoryExperiment {
        distance: 3,
        rounds: 2,
        basis: Basis::Z,
        noise: NoiseModel::uniform(1e-3),
    }
    .build()
}

/// [[8,3,2]] cube-code circuit: prepare logical |000⟩ by measuring the four
/// Z stabilizers twice through ancillas 8..12, then read out the data in Z
/// with final stabilizer detectors and the three logical Z observables
/// (cube edges). Noise: data X errors each round plus ancilla measurement
/// flips.
fn code832_circuit() -> Circuit {
    let p = 1e-3;
    let data: Vec<u32> = (0..8).collect();
    let anc: Vec<u32> = (8..12).collect();
    let n_anc = anc.len();
    let mut c = Circuit::new();
    c.r(&[data.clone(), anc.clone()].concat());
    for round in 0..2 {
        c.x_error(&data, p);
        for (i, &stab) in Z_STABILIZER_GENERATORS.iter().enumerate() {
            let pairs: Vec<(u32, u32)> = (0..8)
                .filter(|&v| stab >> v & 1 == 1)
                .map(|v| (v as u32, anc[i]))
                .collect();
            c.cx(&pairs);
        }
        c.x_error(&anc, p);
        c.mr(&anc);
        for i in 0..n_anc {
            if round == 0 {
                // First round: the stabilizers of |0...0⟩ are deterministic.
                c.detector(&[MeasRecord::back(n_anc - i)]);
            } else {
                c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
            }
        }
    }
    c.x_error(&data, p);
    c.m(&data);
    // Final stabilizer checks against the last ancilla round.
    for (i, &stab) in Z_STABILIZER_GENERATORS.iter().enumerate() {
        let mut recs: Vec<MeasRecord> = (0..8u32)
            .filter(|&v| stab >> v & 1 == 1)
            .map(|v| MeasRecord::back(8 - v as usize))
            .collect();
        recs.push(MeasRecord::back(8 + n_anc - i));
        c.detector(&recs);
    }
    for (k, &logical) in Z_LOGICALS.iter().enumerate() {
        let recs: Vec<MeasRecord> = (0..8u32)
            .filter(|&v| logical >> v & 1 == 1)
            .map(|v| MeasRecord::back(8 - v as usize))
            .collect();
        c.observable_include(k, &recs);
    }
    c
}

#[test]
fn d3_rotated_memory_dem_matches_fixture() {
    let dem = DetectorErrorModel::from_circuit(&d3_memory_circuit());
    assert_eq!(dem.num_detectors, 16, "4 + 8 + 4 detectors over two rounds");
    assert_eq!(dem.num_observables, 1);
    assert_golden(&dem_to_text(&dem), "d3_rotated_memory.dem");
}

#[test]
fn code832_dem_matches_fixture() {
    let circuit = code832_circuit();
    let dem = DetectorErrorModel::from_circuit(&circuit);
    assert_eq!(dem.num_detectors, 12);
    assert_eq!(dem.num_observables, 3);
    assert_golden(&dem_to_text(&dem), "code832.dem");
}

#[test]
fn fixtures_parse_back_losslessly() {
    for circuit in [d3_memory_circuit(), code832_circuit()] {
        let dem = DetectorErrorModel::from_circuit(&circuit);
        let text = dem_to_text(&dem);
        let parsed = parse_dem(&text).expect("fixture text parses");
        assert_eq!(parsed.num_detectors, dem.num_detectors);
        assert_eq!(parsed.num_observables, dem.num_observables);
        assert_eq!(parsed.errors, dem.errors);
        assert_eq!(dem_to_text(&parsed), text, "round trip is byte-stable");
    }
}

#[test]
fn code832_circuit_detectors_are_deterministic() {
    // Sanity for the fixture circuit itself: every detector is a valid
    // parity check and the observables are deterministic.
    use raa::stabsim::TableauSim;
    let c = code832_circuit();
    let reference = TableauSim::reference_sample(&c);
    for d in 0..c.num_detectors() {
        let parity = c
            .detector_measurements(d)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert!(!parity, "detector {d} not deterministic");
    }
    for o in 0..c.num_observables() {
        let parity = c
            .observable(o)
            .iter()
            .fold(false, |acc, &m| acc ^ reference[m]);
        assert!(!parity, "observable {o} not deterministic");
    }
}
