//! Differential conformance harness for the scenario catalog: every
//! algorithm-level scenario (factory skeletons, gadget skeletons, the
//! [[8,3,2]] block) runs the identical battery the core scenarios already
//! pass, so a new variant cannot land half-wired:
//!
//! 1. **golden DEM fixtures** — one instance per new family pinned
//!    byte-for-byte under `tests/fixtures/` (regenerate with `RAA_BLESS=1`
//!    and review the diff), plus a lossless `dem_to_text`/`parse_dem`
//!    round trip;
//! 2. **deterministic detectors** — on the exact tableau simulator, every
//!    detector and observable of every catalog circuit is a valid parity
//!    check (the stabilizer-flow bookkeeping stayed determined through the
//!    scheduled CNOT layers);
//! 3. **sampler marginals** — compiled-DEM sampling agrees with gate-level
//!    Pauli-frame simulation per detector (chi-square) and in aggregate;
//! 4. **streamed-vs-batch + thread-count bit-identity** — the time-sliced
//!    streaming pipeline returns bit-identical `DecodeStats` at 1/2/8
//!    threads and against the whole-batch entry point on the same sampler;
//! 5. **warm-cache byte-identity** — a second orchestrator pass over the
//!    same specs replays every record byte-for-byte with zero freshly
//!    sampled shots;
//! 6. **pinned d = 3 anchors** — exact failure counts at p = 4e-3 (re-pin
//!    on a vendored-RNG or sampler change, investigate otherwise).

use raa::decode::mc::{logical_error_rate_sampled, logical_error_rate_streamed};
use raa::decode::{DecodingGraph, McConfig, UniformLayers, WindowedDecoder};
use raa::sim::{
    build_circuit, run, DecoderChoice, ExperimentSpec, FactoryProtocol, GadgetKind, NoiseModel,
    Orchestrator, Rounds, Scenario, ShotBudget,
};
use raa::stabsim::{dem_to_text, parse_dem, DemSampler, DetectorErrorModel, FrameSim, TableauSim};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// The conformance catalog: one representative instance per new scenario
/// family, at the smallest still-honest size.
fn catalog() -> Vec<(&'static str, Scenario, u32)> {
    vec![
        (
            "factory_distill15",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Distill15,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            "factory_ccz",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            "factory_cultivation",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Cultivation,
                rounds: Rounds::Fixed(6),
            },
            3,
        ),
        (
            "gadget_adder",
            Scenario::Gadget {
                kind: GadgetKind::Adder,
                width: 4,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            "gadget_lookup",
            Scenario::Gadget {
                kind: GadgetKind::Lookup,
                width: 4,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            "gadget_fanout",
            Scenario::Gadget {
                kind: GadgetKind::Fanout,
                width: 3,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            "code832_memory",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
            2,
        ),
    ]
}

fn spec_for(label: &str, scenario: Scenario, distance: u32, p: f64, seed: u64) -> ExperimentSpec {
    let mut spec = ExperimentSpec::new(format!("conformance/{label}"), scenario, distance);
    spec.noise = NoiseModel::uniform(p);
    spec.seed = seed;
    spec
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Compares `actual` against the checked-in fixture, or rewrites the
/// fixture when `RAA_BLESS` is set (same contract as `golden_dem.rs`).
fn assert_golden(actual: &str, fixture: &str) {
    let path = fixtures_dir().join(fixture);
    if std::env::var_os("RAA_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create fixtures dir");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e} (run with RAA_BLESS=1)", fixture));
    assert!(
        actual == expected,
        "DEM text differs from golden fixture {fixture}; \
         if the change is intentional, regenerate with RAA_BLESS=1 and review the diff"
    );
}

/// One pinned instance per new family, byte-for-byte: the d = 3 distill15
/// skeleton, the width-4 adder skeleton and the [[8,3,2]] memory. The
/// fixture instances use two rounds (small files); the decode battery runs
/// deeper.
fn fixture_instances() -> Vec<(&'static str, ExperimentSpec)> {
    vec![
        (
            "factory_distill15_d3.dem",
            spec_for(
                "fixture/distill15",
                Scenario::MagicFactory {
                    protocol: FactoryProtocol::Distill15,
                    rounds: Rounds::Fixed(2),
                },
                3,
                1e-3,
                0,
            ),
        ),
        (
            "gadget_adder_w4_d3.dem",
            spec_for(
                "fixture/adder",
                Scenario::Gadget {
                    kind: GadgetKind::Adder,
                    width: 4,
                    rounds: Rounds::Fixed(2),
                },
                3,
                1e-3,
                0,
            ),
        ),
        (
            "code832_memory_r4.dem",
            spec_for(
                "fixture/code832",
                Scenario::Code832Memory {
                    rounds: Rounds::Fixed(4),
                },
                2,
                1e-3,
                0,
            ),
        ),
    ]
}

#[test]
fn golden_dem_fixtures_per_new_family() {
    for (fixture, spec) in fixture_instances() {
        let dem = DetectorErrorModel::from_circuit(&build_circuit(&spec));
        assert_golden(&dem_to_text(&dem), fixture);
        // The fixture text is also a lossless round trip.
        let text = dem_to_text(&dem);
        let parsed = parse_dem(&text).expect("fixture text parses");
        assert_eq!(parsed.num_detectors, dem.num_detectors);
        assert_eq!(parsed.num_observables, dem.num_observables);
        assert_eq!(parsed.errors, dem.errors);
        assert_eq!(dem_to_text(&parsed), text, "{fixture}: round trip");
    }
}

/// The new [[8,3,2]] builder ties back to the PR 2 fixture: with the prep
/// and two-qubit channels off (zero-probability channels are omitted from
/// the circuit), two rounds reproduce `code832.dem` byte for byte.
#[test]
fn code832_builder_reproduces_pr2_fixture() {
    let exp = raa::surface::Code832MemoryExperiment {
        rounds: 2,
        noise: NoiseModel {
            p2: 0.0,
            p_prep: 0.0,
            p_idle: 1e-3,
            p_meas: 1e-3,
        },
    };
    let dem = DetectorErrorModel::from_circuit(&exp.build());
    let expected =
        std::fs::read_to_string(fixtures_dir().join("code832.dem")).expect("PR 2 fixture present");
    assert_eq!(
        dem_to_text(&dem),
        expected,
        "Code832MemoryExperiment must reproduce the hand-rolled PR 2 circuit"
    );
}

#[test]
fn catalog_layers_uniformly_and_every_detector_is_deterministic() {
    for (label, scenario, distance) in catalog() {
        let spec = spec_for(label, scenario, distance, 1e-3, 7);
        assert_eq!(spec.scenario.label(), label, "catalog label");
        let circuit = build_circuit(&spec);
        let dpl = scenario
            .detectors_per_layer(distance)
            .unwrap_or_else(|| panic!("{label}: catalog scenarios are uniformly layered"));
        assert_eq!(circuit.num_detectors() % dpl, 0, "{label}: uniform layers");
        assert!(circuit.num_detectors() / dpl >= 4, "{label}: honest depth");
        let reference = TableauSim::reference_sample(&circuit);
        for d in 0..circuit.num_detectors() {
            let parity = circuit
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "{label}: detector {d} not deterministic");
        }
        for o in 0..circuit.num_observables() {
            let parity = circuit
                .observable(o)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "{label}: observable {o} not deterministic");
        }
    }
}

/// Compiled-DEM sampling matches gate-level frame simulation on the new
/// circuit families: per-detector chi-square plus aggregate defect weight
/// and observable flip rate (the `sampler_validation.rs` battery, applied
/// to a factory skeleton and the [[8,3,2]] block).
#[test]
fn dem_sampler_marginals_match_frame_sampler() {
    let instances = [
        spec_for(
            "marginals/ccz",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds: Rounds::Fixed(3),
            },
            3,
            5e-3,
            0,
        ),
        spec_for(
            "marginals/code832",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
            2,
            5e-3,
            0,
        ),
    ];
    for spec in instances {
        let circuit = build_circuit(&spec);
        let dem = DetectorErrorModel::from_circuit(&circuit);
        let sampler = DemSampler::new(&dem);

        let shots = 100_000usize;
        let frame = FrameSim::sample(&circuit, shots, &mut StdRng::seed_from_u64(0xF4A3));
        let dems = sampler.sample(shots, &mut StdRng::seed_from_u64(0xD3A1));

        let nd = dem.num_detectors;
        let mut chi2 = 0.0;
        for d in 0..nd {
            let nf = (0..shots).filter(|&s| frame.detector(s, d)).count() as f64;
            let ndm = (0..shots).filter(|&s| dems.detector(s, d)).count() as f64;
            let (pf, pd) = (nf / shots as f64, ndm / shots as f64);
            let var = (pf * (1.0 - pf) + pd * (1.0 - pd)) / shots as f64;
            chi2 += (pf - pd).powi(2) / (var + 1e-12);
        }
        let bound = nd as f64 + 5.0 * (2.0 * nd as f64).sqrt();
        assert!(
            chi2 < bound,
            "{}: chi-square over {nd} detector marginals: {chi2:.1} ≥ {bound:.1}",
            spec.name
        );

        let defect_mean = |s: &raa::stabsim::DetectorSamples| {
            (0..shots)
                .map(|shot| s.fired_detectors(shot).len())
                .sum::<usize>() as f64
                / shots as f64
        };
        let (mf, md) = (defect_mean(&frame), defect_mean(&dems));
        assert!(
            (mf - md).abs() / mf < 0.02,
            "{}: mean defect weight: frame {mf:.4} vs dem {md:.4}",
            spec.name
        );

        let flip_rate = |s: &raa::stabsim::DetectorSamples| {
            (0..shots).filter(|&i| s.observable_mask(i) != 0).count() as f64 / shots as f64
        };
        let (ff, fd) = (flip_rate(&frame), flip_rate(&dems));
        let se = (ff * (1.0 - ff) / shots as f64).sqrt();
        assert!(
            (ff - fd).abs() < 6.0 * se + 1e-4,
            "{}: observable flip rate: frame {ff:.5} vs dem {fd:.5} (se {se:.6})",
            spec.name
        );
    }
}

/// Every catalog scenario streams: the time-sliced pipeline is
/// bit-identical across 1/2/8 threads and against the whole-batch entry
/// point on the same sampler (streamed and batch records from *different*
/// samplers are not shot-comparable — this holds the sampler fixed).
#[test]
fn streamed_vs_batch_and_thread_count_bit_identity() {
    use raa::stabsim::StreamingDemSampler;
    for (label, scenario, distance) in catalog() {
        let spec = spec_for(label, scenario, distance, 4e-3, 0x57AB);
        let circuit = build_circuit(&spec);
        let dem = DetectorErrorModel::from_circuit(&circuit);
        let dpl = scenario.detectors_per_layer(distance).unwrap();
        let sampler = StreamingDemSampler::new(&dem, dpl);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let decoder = WindowedDecoder::new(
            graph,
            UniformLayers {
                detectors_per_layer: dpl,
            },
            1,
            2,
        );
        let shots = 512;
        let seed = 0x5EED;
        let base = logical_error_rate_streamed(
            &sampler,
            &decoder,
            shots,
            seed,
            &McConfig::default().with_threads(1),
        )
        .unwrap();
        assert_eq!(base.shots, shots, "{label}");
        for threads in [2usize, 8] {
            let multi = logical_error_rate_streamed(
                &sampler,
                &decoder,
                shots,
                seed,
                &McConfig::default().with_threads(threads),
            )
            .unwrap();
            assert_eq!(base, multi, "{label}: threads = {threads}");
        }
        let batch =
            logical_error_rate_sampled(&sampler, &decoder, shots, seed, &McConfig::default())
                .unwrap();
        assert_eq!(base, batch, "{label}: streaming vs batch entry point");
    }
}

/// The orchestrator's headline contract extends to the new scenarios: a
/// warm second pass replays every record byte-for-byte from the
/// content-addressed cache with zero freshly sampled shots, at any
/// point-worker count.
#[test]
fn warm_cache_byte_identity_through_orchestrator() {
    let dir = std::env::temp_dir().join(format!("raa-conformance-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let specs: Vec<ExperimentSpec> = catalog()
        .into_iter()
        .map(|(label, scenario, distance)| {
            let mut spec = spec_for(label, scenario, distance, 4e-3, 0xCACE);
            spec.shots = ShotBudget::Fixed(512);
            spec
        })
        .collect();
    let orch = |workers: usize| {
        Orchestrator::new()
            .with_cache_dir(&dir)
            .expect("open cache")
            .with_point_threads(workers)
    };
    let cold = orch(1).run_specs(&specs).expect("cold pass");
    assert_eq!(cold.fresh_points, specs.len());
    assert_eq!(cold.fresh_shots, 512 * specs.len());
    for workers in [1usize, 2, 8] {
        let warm = orch(workers).run_specs(&specs).expect("warm pass");
        assert_eq!(warm.fresh_points, 0, "workers = {workers}");
        assert_eq!(warm.fresh_shots, 0, "workers = {workers}");
        let cold_json: Vec<String> = cold.records.iter().map(|r| r.to_json()).collect();
        let warm_json: Vec<String> = warm.records.iter().map(|r| r.to_json()).collect();
        assert_eq!(cold_json, warm_json, "workers = {workers}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Exact failure-count anchors at d = 3 (d = 2 for the fixed [[8,3,2]]
/// block), p = 4e-3, 2000 shots through the default union–find pipeline.
/// Deterministic engine ⇒ exact counts; re-pin on a vendored-RNG or
/// default-sampler swap, investigate any other drift.
#[test]
fn pinned_failure_count_anchors() {
    let failures: Vec<(String, usize)> = catalog()
        .into_iter()
        .map(|(label, scenario, distance)| {
            let mut spec = spec_for(label, scenario, distance, 4e-3, 0xA9C8);
            spec.shots = ShotBudget::Fixed(2_000);
            spec.decoder = DecoderChoice::UnionFind;
            let record = run(&spec);
            assert_eq!(record.shots, 2_000, "{label}");
            (label.to_string(), record.failures)
        })
        .collect();
    let pinned: Vec<(String, usize)> = [
        ("factory_distill15", 952),
        ("factory_ccz", 744),
        ("factory_cultivation", 304),
        ("gadget_adder", 526),
        ("gadget_lookup", 349),
        ("gadget_fanout", 243),
        ("code832_memory", 193),
    ]
    .into_iter()
    .map(|(l, f)| (l.to_string(), f))
    .collect();
    assert_eq!(failures, pinned, "pinned scenario anchors drifted");
}
