//! End-to-end integration: the whole stack from physics through gadgets to
//! the algorithm-level estimator behaves coherently when parameters move
//! together (the cross-crate seams the unit tests cannot see).

use raa::core::{ArchContext, ErrorModelParams, Gadget};
use raa::factory::CczFactory;
use raa::gadgets::{CuccaroAdder, LookupAddition, LookupTable};
use raa::physics::PhysicalParams;
use raa::shor::{optimize, SearchSpace, TransversalArchitecture};

/// Gadget costs respond consistently to a context change: larger distance
/// means more qubits, longer blocks and smaller logical error — and the
/// architecture-level estimate inherits all three.
#[test]
fn distance_coherence_across_stack() {
    // d = 25 is the smallest distance where the factory can reach the
    // paper's CCZ target (its own Clifford errors dominate below that).
    let small = ArchContext::paper().with_distance(25);
    let large = ArchContext::paper().with_distance(33);
    let adder = CuccaroAdder::new(2048, 96, 43);
    let lookup = LookupTable::new(7, 2994);

    assert!(adder.qubits(&large) > adder.qubits(&small));
    assert!(adder.logical_error(&large) < adder.logical_error(&small));
    assert!(lookup.qubits(&large) > lookup.qubits(&small));
    assert!(lookup.logical_error(&large) < lookup.logical_error(&small));

    let mut arch_small = TransversalArchitecture::paper();
    arch_small.params.distance = 25;
    let mut arch_large = TransversalArchitecture::paper();
    arch_large.params.distance = 33;
    let e_small = arch_small.estimate();
    let e_large = arch_large.estimate();
    assert!(e_large.qubits > e_small.qubits);
    assert!(e_large.total_error < e_small.total_error);
}

/// Slower hardware stretches every time scale coherently: a 10× slower
/// acceleration increases gadget durations, factory intervals and the final
/// runtime, but never the CCZ count.
#[test]
fn acceleration_coherence() {
    let base = ArchContext::paper();
    let mut slow = base;
    slow.physical = PhysicalParams::default().with_acceleration_scaled(0.1);

    let gadget = LookupAddition::new(3, 4, 2048, 96, 43);
    assert!(gadget.duration(&slow) > gadget.duration(&base));
    assert_eq!(gadget.ccz_count(), gadget.ccz_count());

    let f_base = CczFactory::for_target(&base, 1.6e-11).unwrap();
    assert!(f_base.production_interval(&slow) > f_base.production_interval(&base));

    let mut arch = TransversalArchitecture::paper();
    arch.physical = slow.physical;
    let est_slow = arch.estimate();
    let est_base = TransversalArchitecture::paper().estimate();
    assert!(est_slow.seconds > est_base.seconds);
    assert!((est_slow.ccz_total - est_base.ccz_total).abs() < 1.0);
}

/// A noisier physical layer (within threshold) propagates to a larger
/// optimized distance and more physical qubits at the architecture level.
#[test]
fn physical_error_rate_coherence() {
    let mut noisy = TransversalArchitecture::paper();
    noisy.error = ErrorModelParams::paper().with_p_phys(2e-3); // Λ = 5
    let (noisy_arch, noisy_est) = noisy.with_optimized_distance(0.08);
    let (clean_arch, clean_est) = TransversalArchitecture::paper().with_optimized_distance(0.08);
    assert!(
        noisy_arch.params.distance > clean_arch.params.distance,
        "noisier hardware needs a larger distance: {} vs {}",
        noisy_arch.params.distance,
        clean_arch.params.distance
    );
    assert!(noisy_est.qubits > clean_est.qubits);
    assert!(noisy_est.total_error <= 0.08);
}

/// The optimizer's result is reproducible and internally consistent: the
/// reported estimate matches re-running the winning architecture.
#[test]
fn optimizer_reproducibility() {
    let space = SearchSpace {
        w_exp: vec![3, 4],
        w_mul: vec![3, 4],
        r_sep: vec![96, 192],
        max_factories: vec![192],
    };
    let base = TransversalArchitecture::paper();
    let a = optimize(&base, &space, 0.08);
    let b = optimize(&base, &space, 0.08);
    assert_eq!(a.architecture.params, b.architecture.params);
    let re = a.architecture.estimate();
    assert!((re.qubits - a.estimate.qubits).abs() < 1.0);
    assert!((re.seconds - a.estimate.seconds).abs() < 1e-9);
}

/// Factory supply and demand meet: the chosen factory count sustains the
/// addition stage's consumption without stretching it (at paper parameters).
#[test]
fn factory_supply_meets_demand() {
    let est = TransversalArchitecture::paper().estimate();
    let ctx = TransversalArchitecture::paper().context();
    let adder = CuccaroAdder::new(2048, 96, 43);
    // Reaction-limited duration == effective duration ⇒ no stretch.
    assert!(
        (est.addition_seconds - adder.duration(&ctx)).abs() < 1e-9,
        "addition must not be factory-limited at paper parameters"
    );
}

/// The gadget trait view agrees with the concrete accessors.
#[test]
fn gadget_trait_consistency() {
    let ctx = ArchContext::paper();
    let adder = CuccaroAdder::new(512, 64, 16);
    let cost = adder.cost(&ctx);
    assert_eq!(cost.ccz_states, adder.toffoli_count() as f64);
    assert!((cost.seconds - adder.duration(&ctx)).abs() < 1e-12);
    assert!((cost.qubits - adder.qubits(&ctx)).abs() < 1e-9);
    assert_eq!(adder.name(), "cuccaro-adder");
}
