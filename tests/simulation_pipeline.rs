//! Integration tests of the full simulation stack: circuit construction →
//! reference/tableau semantics → frame sampling → DEM extraction → decoding.
//! These are the cross-crate checks that the substrate behind Fig. 6(a) is
//! self-consistent.

use raa::decode::{mc, DecodingGraph, MatchingDecoder, UnionFindDecoder};
use raa::stabsim::{DetectorErrorModel, FrameSim, TableauSim};
use raa::surface::{
    run_memory, run_transversal, Basis, DecoderKind, MemoryExperiment, NoiseModel,
    PatchCircuitBuilder, TransversalCnotExperiment,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Every detector the builders emit is a deterministic parity check of the
/// noiseless circuit, for memory and multi-patch transversal circuits alike.
#[test]
fn all_detectors_deterministic_across_bases_and_patches() {
    for basis in [Basis::Z, Basis::X] {
        for patches in [1usize, 2, 3] {
            let mut b = PatchCircuitBuilder::new(3, patches, basis, NoiseModel::noiseless());
            b.initialize();
            b.se_round();
            if patches >= 2 {
                b.transversal_cx(0, 1);
                b.se_round();
                if patches == 3 {
                    b.transversal_cx(2, 0);
                    b.se_round();
                }
            }
            let c = b.finish();
            let reference = TableauSim::reference_sample(&c);
            for d in 0..c.num_detectors() {
                let parity = c
                    .detector_measurements(d)
                    .iter()
                    .fold(false, |acc, &m| acc ^ reference[m]);
                assert!(!parity, "basis {basis:?}, {patches} patches, detector {d}");
            }
        }
    }
}

/// The frame sampler and the exact tableau simulator agree on detector
/// statistics for a noisy surface-code round.
#[test]
fn frame_sampler_matches_tableau_statistics() {
    let exp = MemoryExperiment {
        distance: 3,
        rounds: 2,
        basis: Basis::Z,
        noise: NoiseModel::uniform(0.01),
    };
    let c = exp.build();
    let shots = 40_000;
    let samples = FrameSim::sample(&c, shots, &mut rng(1));
    let frame_rate = (0..shots)
        .filter(|&s| !samples.fired_detectors(s).is_empty())
        .count() as f64
        / shots as f64;

    let tab_shots = 4_000;
    let mut r = rng(2);
    let mut tab_hits = 0usize;
    for _ in 0..tab_shots {
        let rec = TableauSim::sample(&c, &mut r);
        let any = (0..c.num_detectors()).any(|d| {
            c.detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ rec[m])
        });
        if any {
            tab_hits += 1;
        }
    }
    let tab_rate = tab_hits as f64 / tab_shots as f64;
    assert!(
        (frame_rate - tab_rate).abs() < 0.03,
        "frame {frame_rate} vs tableau {tab_rate}"
    );
}

/// Below threshold, increasing the distance suppresses the decoded logical
/// error rate of the memory experiment.
#[test]
fn memory_error_suppression_with_distance() {
    let p = 2e-3;
    let mut r = rng(3);
    let mut rate = |d: u32| {
        let exp = MemoryExperiment {
            distance: d,
            rounds: d as usize,
            basis: Basis::Z,
            noise: NoiseModel::uniform(p),
        };
        run_memory(&exp, DecoderKind::UnionFind, 40_000, &mut r).logical_error_rate()
    };
    let r3 = rate(3);
    let r5 = rate(5);
    assert!(
        r5 <= r3.max(2.5e-5) * 1.2,
        "no suppression: d=3 {r3}, d=5 {r5}"
    );
}

/// The exact matching decoder is at least as accurate as union–find on the
/// same syndromes (it is the MLE-like reference of the α calibration).
#[test]
fn matching_reference_not_worse_than_unionfind() {
    let exp = MemoryExperiment {
        distance: 3,
        rounds: 3,
        basis: Basis::Z,
        noise: NoiseModel::uniform(8e-3),
    };
    let c = exp.build();
    let dem = DetectorErrorModel::from_circuit(&c);
    let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
    let uf = UnionFindDecoder::new(graph.clone());
    let mwpm = MatchingDecoder::new(graph);
    let r_uf = mc::logical_error_rate(&c, &uf, 20_000, &mut rng(4)).logical_error_rate();
    let r_m = mc::logical_error_rate(&c, &mwpm, 20_000, &mut rng(4)).logical_error_rate();
    assert!(
        r_m <= r_uf * 1.2 + 0.005,
        "matching {r_m} vs union-find {r_uf}"
    );
}

/// Correlated decoding end to end: a two-patch transversal-CNOT circuit
/// decodes to a usefully low logical error rate, and the per-CNOT error is
/// finite and grows with the physical rate.
#[test]
fn transversal_cnot_pipeline() {
    let mut r = rng(5);
    let mut per_cnot = |p: f64| {
        let exp = TransversalCnotExperiment {
            distance: 3,
            patches: 2,
            depth: 8,
            cnots_per_round: 1.0,
            basis: Basis::Z,
            noise: NoiseModel::uniform(p),
        };
        run_transversal(&exp, DecoderKind::UnionFind, 20_000, &mut r).error_per_cnot()
    };
    let low = per_cnot(1e-3);
    let high = per_cnot(6e-3);
    assert!(low < high, "error must grow with p: {low} vs {high}");
    assert!(high < 0.5, "decoding must stay useful: {high}");
}

/// The decomposition path: surface-code DEMs contain hyperedges (from Y
/// errors) that decompose into existing graphlike mechanisms.
#[test]
fn dem_decomposition_handles_surface_code() {
    let exp = MemoryExperiment {
        distance: 3,
        rounds: 3,
        basis: Basis::Z,
        noise: NoiseModel::uniform(1e-3),
    };
    let c = exp.build();
    let dem = DetectorErrorModel::from_circuit(&c);
    let hyper = dem.iter().filter(|e| e.detectors.len() > 2).count();
    assert!(hyper > 0, "expected hyperedges from Y errors");
    let (graphlike, _arbitrary) = dem.decompose_graphlike();
    assert!(graphlike.iter().all(|e| e.detectors.len() <= 2));
    // Decomposition must preserve the mechanism mass approximately.
    assert!(graphlike.len() >= dem.len() - hyper);
}
