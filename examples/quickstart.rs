//! Quickstart: reproduce the paper's headline result in a few lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Estimates 2048-bit RSA factoring on the transversal atom-array
//! architecture with the paper's Table I physics and Table II algorithm
//! parameters, and compares against the lattice-surgery baseline rescaled to
//! the same hardware.

use raa::shor::{GidneyEkeraModel, TransversalArchitecture};

fn main() {
    // The paper's configuration: Table I physics, Table II parameters.
    let architecture = TransversalArchitecture::paper();
    let estimate = architecture.estimate();

    println!("=== 2048-bit RSA factoring on the transversal architecture ===");
    println!("{estimate}");
    println!();
    println!("  lookup-additions : {}", estimate.lookup_additions);
    println!("  per lookup       : {:.3} s", estimate.lookup_seconds);
    println!("  per addition     : {:.3} s", estimate.addition_seconds);
    println!("  CCZ states       : {:.2e}", estimate.ccz_total);
    println!("  factories        : {}", estimate.factories);
    println!("  code distance    : {}", estimate.distance);
    println!();

    // The same problem on lattice surgery at atom-array timescales (Fig. 2).
    let baseline = GidneyEkeraModel::atom_array(1e-3);
    let speedup = baseline.runtime_seconds() / estimate.expected_seconds();
    println!("=== versus lattice surgery at 900 us cycles (Gidney-Ekera model) ===");
    println!(
        "  baseline: {:.0}M qubits, {:.0} days",
        baseline.qubits() / 1e6,
        baseline.runtime_seconds() / 86_400.0
    );
    println!("  transversal speed-up: {speedup:.1}x (paper: ~50x)");
}
