//! Quantum chemistry on the transversal architecture (paper §III.3):
//! tensor-hypercontraction qubitization mapped onto the same look-up and
//! adder gadgets as factoring.
//!
//! ```sh
//! cargo run --example chemistry
//! ```

use raa::chem::{estimate, ThcInstance};
use raa::core::ArchContext;

fn main() {
    let ctx = ArchContext::paper();

    for (label, inst) in [
        ("small active space", ThcInstance::small_molecule()),
        ("FeMoco-scale (Ref. [77])", ThcInstance::femoco_like()),
    ] {
        println!("=== {label} ===");
        println!("  {inst}");
        println!("  qubitization steps: {:.2e}", inst.qubitization_steps());
        let est = estimate(&inst, &ctx);
        println!("  {est}");
        println!();
    }

    println!(
        "PREPARE is table-lookup dominated and SELECT reduces to lookup + phase-gradient \
         additions (paper Fig. 5e), so the same transversal speed-up applies: the paper \
         leaves detailed chemistry layouts to future work, and so does this model."
    );
}
