//! Tour of the magic-state factory (paper §III.6, Fig. 8): cultivation,
//! the 8T-to-CCZ stage on the [[8,3,2]] code, and the exact enumeration
//! behind the `p_out = 28 p_in²` suppression law (Eq. 8).
//!
//! ```sh
//! cargo run --example factory_tour
//! ```

use raa::core::ArchContext;
use raa::factory::{CczFactory, CultivationModel};
use raa::surface::code832;

fn main() {
    println!("=== [[8,3,2]] code combinatorics (Eq. 8) ===");
    let (w2, w4, w6, w8) = code832::harmful_pattern_counts();
    println!("  harmful Z-error patterns by weight: w2 = {w2}, w4 = {w4}, w6 = {w6}, w8 = {w8}");
    println!("  => p_out = {w2} p^2 + O(p^4)   (paper: 28 p^2)");
    for p in [1e-3, 1e-5] {
        println!(
            "  p_in = {p:.0e}: exact p_out = {:.3e}, 28 p^2 = {:.3e}, rejection = {:.3e}",
            code832::output_error_exact(p),
            28.0 * p * p,
            code832::rejection_probability(p)
        );
    }

    println!();
    println!("=== cultivation stage (first stage) ===");
    let cult = CultivationModel::paper();
    println!("  {cult}");
    for eps in [1e-5, 7.7e-7, 1e-8] {
        println!(
            "  target {eps:.1e} -> expected volume {:.2e} qubit-rounds",
            cult.expected_volume(eps)
        );
    }

    println!();
    println!("=== full factory at the paper's RSA-2048 operating point ===");
    let ctx = ArchContext::paper();
    let factory = CczFactory::for_target(&ctx, 1.6e-11).expect("reachable at d = 27");
    println!("  {factory}");
    println!(
        "  per-T input error   : {:.2e}  (paper: 7.7e-7)",
        factory.t_input_error()
    );
    println!(
        "  output error        : {:.2e}  (target 1.6e-11)",
        factory.output_error(&ctx)
    );
    let fp = factory.footprint(&ctx);
    println!("  footprint           : {fp}  (12d x 4d at d = 27)");
    println!("  physical qubits     : {:.0}", factory.qubits(&ctx));
    println!(
        "  production interval : {:.2} ms  ({:.0} CCZ/s)",
        factory.production_interval(&ctx) * 1e3,
        factory.production_rate(&ctx)
    );
    println!(
        "  factories for the paper's addition stage: {}",
        factory.count_for_demand(&ctx, 11_000.0)
    );
}
