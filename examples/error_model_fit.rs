//! Fit the paper's Eq. (4) logical-error model to *real* circuit-level
//! simulations (the Fig. 6a methodology, scaled to laptop-sized statistics).
//!
//! ```sh
//! cargo run --release --example error_model_fit
//! RAA_SHOTS=100000 cargo run --release --example error_model_fit   # deeper
//! ```
//!
//! Builds two surface-code patches, runs deep random transversal-CNOT
//! circuits with `x` CNOTs per syndrome-extraction round at an elevated
//! physical error rate, decodes every shot jointly (correlated decoding via
//! the circuit's detector error model + union-find), and fits the decoding
//! factor α and suppression base Λ.

use raa::core::fit::{fit_cnot_model, CnotErrorPoint};
use raa::surface::{run_transversal, Basis, DecoderKind, NoiseModel, TransversalCnotExperiment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let shots: usize = std::env::var("RAA_SHOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(15_000);
    let p = 4e-3;
    let mut rng = StdRng::seed_from_u64(1234);

    println!("simulating two-patch transversal CNOT circuits at p = {p}, {shots} shots/point");
    let mut points = Vec::new();
    for &d in &[3u32, 5] {
        for &x in &[0.5, 1.0, 2.0, 4.0] {
            let exp = TransversalCnotExperiment {
                distance: d,
                patches: 2,
                depth: 16,
                cnots_per_round: x,
                basis: Basis::Z,
                noise: NoiseModel::uniform(p),
            };
            let r = run_transversal(&exp, DecoderKind::UnionFind, shots, &mut rng);
            let per_cnot = r.error_per_cnot();
            println!(
                "  d = {d}, x = {x:<4}: p_CNOT = {per_cnot:.5}  ({} failures / {} shots)",
                r.stats.failures, r.stats.shots
            );
            if per_cnot > 0.0 && per_cnot < 0.4 {
                points.push(CnotErrorPoint {
                    x,
                    distance: d,
                    error_per_cnot: per_cnot,
                });
            }
        }
    }

    let Some(fit) = fit_cnot_model(&points, 0.1) else {
        println!();
        println!("too few usable (x, d) points for the Eq. (4) fit; raise RAA_SHOTS");
        return;
    };
    println!();
    println!("Eq. (4) fit:");
    println!(
        "  alpha  = {:.3}  (paper, MLE decoder at p = 1e-3: ~1/6)",
        fit.alpha
    );
    println!(
        "  Lambda = {:.2}  (paper: ~20 for MLE, 10 assumed for estimates)",
        fit.lambda
    );
    println!("  residual = {:.4}", fit.residual);
    if fit.lambda > 1.0 {
        println!(
            "  calibrated threshold p_thres = Lambda * p = {:.4}  (the paper assumes 1%)",
            fit.to_params(p).p_thres
        );
    } else {
        println!("  no suppression at this statistics depth (Lambda <= 1); raise RAA_SHOTS");
    }
    println!();
    println!(
        "note: union-find at elevated p is a weaker decoder than the paper's MLE, so a \
         larger alpha and smaller Lambda are expected; the paper's Fig. 13a shows the \
         architecture is mildly sensitive to exactly this."
    );
}
