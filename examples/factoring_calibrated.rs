//! Simulation-calibrated RSA-2048 resource estimate: the full
//! sim → fit → model → optimizer chain behind the paper's Table II, in one
//! run.
//!
//! ```sh
//! cargo run --release --example factoring_calibrated
//! RAA_SHOTS=60000 cargo run --release --example factoring_calibrated  # deeper
//! ```
//!
//! Runs the calibration sweeps (memory + transversal-CNOT at an elevated
//! physical error rate, per the substitution rule) through the cached sweep
//! orchestrator — a second run replays every point from
//! `target/factoring-calibrated-cache` without sampling a single shot —
//! fits (α, Λ) of Eq. (4), anchors the threshold at the sweep's own noise
//! (`p_thres = Λ·p_phys`), and feeds the calibrated model into the
//! transversal-architecture optimizer next to the paper's assumed
//! parameters.

use raa::core::ErrorModelParams;
use raa::shor::TransversalArchitecture;
use raa::sim::{calibrate, CalibrationConfig};

fn main() {
    let mut cfg = CalibrationConfig {
        cache_dir: Some("target/factoring-calibrated-cache".into()),
        ..CalibrationConfig::default()
    };
    if let Some(shots) = std::env::var("RAA_SHOTS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        cfg.memory_shots = shots;
        cfg.cnot_shots = shots;
    }

    println!(
        "calibrating: memory + transversal-CNOT sweeps at p = {}, d in {:?}",
        cfg.p_phys, cfg.distances
    );
    let cal = calibrate(&cfg).expect("calibration sweeps must be fittable");
    println!(
        "  {} points ({} fresh, {} cached), {} freshly sampled shots",
        cal.fresh_points + cal.cached_points,
        cal.fresh_points,
        cal.cached_points,
        cal.fresh_shots
    );
    println!(
        "  fit: alpha = {:.3}, Lambda = {:.2} (memory anchor {}), residual = {:.3}",
        cal.fit.alpha,
        cal.fit.lambda,
        cal.lambda_memory
            .map_or("n/a".into(), |l| format!("{l:.2}")),
        cal.fit.residual
    );
    println!(
        "  calibrated model at sweep noise: {} (p_thres = Lambda * p_phys)",
        cal.params
    );

    let (arch, est) = TransversalArchitecture::calibrated(cal.params);
    println!();
    println!("simulation-calibrated estimate (p_phys re-anchored at 1e-3):");
    println!("  model: {}", arch.error);
    println!("  d = {}, {}", arch.params.distance, est);

    let (paper_arch, paper_est) = TransversalArchitecture::calibrated(ErrorModelParams::paper());
    println!();
    println!("paper-assumed model at the same optimizer settings:");
    println!("  model: {}", paper_arch.error);
    println!("  d = {}, {}", paper_arch.params.distance, paper_est);
    println!();
    println!(
        "note: the calibration decoder is union-find at elevated p (the paper fits MLE \
         correlated decoding at p = 1e-3), so the fitted (alpha, Lambda) differ from the \
         paper's assumed pair while the re-anchored threshold lands near the same ~1% — \
         the sensitivity Fig. 13a explores."
    );
}
