//! Load generator for `raa-sweepd`: replays hundreds of mixed cold/warm
//! queries against the daemon, injects the three acceptance-criteria
//! faults — a corrupted cache entry, a poisoned (panicking) grid point,
//! and a client connection killed mid-job — and verifies the daemon
//! survives with every healthy record byte-identical to a single-process
//! cold sweep.
//!
//! ```sh
//! cargo run --release --example load_generator          # in-process daemon
//! RAA_SWEEPD=127.0.0.1:7411 RAA_CACHE_DIR=/tmp/raa-load \
//!     cargo run --release --example load_generator      # external daemon
//! ```
//!
//! Knobs: `RAA_SWEEPD` (address of a running daemon; otherwise one is
//! spawned in-process on an ephemeral port), `RAA_CACHE_DIR` (cache
//! directory — required for the corruption fault when the daemon is
//! external, so the generator can reach into the cache), `RAA_SHOTS`
//! (per-point budget, default 256), `RAA_LOAD_CLIENTS` (concurrent client
//! threads in the cold phase, default 4), `RAA_LOAD_SHUTDOWN=1` (send a
//! shutdown request at the end — use when this run owns the daemon).
//!
//! Output is tab-separated `metric\tvalue` lines; CI greps them:
//! `daemon alive`, `warm fresh shots`, `poisoned points quarantined`,
//! `records byte-identical`.

use raa::sim::jobs::{Request, Response};
use raa::sim::service::serve;
use raa::sim::{
    run_sweep, Rounds, Scenario, ServiceClient, ServiceConfig, ShotBudget, SweepCache, SweepGrid,
    SweepService,
};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    match std::env::var(key) {
        Err(_) => default,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("error: {key}={v:?} is not valid");
            std::process::exit(2);
        }),
    }
}

fn grid(shots: usize) -> SweepGrid {
    SweepGrid::new(
        "load/memory",
        Scenario::Memory {
            rounds: Rounds::Fixed(2),
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![3e-3, 5e-3])
    .with_shots(ShotBudget::Fixed(shots))
    .with_seed(0x10AD)
}

fn poison_spec(shots: usize) -> raa::sim::ExperimentSpec {
    let mut spec = grid(shots).specs().remove(0);
    spec.name = "load/poison".into();
    spec.scenario = Scenario::Memory {
        rounds: Rounds::Fixed(0), // trips the "need at least one SE round" assert
    };
    spec
}

fn fail(msg: &str) -> ! {
    println!("daemon alive\tfalse");
    eprintln!("load_generator FAILED: {msg}");
    std::process::exit(1);
}

fn main() {
    let shots = env_parse::<usize>("RAA_SHOTS", 256);
    let clients = env_parse::<usize>("RAA_LOAD_CLIENTS", 4).max(1);
    let external = std::env::var("RAA_SWEEPD").ok().filter(|a| !a.is_empty());
    let cache_dir: Option<PathBuf> = match std::env::var("RAA_CACHE_DIR") {
        Ok(dir) if dir.is_empty() => None,
        Ok(dir) => Some(dir.into()),
        Err(_) if external.is_some() => None,
        Err(_) => Some(std::env::temp_dir().join(format!("raa-load-{}", std::process::id()))),
    };

    // Either hammer an external daemon or spawn one in-process on an
    // ephemeral port — identical wire behaviour either way.
    let mut in_process = None;
    let addr: SocketAddr = match &external {
        Some(addr) => addr.parse().unwrap_or_else(|_| {
            eprintln!("error: RAA_SWEEPD={addr:?} is not a socket address");
            std::process::exit(2);
        }),
        None => {
            let service = SweepService::start(ServiceConfig {
                cache_dir: cache_dir.clone(),
                workers: 2,
                job_timeout: Duration::from_secs(120),
                ..ServiceConfig::default()
            })
            .unwrap_or_else(|e| fail(&format!("cannot start in-process service: {e}")));
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let flag = Arc::new(AtomicBool::new(false));
            let (s, f) = (service.clone(), Arc::clone(&flag));
            let handle = std::thread::spawn(move || serve(listener, &s, &f).unwrap());
            in_process = Some((flag, handle));
            addr
        }
    };

    let grid = grid(shots);
    let specs = grid.specs();
    let reference = run_sweep(&grid);
    let n = specs.len();

    // Phase 1 — cold storm: `clients` threads each replay a mixed stream
    // of sweep and query requests. Exactly `n` points get sampled across
    // all of them (entry locking dedups the rest).
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let specs = specs.clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let mut requests = 0usize;
                for round in 0..25 {
                    let response = if (round + c) % 3 == 0 {
                        client.sweep(&specs)
                    } else {
                        client.query(&specs)
                    };
                    match response {
                        Ok(Response::Sweep { .. } | Response::Query { .. }) => requests += 1,
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(e) => panic!("request failed: {e}"),
                    }
                }
                requests
            })
        })
        .collect();
    let cold_requests: usize = workers.map_while_ok();
    println!("cold requests served\t{cold_requests}");

    // Phase 2 — warm pass: the whole grid must now be free.
    let mut client =
        ServiceClient::connect(addr).unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
    match client.sweep(&specs) {
        Ok(Response::Sweep {
            fresh_shots,
            cached_points,
            ..
        }) => {
            println!("warm fresh shots\t{fresh_shots}");
            if fresh_shots != 0 || cached_points != n {
                fail("warm sweep was not free");
            }
        }
        other => fail(&format!("warm sweep: {other:?}")),
    }

    // Phase 3a — fault: corrupt one cache entry on disk, then sweep. The
    // daemon must detect, quarantine, and resample it.
    let mut corrupt_replaced = 0;
    if let Some(dir) = &cache_dir {
        let cache = SweepCache::open(dir)
            .unwrap_or_else(|e| fail(&format!("opening cache for injection: {e}")));
        std::fs::write(cache.entry_path(&specs[0]), "{\"torn\":")
            .unwrap_or_else(|e| fail(&format!("injecting corruption: {e}")));
        match client.sweep(&specs) {
            Ok(Response::Sweep {
                corrupt_replaced: c,
                ..
            }) => corrupt_replaced = c,
            other => fail(&format!("post-corruption sweep: {other:?}")),
        }
        if corrupt_replaced != 1 {
            fail(&format!(
                "expected 1 corrupt entry replaced, got {corrupt_replaced}"
            ));
        }
    } else {
        eprintln!("note: no RAA_CACHE_DIR — skipping the corruption fault");
    }
    println!("corrupt entries healed\t{corrupt_replaced}");

    // Phase 3b — fault: a poisoned point that panics its worker. The job
    // reports it; the daemon and every other point survive.
    let mut poisoned_specs = specs.clone();
    poisoned_specs.insert(1, poison_spec(shots));
    match client.sweep(&poisoned_specs) {
        Ok(Response::Sweep {
            poisoned, records, ..
        }) => {
            if poisoned.len() != 1 || poisoned[0].index != 1 {
                fail(&format!(
                    "expected 1 poisoned point at index 1: {poisoned:?}"
                ));
            }
            if records.iter().filter(|r| r.is_some()).count() != n {
                fail("healthy points missing from the poisoned job");
            }
        }
        other => fail(&format!("poisoned sweep: {other:?}")),
    }

    // Phase 3c — fault: a client killed mid-job. Fire a sweep and slam the
    // connection without reading the response.
    {
        let mut doomed = TcpStream::connect(addr).unwrap();
        let request = Request::Sweep {
            id: "doomed".into(),
            specs: specs.clone(),
        };
        doomed
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .unwrap();
        doomed.flush().unwrap();
        // Dropped here: FIN/RST while the job may still be running.
    }

    // Phase 4 — recovery: the daemon still answers, the abandoned job's
    // work persisted, and a scrub pass reports a healthy cache.
    let mut records = Vec::new();
    for _ in 0..100 {
        match client.query(&specs) {
            Ok(Response::Query {
                hits, records: r, ..
            }) => {
                if hits == n {
                    records = r;
                    break;
                }
            }
            other => fail(&format!("recovery query: {other:?}")),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    if cache_dir.is_some() && records.len() != n {
        fail("cache never became fully warm after the faults");
    }
    let identical = if cache_dir.is_some() {
        reference
            .iter()
            .zip(&records)
            .filter(|(a, b)| b.as_ref().is_some_and(|b| a.to_json() == b.to_json()))
            .count()
    } else {
        // No cache: re-sweep and compare the live records instead.
        match client.sweep(&specs) {
            Ok(Response::Sweep { records, .. }) => reference
                .iter()
                .zip(&records)
                .filter(|(a, b)| b.as_ref().is_some_and(|b| a.to_json() == b.to_json()))
                .count(),
            other => fail(&format!("no-cache comparison sweep: {other:?}")),
        }
    };
    println!("records byte-identical\t{identical}/{n}");
    if identical != n {
        fail("daemon records diverged from the single-process cold sweep");
    }

    match client.scrub() {
        Ok(Response::Scrub { report, .. }) => {
            println!("scrub healthy entries\t{}", report.healthy);
            if report.quarantined != 0 {
                fail("scrub found corruption after the recovery pass");
            }
        }
        other => fail(&format!("scrub: {other:?}")),
    }

    // Phase 5 — status: the poisoned point sits in quarantine, the daemon
    // is alive and not draining.
    match client.status() {
        Ok(Response::Status { status, .. }) => {
            println!("poisoned points quarantined\t{}", status.quarantined.len());
            println!("jobs completed\t{}", status.jobs_completed);
            if status.quarantined.len() != 1 || status.draining {
                fail(&format!("unexpected daemon status: {status:?}"));
            }
        }
        other => fail(&format!("status: {other:?}")),
    }
    println!("daemon alive\ttrue");

    // Tear down whichever daemon this run owns.
    let owns_daemon = in_process.is_some() || std::env::var_os("RAA_LOAD_SHUTDOWN").is_some();
    if owns_daemon {
        match client.shutdown() {
            Ok(Response::Draining { .. }) => {}
            other => fail(&format!("shutdown: {other:?}")),
        }
    }
    if let Some((flag, handle)) = in_process {
        flag.store(true, Ordering::SeqCst);
        handle.join().expect("serve thread");
        if external.is_none() {
            if let Some(dir) = &cache_dir {
                if std::env::var_os("RAA_CACHE_DIR").is_none() {
                    let _ = std::fs::remove_dir_all(dir);
                }
            }
        }
    }
}

/// Tiny helper: join a batch of client threads, summing their request
/// counts, and fail the run if any of them panicked.
trait JoinAll {
    fn map_while_ok(self) -> usize;
}

impl JoinAll for Vec<std::thread::JoinHandle<usize>> {
    fn map_while_ok(self) -> usize {
        self.into_iter()
            .map(|h| match h.join() {
                Ok(count) => count,
                Err(_) => fail("a cold-phase client thread panicked"),
            })
            .sum()
    }
}
