//! Explore the paper's §IV.3 trade-offs interactively:
//! qubit caps (Fig. 14d), hardware acceleration (Fig. 14a) and the
//! dense-qLDPC storage extension (§IV.3.4), plus instance-size scaling.
//!
//! ```sh
//! cargo run --example factoring_tradeoffs
//! ```

use raa::shor::sensitivity::{sweep_acceleration, sweep_qldpc_storage, sweep_qubit_cap};
use raa::shor::{FactoringInstance, TransversalArchitecture};

fn main() {
    let base = TransversalArchitecture::paper();

    println!("=== qubit cap vs runtime (Fig. 14d) ===");
    for pt in sweep_qubit_cap(&base, &[13e6, 16e6, 20e6, 30e6]) {
        println!(
            "  cap {:>5.1}M -> {:>5.1}M qubits, {:>6.2} days, {:>6.1} Mqubit-days",
            pt.value / 1e6,
            pt.estimate.qubits / 1e6,
            pt.estimate.expected_days(),
            pt.space_time().volume_mqubit_days()
        );
    }

    println!();
    println!("=== atom acceleration (Fig. 14a,b) ===");
    for (pt, cycle) in sweep_acceleration(&base, &[0.3, 1.0, 3.0]) {
        println!(
            "  accel x{:<4} -> QEC cycle {:>6.0} us, {:>6.2} days",
            pt.value,
            cycle * 1e6,
            pt.estimate.expected_days()
        );
    }

    println!();
    println!("=== dense qLDPC idle storage (sec. IV.3.4) ===");
    let pts = sweep_qldpc_storage(&base, &[1.0, 10.0]);
    let saving = 1.0 - pts[1].estimate.qubits / pts[0].estimate.qubits;
    println!(
        "  10x storage compression: {:.1}M -> {:.1}M qubits ({:.1}% saving)",
        pts[0].estimate.qubits / 1e6,
        pts[1].estimate.qubits / 1e6,
        saving * 100.0
    );

    println!();
    println!("=== instance-size scaling ===");
    for bits in [1024u32, 2048, 3072] {
        let mut arch = base;
        arch.instance = FactoringInstance::new(bits);
        let est = arch.estimate();
        println!(
            "  RSA-{bits}: {:>5.1}M qubits, {:>7.2} days",
            est.qubits / 1e6,
            est.expected_days()
        );
    }
}
