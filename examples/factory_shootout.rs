//! Run the algorithm-level scenario catalog head to head: the three magic
//! state factory skeletons (§III.6), the three logical gadget skeletons
//! (§III.5, §III.7–III.8) and the [[8,3,2]] colour-code block, each through
//! the full build → DEM → decode pipeline at its paper operating point
//! (one transversal CNOT layer per SE round).
//!
//! Same engine contract as `decoder_shootout`: one `ExperimentSpec` per
//! scenario, reproducible for any `RAA_THREADS`, shot budget from
//! `RAA_SHOTS`.
//!
//! ```sh
//! cargo run --release --example factory_shootout
//! ```

use raa::sim::{
    run_timed, DecoderChoice, ExperimentSpec, FactoryProtocol, GadgetKind, McConfig, NoiseModel,
    Rounds, Scenario, ShotBudget,
};

fn main() {
    let shots: usize = std::env::var("RAA_SHOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let threads: usize = std::env::var("RAA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let p = 2e-3;

    // The conformance catalog (tests/scenario_conformance.rs), at d = 3
    // (the [[8,3,2]] block is a fixed distance-2 code).
    let catalog: Vec<(Scenario, u32)> = vec![
        (
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Distill15,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Cultivation,
                rounds: Rounds::Fixed(6),
            },
            3,
        ),
        (
            Scenario::Gadget {
                kind: GadgetKind::Adder,
                width: 4,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            Scenario::Gadget {
                kind: GadgetKind::Lookup,
                width: 4,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            Scenario::Gadget {
                kind: GadgetKind::Fanout,
                width: 3,
                rounds: Rounds::Fixed(4),
            },
            3,
        ),
        (
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
            2,
        ),
    ];

    println!("algorithm-scenario shoot-out: p = {p}, {shots} shots, union-find, dem sampler\n");
    for (scenario, distance) in catalog {
        let mut spec = ExperimentSpec::new(
            format!("factory-shootout/{}", scenario.label()),
            scenario,
            distance,
        );
        spec.noise = NoiseModel::uniform(p);
        spec.decoder = DecoderChoice::UnionFind;
        spec.shots = ShotBudget::Fixed(shots);
        spec.seed = 99;
        spec.mc = McConfig::default().with_threads(threads);
        let (record, timing) = run_timed(&spec);
        println!(
            "{:<22} d = {}  patches = {:>2}  cnots = {:>3}  detectors = {:>4}  \
             p_L = {:.5} +- {:.5}   ({:.0} shots/s)",
            record.scenario,
            record.distance,
            record.patches,
            record.cnots,
            record.num_detectors,
            record.logical_error_rate(),
            record.standard_error(),
            record.shots as f64 / timing.decode_seconds
        );
    }

    println!(
        "\nthe factory/gadget entries are Clifford skeletons of the paper's algorithm \
         workloads (one transversal CNOT layer per SE round, §III.6-III.8): same patch \
         count, same CNOT traffic, fully determined stabilizer flows, so the entire \
         decode battery applies."
    );
}
