//! Compare the crate's decoders head to head on the same surface-code
//! memory workload: weighted union–find, exact small-instance matching
//! (the MLE-like reference), BP-reweighted union–find, and sliding-window
//! union–find. This is the paper's §III.4 observation made concrete — the
//! choice of decoder moves the effective decoding factor α, and Fig. 13(a)
//! shows the architecture tolerates that.
//!
//! ```sh
//! cargo run --release --example decoder_shootout
//! ```

use raa::decode::{
    mc, BpUnionFindDecoder, DecodingGraph, MatchingDecoder, McConfig, UniformLayers,
    UnionFindDecoder, WindowedDecoder,
};
use raa::stabsim::DetectorErrorModel;
use raa::surface::{Basis, MemoryExperiment, NoiseModel};
use std::time::Instant;

fn main() {
    let shots: usize = std::env::var("RAA_SHOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let d = 3u32;
    let p = 5e-3;
    let exp = MemoryExperiment {
        distance: d,
        rounds: d as usize,
        basis: Basis::Z,
        noise: NoiseModel::uniform(p),
    };
    let circuit = exp.build();
    let dem = DetectorErrorModel::from_circuit(&circuit);
    let (graph, arbitrary) = DecodingGraph::from_dem_decomposed(&dem);
    println!(
        "surface-code memory d = {d}, {} rounds, p = {p}: {} detectors, {} DEM errors \
         ({arbitrary} arbitrary decompositions), {shots} shots\n",
        d,
        dem.num_detectors,
        dem.len()
    );

    let per_layer = ((d * d - 1) / 2 * 2) as usize; // detectors per SE round

    let uf = UnionFindDecoder::new(graph.clone());
    let mwpm = MatchingDecoder::new(graph.clone());
    let bp = BpUnionFindDecoder::new(&dem);
    let windowed = WindowedDecoder::new(
        graph,
        UniformLayers {
            detectors_per_layer: per_layer,
        },
        2,
        2,
    );

    // Fixed seed + per-batch derived RNG streams: the numbers below are
    // reproducible and identical for any RAA_THREADS setting.
    let threads: usize = std::env::var("RAA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let cfg = McConfig::default().with_threads(threads);
    let run = |name: &str, f: &dyn Fn(&McConfig) -> mc::DecodeStats| {
        let t0 = Instant::now();
        let stats = f(&cfg);
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{name:<22} p_L = {:.5} +- {:.5}   ({:.0} shots/s)",
            stats.logical_error_rate(),
            stats.standard_error(),
            stats.shots as f64 / dt
        );
    };

    run("union-find", &|cfg| {
        mc::logical_error_rate_seeded(&circuit, &uf, shots, 99, cfg)
    });
    run("exact matching (MLE)", &|cfg| {
        mc::logical_error_rate_seeded(&circuit, &mwpm, shots, 99, cfg)
    });
    run("BP + union-find", &|cfg| {
        mc::logical_error_rate_seeded(&circuit, &bp, shots, 99, cfg)
    });
    run("windowed union-find", &|cfg| {
        mc::logical_error_rate_seeded(&circuit, &windowed, shots, 99, cfg)
    });

    println!(
        "\nmore accurate decoders (matching, BP+UF) lower p_L, i.e. a smaller effective \
         decoding factor alpha; the architecture-level impact of alpha is Fig. 13(a) \
         (`cargo run -p raa-bench --bin fig13`)."
    );
}
