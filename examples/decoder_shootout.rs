//! Compare the crate's decoders head to head on the same surface-code
//! memory workload: weighted union–find, exact small-instance matching
//! (the MLE-like reference), BP-reweighted union–find, and sliding-window
//! union–find. This is the paper's §III.4 observation made concrete — the
//! choice of decoder moves the effective decoding factor α, and Fig. 13(a)
//! shows the architecture tolerates that.
//!
//! The workload is one `raa::sim` sweep grid with the decoder as its only
//! axis; the experiment engine owns sampling, decoding and seeding, so the
//! numbers are reproducible and identical for any `RAA_THREADS` setting.
//!
//! ```sh
//! cargo run --release --example decoder_shootout
//! # Deep-circuit mode: stream windowed decoders one time layer at a time
//! # (rounds = 10·d, O(window) resident syndrome memory per shot).
//! RAA_STREAMING=1 cargo run --release --example decoder_shootout
//! ```

use raa::sim::{
    run_timed, DecoderChoice, McConfig, Rounds, SamplerChoice, Scenario, ShotBudget, SweepGrid,
};

fn main() {
    let shots: usize = std::env::var("RAA_SHOTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let threads: usize = std::env::var("RAA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    // RAA_SAMPLER=circuit re-simulates gate by gate; the default compiled
    // DEM path is the fast one (see the README's sampler perf notes).
    let sampler = match std::env::var("RAA_SAMPLER").as_deref() {
        Ok("circuit") => SamplerChoice::Circuit,
        Ok("dem") | Err(_) => SamplerChoice::Dem,
        Ok(other) => panic!("RAA_SAMPLER must be 'dem' or 'circuit', got {other:?}"),
    };
    // RAA_STREAMING=1 switches to the deep-circuit mode: windowed decoders
    // only (the streaming pipeline is a windowed pipeline), 10·d rounds,
    // buffer width as the axis — the shoot-out becomes "how much look-ahead
    // buys whole-circuit accuracy at O(window) memory".
    let streaming = std::env::var("RAA_STREAMING").is_ok_and(|v| !v.is_empty() && v != "0");
    let d = 3u32;
    let p = 5e-3;

    let (rounds, decoders): (Rounds, Vec<DecoderChoice>) = if streaming {
        (
            Rounds::TimesDistance(10),
            vec![
                DecoderChoice::Windowed {
                    commit: 2,
                    buffer: 1,
                },
                DecoderChoice::Windowed {
                    commit: 2,
                    buffer: 3,
                },
                DecoderChoice::Windowed {
                    commit: 2,
                    buffer: 6,
                },
            ],
        )
    } else {
        (
            Rounds::TimesDistance(1),
            vec![
                DecoderChoice::UnionFind,
                DecoderChoice::Matching,
                DecoderChoice::BpUnionFind,
                DecoderChoice::Windowed {
                    commit: 2,
                    buffer: 2,
                },
            ],
        )
    };

    let grid = SweepGrid::new(
        if streaming {
            "shootout-streaming"
        } else {
            "shootout"
        },
        Scenario::Memory { rounds },
    )
    .with_distances(vec![d])
    .with_p_phys(vec![p])
    .with_decoders(decoders)
    .with_shots(ShotBudget::Fixed(shots))
    .with_sampler(sampler)
    .with_streaming(streaming)
    .with_seed(99)
    .with_mc(McConfig::default().with_threads(threads));

    let specs = grid.specs();
    let mut first = true;
    for spec in &specs {
        // All four specs share a seed, so the decoders are compared on
        // identical syndrome samples; shots/s counts the decode phase only
        // (setup — DEM extraction, graph building — is excluded).
        let (record, timing) = run_timed(spec);
        if first {
            println!(
                "surface-code memory d = {d}, {} rounds, p = {p}: {} detectors, {} DEM errors \
                 ({} arbitrary decompositions), {shots} shots, {} sampler{}\n",
                record.se_rounds,
                record.num_detectors,
                record.num_dem_errors,
                record.arbitrary_decompositions,
                record.sampler,
                if record.streaming {
                    ", streaming (O(window) resident syndromes)"
                } else {
                    ""
                },
            );
            first = false;
        }
        println!(
            "{:<22} p_L = {:.5} +- {:.5}   ({:.0} shots/s)",
            record.decoder,
            record.logical_error_rate(),
            record.standard_error(),
            record.shots as f64 / timing.decode_seconds
        );
    }

    if streaming {
        println!(
            "\na wider look-ahead buffer approaches whole-circuit accuracy while resident \
             syndrome memory stays O(window) per shot — the deep-circuit regime of §II.4 \
             (the whole-batch path would grow O(rounds))."
        );
    } else {
        println!(
            "\nmore accurate decoders (matching, BP+UF) lower p_L, i.e. a smaller effective \
             decoding factor alpha; the architecture-level impact of alpha is Fig. 13(a) \
             (`cargo run -p raa-bench --bin fig13`)."
        );
    }
}
