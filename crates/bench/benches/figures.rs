//! Criterion benchmarks of the figure-regeneration computations themselves:
//! one benchmark per table/figure of the paper's evaluation section, so
//! `cargo bench` exercises every analysis path end to end (at reduced
//! Monte-Carlo depth where simulation is involved).

use criterion::{criterion_group, criterion_main, Criterion};
use raa::core::{fit, idle, logical, ArchContext, ErrorModelParams};
use raa::factory::sweep_factory_se_rounds;
use raa::shor::sensitivity::{sweep_alpha, sweep_qubit_cap, sweep_reaction};
use raa::shor::{optimize, BeverlandModel, GidneyEkeraModel, SearchSpace, TransversalArchitecture};
use raa::surface::{run_transversal, Basis, DecoderKind, NoiseModel, TransversalCnotExperiment};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig02(c: &mut Criterion) {
    c.bench_function("fig02_comparison_points", |b| {
        b.iter(|| {
            let ours = TransversalArchitecture::paper().estimate().space_time();
            let ge = GidneyEkeraModel::atom_array(1e-3).space_time();
            let bev = BeverlandModel::atomic_reference().space_time();
            (ours.volume(), ge.volume(), bev.volume())
        });
    });
}

fn bench_fig06a(c: &mut Criterion) {
    c.bench_function("fig06a_simulate_and_fit_point", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let exp = TransversalCnotExperiment {
                distance: 3,
                patches: 2,
                depth: 8,
                cnots_per_round: 1.0,
                basis: Basis::Z,
                noise: NoiseModel::uniform(4e-3),
            };
            let r = run_transversal(&exp, DecoderKind::UnionFind, 1024, &mut rng);
            r.error_per_cnot()
        });
    });
    c.bench_function("fig06a_eq4_fit", |b| {
        let truth = ErrorModelParams::paper();
        let points: Vec<fit::CnotErrorPoint> = [(0.5, 9u32), (1.0, 11), (2.0, 13), (4.0, 15)]
            .iter()
            .map(|&(x, d)| fit::CnotErrorPoint {
                x,
                distance: d,
                error_per_cnot: logical::cnot_error(&truth, d, x),
            })
            .collect();
        b.iter(|| fit::fit_cnot_model(&points, 0.1));
    });
}

fn bench_fig06b(c: &mut Criterion) {
    c.bench_function("fig06b_volume_sweep", |b| {
        let p = ErrorModelParams::paper();
        b.iter(|| logical::optimal_cnots_per_round(&p, 1e-12));
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11ab_factory_se_sweep", |b| {
        let rounds = [0.25, 0.5, 1.0, 2.0, 4.0];
        b.iter(|| sweep_factory_se_rounds(&ArchContext::paper(), 1.6e-11, &rounds));
    });
    c.bench_function("fig11cd_idle_optimum", |b| {
        let p = ErrorModelParams::paper();
        b.iter(|| idle::optimal_idle_period(&p, 27, 10.0));
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_breakdowns", |b| {
        b.iter(|| {
            let est = TransversalArchitecture::paper().estimate();
            (est.space.ranked(), est.errors.total())
        });
    });
}

fn bench_fig13(c: &mut Criterion) {
    c.bench_function("fig13a_alpha_sweep", |b| {
        let base = TransversalArchitecture::paper();
        b.iter(|| sweep_alpha(&base, &[1.0 / 6.0, 0.5]));
    });
}

fn bench_fig14(c: &mut Criterion) {
    c.bench_function("fig14c_reaction_sweep", |b| {
        let base = TransversalArchitecture::paper();
        b.iter(|| sweep_reaction(&base, &[3e-3, 1e-3]));
    });
    c.bench_function("fig14d_qubit_cap_point", |b| {
        let base = TransversalArchitecture::paper();
        b.iter(|| sweep_qubit_cap(&base, &[19e6]));
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_optimizer_reduced", |b| {
        let base = TransversalArchitecture::paper();
        let space = SearchSpace {
            w_exp: vec![3, 4],
            w_mul: vec![3, 4],
            r_sep: vec![64, 96, 128],
            max_factories: vec![192],
        };
        b.iter(|| optimize(&base, &space, 0.08));
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig02, bench_fig06a, bench_fig06b, bench_fig11, bench_fig12,
              bench_fig13, bench_fig14, bench_table2
}
criterion_main!(figures);
