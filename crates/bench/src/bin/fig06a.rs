//! Regenerates Fig. 6(a): the transversal logical-error model, by *actual
//! circuit-level simulation* — two-patch transversal-CNOT circuits are
//! sampled with the Pauli-frame simulator, decoded jointly (correlated
//! decoding) with the union–find decoder on the circuit's detector error
//! model, and Eq. (4) is fitted to the measured per-CNOT error rates.
//!
//! The paper fits the MLE-decoder data of Ref. [17] at p = 0.1%, extracting
//! α ≈ 1/6 and Λ ≈ 20. Those error rates need ≥10⁸ shots at d ≥ 7; per the
//! substitution rule we run the same experiment at an elevated physical
//! error rate (default p = 4×10⁻³, Λ ≈ 2.5 for union–find) where Monte
//! Carlo converges in seconds, and report the fitted (α, Λ). Use
//! `RAA_SHOTS` to deepen the statistics.

use raa::core::fit::{fit_cnot_model, CnotErrorPoint};
use raa::core::logical;
use raa::surface::{run_transversal, Basis, DecoderKind, NoiseModel, TransversalCnotExperiment};
use raa_bench::{env_shots, fmt, header, row};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let shots = env_shots(20_000);
    let p_phys = 4e-3;
    let mut rng = StdRng::seed_from_u64(0x6A);

    header(&format!(
        "Fig. 6(a): per-CNOT logical error vs x (CNOTs per SE round), p = {p_phys}, {shots} shots/point"
    ));
    row(&[
        "x".into(),
        "d".into(),
        "measured p_CNOT".into(),
        "shots".into(),
        "failures".into(),
    ]);

    let mut points = Vec::new();
    for &distance in &[3u32, 5] {
        for &x in &[0.5, 1.0, 2.0, 4.0] {
            let exp = TransversalCnotExperiment {
                distance,
                patches: 2,
                depth: 16,
                cnots_per_round: x,
                basis: Basis::Z,
                noise: NoiseModel::uniform(p_phys),
            };
            let result = run_transversal(&exp, DecoderKind::UnionFind, shots, &mut rng);
            let per_cnot = result.error_per_cnot();
            row(&[
                fmt(x),
                distance.to_string(),
                fmt(per_cnot),
                result.stats.shots.to_string(),
                result.stats.failures.to_string(),
            ]);
            if per_cnot > 0.0 && per_cnot < 0.4 {
                points.push(CnotErrorPoint {
                    x,
                    distance,
                    error_per_cnot: per_cnot,
                });
            }
        }
    }

    // Memory baseline at the same p pins the x → 0 limit of Eq. (4): the
    // per-round memory error gives Λ directly, isolating α in the fit.
    header("memory baseline (x -> 0 limit)");
    row(&["d".into(), "per-round memory error".into()]);
    let mut memory_rates = Vec::new();
    for &distance in &[3u32, 5] {
        let exp = raa::surface::MemoryExperiment {
            distance,
            rounds: 3 * distance as usize,
            basis: Basis::Z,
            noise: NoiseModel::uniform(p_phys),
        };
        let r = raa::surface::run_memory(&exp, DecoderKind::UnionFind, shots, &mut rng);
        let per_round = r.error_per_qubit_round();
        row(&[distance.to_string(), fmt(per_round)]);
        memory_rates.push((distance, per_round));
    }
    if memory_rates.len() == 2 && memory_rates[1].1 > 0.0 {
        let lambda_mem = memory_rates[0].1 / memory_rates[1].1;
        header(&format!(
            "memory-anchored Lambda = p_L(d=3)/p_L(d=5) = {lambda_mem:.2} \
             (union-find at p = {p_phys}; the paper's MLE at 1e-3 gives ~20)"
        ));
    }

    let fit = fit_cnot_model(&points, 0.1);
    header(&format!(
        "Eq. (4) joint fit: alpha = {:.3}, Lambda = {:.2}, mean sq. log-residual = {:.3} \
         (paper at p = 1e-3 with MLE decoding: alpha ~ 1/6, Lambda ~ 20)",
        fit.alpha, fit.lambda, fit.residual
    ));

    header("model vs measurement at the fitted parameters");
    row(&["x".into(), "d".into(), "measured".into(), "fitted".into()]);
    let params = fit.to_params();
    for pt in &points {
        row(&[
            fmt(pt.x),
            pt.distance.to_string(),
            fmt(pt.error_per_cnot),
            fmt(logical::cnot_error(&params, pt.distance, pt.x)),
        ]);
    }
}
