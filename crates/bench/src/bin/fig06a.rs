//! Regenerates Fig. 6(a): the transversal logical-error model, by *actual
//! circuit-level simulation* — two-patch transversal-CNOT circuits are
//! sampled with the Pauli-frame simulator, decoded jointly (correlated
//! decoding) with the union–find decoder on the circuit's detector error
//! model, and Eq. (4) is fitted to the measured per-CNOT error rates.
//!
//! Both sweeps are declared as `raa::sim` grids (distances × CNOTs-per-round
//! for the gate sweep, distances for the memory baseline) and run through
//! the experiment engine, which owns sampling, decoding, parallel sharding
//! and seeding; set `RAA_JSON=1` to dump the raw records as JSON lines.
//!
//! The paper fits the MLE-decoder data of Ref. [17] at p = 0.1%, extracting
//! α ≈ 1/6 and Λ ≈ 20. Those error rates need ≥10⁸ shots at d ≥ 7; per the
//! substitution rule we run the same experiment at an elevated physical
//! error rate (default p = 4×10⁻³, Λ ≈ 2.5 for union–find) where Monte
//! Carlo converges in seconds, and report the fitted (α, Λ). Use
//! `RAA_SHOTS` to deepen the statistics.

use raa::core::logical;
use raa::sim::{analysis, run_sweep, Rounds, Scenario, ShotBudget, SweepGrid};
use raa_bench::{env_shots, fmt, header, maybe_dump_json, row};

fn main() {
    let shots = env_shots(20_000);
    let p_phys = 4e-3;

    let cnot_grid = SweepGrid::new(
        "fig06a/cnot",
        Scenario::TransversalCnot {
            patches: 2,
            depth: 16,
            cnots_per_round: 1.0,
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![p_phys])
    .with_cnots_per_round(vec![0.5, 1.0, 2.0, 4.0])
    .with_shots(ShotBudget::Fixed(shots))
    .with_seed(0x6A);
    let cnot_records = run_sweep(&cnot_grid);

    header(&format!(
        "Fig. 6(a): per-CNOT logical error vs x (CNOTs per SE round), p = {p_phys}, {shots} shots/point"
    ));
    row(&[
        "x".into(),
        "d".into(),
        "measured p_CNOT".into(),
        "shots".into(),
        "failures".into(),
    ]);
    for r in &cnot_records {
        row(&[
            fmt(r.cnots_per_round.expect("transversal record")),
            r.distance.to_string(),
            fmt(r.error_per_cnot().expect("cnots > 0")),
            r.shots.to_string(),
            r.failures.to_string(),
        ]);
    }

    // Memory baseline at the same p pins the x → 0 limit of Eq. (4): the
    // per-round memory error slope across distances gives Λ directly,
    // isolating α in the fit.
    let memory_grid = SweepGrid::new(
        "fig06a/memory",
        Scenario::Memory {
            rounds: Rounds::TimesDistance(3),
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![p_phys])
    .with_shots(ShotBudget::Fixed(shots))
    .with_seed(0x6B);
    let memory_records = run_sweep(&memory_grid);

    header("memory baseline (x -> 0 limit)");
    row(&["d".into(), "per-round memory error".into()]);
    for r in &memory_records {
        row(&[r.distance.to_string(), fmt(r.error_per_qubit_round())]);
    }
    if let Some(lambda_mem) = analysis::memory_lambda(&memory_records) {
        header(&format!(
            "memory-anchored Lambda = {lambda_mem:.2} \
             (union-find at p = {p_phys}; the paper's MLE at 1e-3 gives ~20)"
        ));
    }

    match analysis::fit_eq4(&cnot_records, 0.1) {
        Some(fit) => {
            header(&format!(
                "Eq. (4) joint fit: alpha = {:.3}, Lambda = {:.2}, mean sq. log-residual = {:.3} \
                 (paper at p = 1e-3 with MLE decoding: alpha ~ 1/6, Lambda ~ 20)",
                fit.alpha, fit.lambda, fit.residual
            ));
            if fit.lambda > 1.0 {
                header("model vs measurement at the fitted parameters");
                row(&["x".into(), "d".into(), "measured".into(), "fitted".into()]);
                // Anchor the model at the sweep's own p_phys so the fitted
                // curve is compared against the data that produced it.
                let params = fit.to_params(p_phys);
                for pt in analysis::cnot_points(&cnot_records) {
                    row(&[
                        fmt(pt.x),
                        pt.distance.to_string(),
                        fmt(pt.error_per_cnot),
                        fmt(logical::cnot_error(&params, pt.distance, pt.x)),
                    ]);
                }
            } else {
                header(
                    "fitted Lambda <= 1 (no suppression at this statistics depth); raise RAA_SHOTS",
                );
            }
        }
        None => header("too few usable points for the Eq. (4) fit; raise RAA_SHOTS"),
    }

    let mut all = cnot_records;
    all.extend(memory_records);
    maybe_dump_json(&all);
}
