//! Ablation studies for the design choices DESIGN.md calls out: each row
//! quantifies one architectural decision of the paper by evaluating the
//! road-not-taken on the same substrate.
//!
//! 1. Magic states: cultivation + 8T-to-CCZ versus a 15-to-1 pipeline;
//! 2. CNOT fan-out: measurement-based GHZ versus the log-depth tree;
//! 3. Carry runways: Table II's r_sep = 96 versus a runway-free adder;
//! 4. Windowed arithmetic: 3/4 windows versus naive w = 1 schoolbook;
//! 5. Transversal O(1) SE rounds versus lattice-surgery-style d rounds.

use raa::core::{logical, ArchContext};
use raa::factory::{CczFactory, Distill15Factory};
use raa::gadgets::adder::CuccaroAdder;
use raa::gadgets::fanout::{ghz_fanout, tree_fanout};
use raa::shor::TransversalArchitecture;
use raa_bench::{fmt, header, row};

fn main() {
    let ctx = ArchContext::paper();

    header("Ablation 1: magic-state strategy (per-CCZ volume, equal output error)");
    row(&[
        "strategy".into(),
        "qubits".into(),
        "interval (ms)".into(),
        "qubit*s per CCZ".into(),
    ]);
    let cult = CczFactory::for_target(&ctx, 1.6e-11).expect("reachable");
    row(&[
        "cultivation + 8T-to-CCZ (paper)".into(),
        fmt(cult.qubits(&ctx)),
        fmt(cult.production_interval(&ctx) * 1e3),
        fmt(cult.qubits(&ctx) * cult.production_interval(&ctx)),
    ]);
    if let Some(dist) = Distill15Factory::for_target(1e-3, cult.t_input_error()) {
        row(&[
            format!("15-to-1 x{} + 8T-to-CCZ", dist.levels),
            fmt(dist.qubits(&ctx)),
            fmt(dist.ccz_interval(&ctx) * 1e3),
            fmt(dist.qubits(&ctx) * dist.ccz_interval(&ctx)),
        ]);
    }

    header("Ablation 2: CNOT fan-out into a 2994-bit register");
    row(&[
        "method".into(),
        "seconds".into(),
        "extra patches".into(),
        "logical error".into(),
    ]);
    let g = ghz_fanout(&ctx, 2994, 2.0);
    let t = tree_fanout(&ctx, 2994);
    row(&[
        "GHZ measurement-based (paper)".into(),
        fmt(g.seconds),
        fmt(g.extra_patches),
        fmt(g.logical_error),
    ]);
    row(&[
        "log-depth CNOT tree".into(),
        fmt(t.seconds),
        fmt(t.extra_patches),
        fmt(t.logical_error),
    ]);

    header("Ablation 3: oblivious carry runways (2048-bit addition)");
    row(&["adder".into(), "duration (s)".into(), "CCZ".into()]);
    let with = CuccaroAdder::new(2048, 96, 43);
    let without = CuccaroAdder::without_runways(2048);
    row(&[
        "r_sep = 96, r_pad = 43 (paper)".into(),
        fmt(with.duration(&ctx)),
        fmt(with.toffoli_count() as f64),
    ]);
    row(&[
        "no runways".into(),
        fmt(without.duration(&ctx)),
        fmt(without.toffoli_count() as f64),
    ]);

    header("Ablation 4: windowed arithmetic (whole RSA-2048 run)");
    row(&["windows".into(), "days".into(), "CCZ total".into()]);
    let paper = TransversalArchitecture::paper().estimate();
    row(&[
        "w_exp = 3, w_mul = 4 (paper)".into(),
        fmt(paper.expected_days()),
        fmt(paper.ccz_total),
    ]);
    let mut naive = TransversalArchitecture::paper();
    naive.params.w_exp = 1;
    naive.params.w_mul = 1;
    let naive_est = naive.estimate();
    row(&[
        "w_exp = w_mul = 1 (schoolbook)".into(),
        fmt(naive_est.expected_days()),
        fmt(naive_est.ccz_total),
    ]);

    header("Ablation 5: SE rounds per transversal CNOT (per-CNOT volume, Eq. 6)");
    row(&["schedule".into(), "relative volume".into()]);
    let p = ctx.error;
    let v1 = logical::volume_per_cnot(&p, 1.0, 1e-12).expect("below threshold");
    let vd = logical::volume_per_cnot(&p, 1.0 / 27.0, 1e-12).expect("below threshold");
    row(&["O(1): 1 round per CNOT (paper)".into(), fmt(v1)]);
    row(&["O(d): 27 rounds per CNOT (surgery-style)".into(), fmt(vd)]);
    header(&format!("surgery-style volume overhead: {:.1}x", vd / v1));
}
