//! Regenerates Fig. 6(b): space–time volume per logical CNOT versus the
//! number of SE rounds per CNOT (Eq. 6), at the 1e-12 target and for the two
//! decoding factors the paper studies. The optimum sits at ≲ 1 SE round per
//! CNOT, which is what justifies the transversal O(1)-round schedule.

use raa::core::{logical, ErrorModelParams};
use raa_bench::{fmt, header, row};

fn main() {
    let target = 1e-12;
    header("Fig. 6(b): relative volume per logical CNOT vs SE rounds per CNOT (Eq. 6)");
    row(&[
        "rounds/CNOT".into(),
        "volume (alpha=1/6)".into(),
        "volume (alpha=1/2)".into(),
    ]);
    let a16 = ErrorModelParams::paper();
    let a12 = ErrorModelParams::paper().with_alpha(0.5);
    let mut rounds = 0.0625f64;
    while rounds <= 16.0 {
        let x = 1.0 / rounds;
        let v16 = logical::volume_per_cnot(&a16, x, target);
        let v12 = logical::volume_per_cnot(&a12, x, target);
        row(&[
            fmt(rounds),
            v16.map_or("-".into(), fmt),
            v12.map_or("-".into(), fmt),
        ]);
        rounds *= 2.0;
    }
    let opt16 = 1.0 / logical::optimal_cnots_per_round(&a16, target);
    let opt12 = 1.0 / logical::optimal_cnots_per_round(&a12, target);
    header(&format!(
        "optimal SE rounds per CNOT: {opt16:.2} (alpha = 1/6), {opt12:.2} (alpha = 1/2) — paper: <= 1"
    ));
    header(&format!(
        "effective thresholds at 1 CNOT/round: {:.3}% (alpha = 1/6), {:.3}% (alpha = 1/2) — paper: 0.86%, 0.67%",
        logical::effective_threshold(&a16, 1.0) * 100.0,
        logical::effective_threshold(&a12, 1.0) * 100.0
    ));
}
