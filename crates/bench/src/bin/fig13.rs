//! Regenerates Fig. 13: sensitivity to (a) the decoding factor α and (b) the
//! qubit coherence time, with the code distance re-optimized per point.

use raa::shor::sensitivity::{sweep_alpha, sweep_coherence};
use raa::shor::TransversalArchitecture;
use raa_bench::{fmt, header, row};

fn main() {
    let base = TransversalArchitecture::paper();

    header("Fig. 13(a): space-time volume vs decoding factor alpha");
    row(&[
        "alpha".into(),
        "eff. threshold @x=1 (%)".into(),
        "distance".into(),
        "qubits".into(),
        "days".into(),
        "Mqubit-days".into(),
    ]);
    let alphas = [1.0 / 6.0, 0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0, 1.0];
    for pt in sweep_alpha(&base, &alphas) {
        let st = pt.space_time();
        let thr = 1e-2 / (pt.value + 1.0) * 100.0;
        row(&[
            fmt(pt.value),
            fmt(thr),
            pt.estimate.distance.to_string(),
            fmt(st.qubits),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }
    header("paper: threshold drop 0.86% -> 0.6% costs only ~50% more volume");

    header("Fig. 13(b): space-time volume vs coherence time");
    row(&[
        "T_coh (s)".into(),
        "distance".into(),
        "qubits".into(),
        "days".into(),
        "Mqubit-days".into(),
    ]);
    let cohs = [100.0, 30.0, 10.0, 3.0, 1.0, 0.3, 0.1];
    for pt in sweep_coherence(&base, &cohs) {
        let st = pt.space_time();
        row(&[
            fmt(pt.value),
            pt.estimate.distance.to_string(),
            fmt(st.qubits),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }
    header("paper: slow increase until T_coh < 1 s, then accelerating");
}
