//! Regenerates Fig. 11(c,d): optimizing the syndrome-extraction frequency of
//! idle storage. (c) sweeps the SE period at several code distances — the
//! optimum is largely distance-independent; (d) sweeps the physical error
//! rate — the optimum sits where the idle error matches the per-round gate
//! error, ≈8 ms at the paper's 10 s coherence time.

use raa::core::{idle, ErrorModelParams};
use raa_bench::{fmt, header, row};

fn main() {
    let t_coh = 10.0;
    let periods: Vec<f64> = (0..14).map(|i| 1e-4 * 2f64.powi(i)).collect();

    header("Fig. 11(c): idle logical error per qubit per second vs SE period, by distance");
    let distances = [15u32, 21, 27, 33];
    let mut head = vec!["period (s)".to_string()];
    head.extend(distances.iter().map(|d| format!("d={d}")));
    row(&head);
    let params = ErrorModelParams::paper();
    for &dt in &periods {
        let mut cells = vec![fmt(dt)];
        for &d in &distances {
            cells.push(fmt(idle::idle_error_per_second(&params, d, dt, t_coh)));
        }
        row(&cells);
    }
    for &d in &distances {
        let opt = idle::optimal_idle_period(&params, d, t_coh);
        header(&format!("optimal period at d = {d}: {:.1} ms", opt * 1e3));
    }

    header("Fig. 11(d): idle error per second vs SE period, by gate error rate (d = 27)");
    let p_gates = [2e-4, 5e-4, 1e-3, 2e-3];
    let mut head = vec!["period (s)".to_string()];
    head.extend(p_gates.iter().map(|p| format!("p={p}")));
    row(&head);
    for &dt in &periods {
        let mut cells = vec![fmt(dt)];
        for &p in &p_gates {
            let params = ErrorModelParams::paper().with_p_phys(p);
            cells.push(fmt(idle::idle_error_per_second(&params, 27, dt, t_coh)));
        }
        row(&cells);
    }
    header("paper: optimum ~8 ms at T_coh = 10 s, where idle error ~ gate error");
}
