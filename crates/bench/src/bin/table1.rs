//! Regenerates Table I: typical parameters for dynamically-reconfigurable
//! neutral atom arrays, plus the derived timing quantities used in §IV.

use raa::physics::{CycleModel, PhysicalParams};
use raa_bench::{fmt, header, row};

fn main() {
    let p = PhysicalParams::default();
    header("Table I: neutral-atom platform parameters (paper values)");
    row(&["site spacing (um)".into(), fmt(p.site_spacing * 1e6)]);
    row(&["acceleration (m/s^2)".into(), fmt(p.acceleration)]);
    row(&["gate time (us)".into(), fmt(p.gate_time * 1e6)]);
    row(&["measure time (us)".into(), fmt(p.measure_time * 1e6)]);
    row(&["decode time (us)".into(), fmt(p.decode_time * 1e6)]);

    header("Derived timing at d = 27 (paper §IV.2)");
    let cycle = CycleModel::new(&p, 27);
    row(&[
        "SE gate segment (us)".into(),
        fmt(cycle.gate_segment() * 1e6),
    ]);
    row(&[
        "patch move time (us)".into(),
        fmt(cycle.patch_move_time() * 1e6),
    ]);
    row(&["QEC cycle (us)".into(), fmt(cycle.cycle_time() * 1e6)]);
    row(&[
        "reaction time (us)".into(),
        fmt(cycle.reaction_time() * 1e6),
    ]);
}
