//! Regenerates Fig. 12: space usage and logical-error contributions of the
//! two main factoring subroutines (lookup and addition) at the Table II
//! parameters. During lookup, the GHZ CNOT fan-out dominates both budgets;
//! during addition, the magic-state factories dominate the *active* space.

use raa::core::ArchContext;
use raa::gadgets::LookupAddition;
use raa::shor::TransversalArchitecture;
use raa::sim::{run, ExperimentSpec, NoiseModel, Scenario, ShotBudget};
use raa_bench::{env_shots, fmt, header, maybe_dump_json, row};

fn main() {
    let arch = TransversalArchitecture::paper();
    let est = arch.estimate();
    let s = est.space;

    header("Fig. 12(a): physical-qubit usage by component (Table II parameters)");
    row(&["component".into(), "qubits".into(), "phase".into()]);
    row(&[
        "accumulator register".into(),
        fmt(s.accumulator),
        "both".into(),
    ]);
    row(&[
        "multiplier register (dense idle)".into(),
        fmt(s.multiplier),
        "both".into(),
    ]);
    row(&[
        "lookup output register".into(),
        fmt(s.lookup_output),
        "both".into(),
    ]);
    row(&[
        "GHZ CNOT fan-out".into(),
        fmt(s.ghz_fanout),
        "lookup".into(),
    ]);
    row(&[
        "adder MAJ/UMA pipeline".into(),
        fmt(s.adder_pipeline),
        "addition".into(),
    ]);
    row(&[
        "magic-state factories".into(),
        fmt(s.factories),
        "both".into(),
    ]);
    header(&format!(
        "peak footprint: {:.2}M qubits ({} factories, d = {})",
        est.qubits / 1e6,
        est.factories,
        est.distance
    ));

    header("Fig. 12(b): logical-error contributions per run");
    row(&["source".into(), "probability".into()]);
    row(&["CCZ magic states".into(), fmt(est.errors.ccz)]);
    row(&[
        "transversal gates (fan-out dominated)".into(),
        fmt(est.errors.gates),
    ]);
    row(&["runway approximation".into(), fmt(est.errors.runways)]);
    row(&["dense-storage idling".into(), fmt(est.errors.storage)]);
    row(&["total".into(), fmt(est.errors.total())]);

    let ctx = ArchContext::paper();
    let gadget = LookupAddition::new(3, 4, 2048, 96, 43);
    header(&format!(
        "fan-out share of the lookup error: {:.0}% (paper: dominant)",
        gadget.lookup().fanout_error_share(&ctx) * 100.0
    ));

    // Simulation cross-check of the dominance claim: a spec-driven logical
    // GHZ fan-out run through the experiment engine (at small distance and
    // elevated p, per the substitution rule) shows the fan-out CNOT layer is
    // itself the error-limiting primitive it is modeled as.
    let shots = env_shots(4_000);
    let p_check = 2e-3;
    let targets = 3;
    let mut spec = ExperimentSpec::new("fig12/ghz_fanout", Scenario::GhzFanout { targets }, 3);
    spec.noise = NoiseModel::uniform(p_check);
    spec.shots = ShotBudget::Fixed(shots);
    spec.seed = 0x12;
    let record = run(&spec);
    header(&format!(
        "simulated GHZ fan-out check (d = 3, {targets} branches, p = {p_check}, {shots} shots): \
         pair-parity error = {} per shot, {} per fan-out CNOT",
        fmt(record.logical_error_rate()),
        fmt(record.error_per_cnot().expect("fan-out has CNOTs")),
    ));
    maybe_dump_json(&[record]);
}
