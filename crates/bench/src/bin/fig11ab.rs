//! Regenerates Fig. 11(a,b): space–time volume of the 8T-to-CCZ factory
//! versus SE rounds per CNOT, with the code distance re-optimized per point,
//! for decoding factors α = 1/6 (effective threshold 0.86% at one CNOT per
//! round) and α = 1/2 (0.67%).

use raa::core::{ArchContext, ErrorModelParams};
use raa::factory::sweep_factory_se_rounds;
use raa_bench::{fmt, header, row};

fn main() {
    let ccz_target = 1.6e-11; // the paper's per-CCZ budget for RSA-2048
    let rounds: Vec<f64> = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

    for (label, alpha) in [
        ("alpha = 1/6 (p_th,1 = 0.86%)", 1.0 / 6.0),
        ("alpha = 1/2 (p_th,1 = 0.67%)", 0.5),
    ] {
        header(&format!(
            "Fig. 11(a,b): factory volume per CCZ vs SE rounds per CNOT, {label}"
        ));
        row(&[
            "rounds/CNOT".into(),
            "distance".into(),
            "volume per CCZ (qubit*s)".into(),
        ]);
        let mut ctx = ArchContext::paper();
        ctx.error = ErrorModelParams::paper().with_alpha(alpha);
        for pt in sweep_factory_se_rounds(&ctx, ccz_target, &rounds) {
            row(&[
                fmt(pt.se_rounds_per_cnot),
                pt.distance.map_or("-".into(), |d| d.to_string()),
                pt.volume_per_ccz.map_or("-".into(), fmt),
            ]);
        }
    }
    header("paper: around 1 SE round per gate provides a good balance, weak alpha dependence");
}
