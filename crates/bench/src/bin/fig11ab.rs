//! Regenerates Fig. 11(a,b): space–time volume of the 8T-to-CCZ factory
//! versus SE rounds per CNOT, with the code distance re-optimized per point,
//! for decoding factors α = 1/6 (effective threshold 0.86% at one CNOT per
//! round) and α = 1/2 (0.67%).
//!
//! The α values are the paper's calibrated constants; as a cross-check the
//! binary first runs a spec-driven `raa::sim` memory sweep (d = 3, 5 at an
//! elevated p) through the experiment engine and reports the measured
//! suppression base Λ next to the model's, so the analytic sweep stays
//! anchored to the simulation stack. `RAA_SHOTS` deepens the check;
//! `RAA_JSON=1` dumps its records.

use raa::core::{ArchContext, ErrorModelParams};
use raa::factory::sweep_factory_se_rounds;
use raa::sim::{analysis, run_sweep, Rounds, Scenario, ShotBudget, SweepGrid};
use raa_bench::{env_shots, fmt, header, maybe_dump_json, row};

fn main() {
    // Simulation anchor: a declarative memory sweep at elevated physical
    // error rate (the substitution rule — the paper's p = 0.1% needs >1e8
    // shots per point).
    let shots = env_shots(8_000);
    let p_check = 4e-3;
    let lambda_grid = SweepGrid::new(
        "fig11ab/lambda",
        Scenario::Memory {
            rounds: Rounds::TimesDistance(3),
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![p_check])
    .with_shots(ShotBudget::Fixed(shots))
    .with_seed(0x11AB);
    let records = run_sweep(&lambda_grid);
    if let Some(lambda) = analysis::memory_lambda(&records) {
        header(&format!(
            "simulation anchor: measured Lambda = {lambda:.2} \
             (union-find memory sweep at p = {p_check}, {shots} shots/point; \
             the model below uses the paper's calibrated alpha at p = 0.1%)"
        ));
    }

    let ccz_target = 1.6e-11; // the paper's per-CCZ budget for RSA-2048
    let rounds: Vec<f64> = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];

    for (label, alpha) in [
        ("alpha = 1/6 (p_th,1 = 0.86%)", 1.0 / 6.0),
        ("alpha = 1/2 (p_th,1 = 0.67%)", 0.5),
    ] {
        header(&format!(
            "Fig. 11(a,b): factory volume per CCZ vs SE rounds per CNOT, {label}"
        ));
        row(&[
            "rounds/CNOT".into(),
            "distance".into(),
            "volume per CCZ (qubit*s)".into(),
        ]);
        let mut ctx = ArchContext::paper();
        ctx.error = ErrorModelParams::paper().with_alpha(alpha);
        for pt in sweep_factory_se_rounds(&ctx, ccz_target, &rounds) {
            row(&[
                fmt(pt.se_rounds_per_cnot),
                pt.distance.map_or("-".into(), |d| d.to_string()),
                pt.volume_per_ccz.map_or("-".into(), fmt),
            ]);
        }
    }
    header("paper: around 1 SE round per gate provides a good balance, weak alpha dependence");
    maybe_dump_json(&records);
}
