//! Regenerates Fig. 14: timescale and qubit-count sensitivity — (a) volume
//! and (b) QEC-cycle duration vs atom acceleration, (c) volume vs reaction
//! time (with the CNOT fan-out floor), (d) the qubit/run-time trade-off,
//! plus the §IV.3.4 dense-qLDPC storage row.

use raa::shor::sensitivity::{
    sweep_acceleration, sweep_qldpc_storage, sweep_qubit_cap, sweep_reaction,
};
use raa::shor::TransversalArchitecture;
use raa_bench::{fmt, header, row};

fn main() {
    let base = TransversalArchitecture::paper();

    header("Fig. 14(a,b): acceleration rescale");
    row(&[
        "accel scale".into(),
        "QEC cycle (us)".into(),
        "qubits".into(),
        "days".into(),
        "Mqubit-days".into(),
    ]);
    for (pt, cycle) in sweep_acceleration(&base, &[0.1, 0.3, 1.0, 3.0, 10.0]) {
        let st = pt.space_time();
        row(&[
            fmt(pt.value),
            fmt(cycle * 1e6),
            fmt(st.qubits),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }

    header("Fig. 14(c): reaction-time sweep");
    row(&["reaction (ms)".into(), "days".into(), "Mqubit-days".into()]);
    for pt in sweep_reaction(&base, &[10e-3, 3e-3, 1e-3, 0.3e-3, 0.1e-3]) {
        let st = pt.space_time();
        row(&[
            fmt(pt.value * 1e3),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }
    header("paper: gains bottom out at the CNOT fan-out volume");

    header("Fig. 14(d): qubit-number / run-time trade-off");
    row(&[
        "qubit cap".into(),
        "qubits used".into(),
        "days".into(),
        "Mqubit-days".into(),
    ]);
    for pt in sweep_qubit_cap(&base, &[12e6, 15e6, 19e6, 25e6, 40e6, 80e6]) {
        let st = pt.space_time();
        row(&[
            fmt(pt.value),
            fmt(st.qubits),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }
    header("paper: comparable volume along the curve; knee below ~15M qubits");

    header("Extension (§IV.3.4): dense qLDPC idle storage");
    row(&["compression".into(), "qubits".into(), "space saving".into()]);
    let pts = sweep_qldpc_storage(&base, &[1.0, 10.0]);
    let q0 = pts[0].estimate.qubits;
    for pt in &pts {
        row(&[
            fmt(pt.value),
            fmt(pt.estimate.qubits),
            format!("{:.1}%", (1.0 - pt.estimate.qubits / q0) * 100.0),
        ]);
    }
}
