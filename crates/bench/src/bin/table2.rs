//! Regenerates Table II: algorithm parameters chosen for 2048-bit factoring,
//! by running the parameter optimizer and printing the winner next to the
//! paper's choice and the Gidney–Ekerå reference parameters.

use raa::shor::{optimize_paper_instance, AlgorithmParams};
use raa_bench::{header, row};

fn main() {
    header("Table II: algorithm parameters for 2048-bit factoring");
    row(&[
        "parameter".into(),
        "optimizer".into(),
        "paper".into(),
        "Ref. [8]".into(),
    ]);
    let opt = optimize_paper_instance();
    let o = opt.architecture.params;
    let p = AlgorithmParams::paper_table2();
    let g = AlgorithmParams::gidney_ekera_table2();
    let line = |name: &str, f: fn(&AlgorithmParams) -> u32| {
        row(&[
            name.into(),
            f(&o).to_string(),
            f(&p).to_string(),
            f(&g).to_string(),
        ]);
    };
    line("exponent window w_exp", |a| a.w_exp);
    line("multiplication window w_mul", |a| a.w_mul);
    line("runway separation r_sep", |a| a.r_sep);
    line("runway padding r_pad", |a| a.r_pad);
    line("code distance", |a| a.distance);
    line("max factory number", |a| a.max_factories);

    header("Optimizer's estimate at its chosen parameters");
    println!("{}", opt.estimate);
}
