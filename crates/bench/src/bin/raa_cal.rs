//! `raa-cal` — the closed calibration loop as a command-line tool: runs the
//! memory + transversal-CNOT calibration sweeps through the content-addressed
//! record cache, fits (α, Λ) of Eq. (4), anchors `p_thres = Λ·p_phys` at the
//! sweep's own noise, and prints the simulation-calibrated RSA-2048 estimate
//! next to the paper-assumed one.
//!
//! ```sh
//! cargo run --release --bin raa-cal                 # cold: samples + caches
//! cargo run --release --bin raa-cal                 # warm: 0 fresh shots
//! RAA_SHOTS=60000 cargo run --release --bin raa-cal # deeper statistics
//! RAA_SWEEPD=127.0.0.1:7411 cargo run --release --bin raa-cal # via daemon
//! ```
//!
//! Environment knobs: `RAA_CACHE_DIR` (default `target/raa-cal-cache`; set
//! empty to disable caching), `RAA_SHOTS` (per-point budget for both
//! sweeps), `RAA_P` (sweep physical error rate), `RAA_POINT_THREADS`
//! (concurrent grid points, 0 = all cores), `RAA_JSON` (dump raw records),
//! `RAA_SWEEPD` (address of a running `raa-sweepd`; the sweeps then run in
//! the daemon against its cache and `RAA_CACHE_DIR`/`RAA_POINT_THREADS`
//! are ignored). A malformed knob value is a hard error (exit 2), never a
//! silent fallback to the default.
//! The `freshly sampled shots` line is the cache contract CI pins: a second
//! run over the same cache must report 0.

use raa::core::ErrorModelParams;
use raa::shor::TransversalArchitecture;
use raa::sim::jobs::Response;
use raa::sim::{calibrate, Calibration, CalibrationConfig, ServiceClient};
use raa_bench::{env_parse_strict, env_string, fmt, header, maybe_dump_json, row};

fn main() {
    let mut cfg = CalibrationConfig::default();
    match env_string("RAA_CACHE_DIR") {
        Some(dir) if dir.is_empty() => cfg.cache_dir = None,
        Some(dir) => cfg.cache_dir = Some(dir.into()),
        None => cfg.cache_dir = Some("target/raa-cal-cache".into()),
    }
    if let Some(shots) = env_parse_strict::<usize>("RAA_SHOTS") {
        cfg.memory_shots = shots;
        cfg.cnot_shots = shots;
    }
    if let Some(p) = env_parse_strict::<f64>("RAA_P") {
        cfg.p_phys = p;
    }
    if let Some(threads) = env_parse_strict::<usize>("RAA_POINT_THREADS") {
        cfg.point_threads = threads;
    }

    let daemon = env_string("RAA_SWEEPD").filter(|a| !a.is_empty());
    header(&format!(
        "raa-cal: calibration sweeps at p = {}, d in {:?}, x in {:?} ({})",
        cfg.p_phys,
        cfg.distances,
        cfg.cnots_per_round,
        match &daemon {
            Some(addr) => format!("daemon: {addr}"),
            None => format!(
                "cache: {}",
                cfg.cache_dir
                    .as_deref()
                    .map_or("disabled".into(), |d| d.display().to_string())
            ),
        },
    ));
    let cal = match &daemon {
        Some(addr) => calibrate_via_daemon(addr, &cfg),
        None => calibrate(&cfg).unwrap_or_else(|e| {
            eprintln!("calibration failed: {e}");
            std::process::exit(1);
        }),
    };
    print_calibration(&cal);
}

/// Runs the calibration job in a `raa-sweepd` daemon: same sweeps, same
/// fit, but sampled by (and cached in) the shared service.
fn calibrate_via_daemon(addr: &str, cfg: &CalibrationConfig) -> Calibration {
    let mut client = ServiceClient::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot reach raa-sweepd at {addr}: {e}");
        std::process::exit(1);
    });
    match client.calibrate(cfg) {
        Ok(Response::Calibrate { calibration, .. }) => calibration,
        Ok(Response::Error { message, .. }) => {
            eprintln!("calibration failed in daemon: {message}");
            std::process::exit(1);
        }
        Ok(Response::Shed { message, .. }) => {
            eprintln!("daemon is draining and shed the job: {message}");
            std::process::exit(1);
        }
        Ok(other) => {
            eprintln!("unexpected daemon response: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: daemon request failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints the calibration report — identical output whether the sweeps ran
/// locally or in the daemon, so CI can pin the same lines either way.
fn print_calibration(cal: &Calibration) {
    header("sweep execution");
    row(&[
        "points".into(),
        (cal.fresh_points + cal.cached_points).to_string(),
    ]);
    row(&["fresh points".into(), cal.fresh_points.to_string()]);
    row(&["cached points".into(), cal.cached_points.to_string()]);
    row(&["freshly sampled shots".into(), cal.fresh_shots.to_string()]);

    header("per-point records");
    row(&[
        "name".into(),
        "shots".into(),
        "failures".into(),
        "rate".into(),
    ]);
    for r in cal.memory_records.iter().chain(&cal.cnot_records) {
        row(&[
            r.name.clone(),
            r.shots.to_string(),
            r.failures.to_string(),
            fmt(r.logical_error_rate()),
        ]);
    }

    header(&format!(
        "Eq. (4) fit: alpha = {:.4}, Lambda = {:.3} (memory anchor: {}), residual = {:.4}",
        cal.fit.alpha,
        cal.fit.lambda,
        cal.lambda_memory
            .map_or("n/a".into(), |l| format!("{l:.3}")),
        cal.fit.residual
    ));
    header(&format!(
        "calibrated model at sweep noise: {} (p_thres = Lambda * p_phys, not the paper's assumed 1%)",
        cal.params
    ));

    let (arch, est) = TransversalArchitecture::calibrated(cal.params);
    header("simulation-calibrated RSA-2048 estimate (p_phys re-anchored at 1e-3)");
    row(&["model".into(), arch.error.to_string()]);
    row(&["estimate".into(), est.to_string()]);

    let (paper_arch, paper_est) = TransversalArchitecture::calibrated(ErrorModelParams::paper());
    header("paper-assumed model, same optimizer");
    row(&["model".into(), paper_arch.error.to_string()]);
    row(&["estimate".into(), paper_est.to_string()]);

    let mut all = cal.memory_records.clone();
    all.extend(cal.cnot_records.iter().cloned());
    maybe_dump_json(&all);
}
