//! `raa-sweepd` — the long-running sweep/calibration daemon. Accepts
//! JSON-lines jobs over TCP (see `raa::sim::jobs` for the codec), runs grid
//! points on a shared worker pool with per-point panic isolation, and
//! persists every record in the content-addressed sweep cache so repeated
//! queries cost zero shots.
//!
//! ```sh
//! cargo run --release --bin raa-sweepd &            # listens on 127.0.0.1:7411
//! RAA_SWEEPD=127.0.0.1:7411 cargo run --release --bin raa-cal
//! cargo run --release --example load_generator      # hammer it
//! ```
//!
//! Environment knobs (malformed values are a hard error, exit 2):
//!
//! * `RAA_SWEEPD_ADDR` — listen address (default `127.0.0.1:7411`)
//! * `RAA_CACHE_DIR` — record cache directory (default
//!   `target/raa-sweepd-cache`; set empty to disable caching)
//! * `RAA_WORKERS` — worker threads (default 0 = all cores)
//! * `RAA_JOB_TIMEOUT_SECS` — per-job wall-clock budget; on expiry the
//!   job's queued points are shed, in-flight points finish and persist
//!   (default 300)
//! * `RAA_SCRUB_INTERVAL_SECS` — periodic cache-integrity scrub cadence
//!   (default 60; 0 disables)
//! * `RAA_CACHE_BUDGET_BYTES` — LRU eviction budget enforced by the scrub
//!   (default unlimited)
//!
//! On SIGTERM/SIGINT the daemon drains: in-flight points finish and
//! persist, queued jobs are shed with a clean `shed` status, then the
//! process exits 0.

use raa::sim::service::serve;
use raa::sim::{ScrubOptions, ServiceConfig, SweepService};
use raa_bench::{env_parse_strict, env_string};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Set from the signal handler; bridged onto the serve loop's shutdown
/// flag by a watcher thread (the handler itself must stay async-signal-safe,
/// so it only stores a flag).
static STOP: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: `signal(2)` is only handed `on_signal`, an async-signal-safe
    // `extern "C" fn` that does nothing but store a relaxed atomic flag; no
    // Rust state is touched from signal context, and the returned previous
    // handler is deliberately discarded.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let addr = env_string("RAA_SWEEPD_ADDR").unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let cache_dir = match env_string("RAA_CACHE_DIR") {
        Some(dir) if dir.is_empty() => None,
        Some(dir) => Some(dir.into()),
        None => Some("target/raa-sweepd-cache".into()),
    };
    let workers = env_parse_strict::<usize>("RAA_WORKERS").unwrap_or(0);
    let job_timeout =
        Duration::from_secs(env_parse_strict::<u64>("RAA_JOB_TIMEOUT_SECS").unwrap_or(300));
    let scrub_interval = match env_parse_strict::<u64>("RAA_SCRUB_INTERVAL_SECS").unwrap_or(60) {
        0 => None,
        secs => Some(Duration::from_secs(secs)),
    };
    let scrub = ScrubOptions {
        size_budget: env_parse_strict::<u64>("RAA_CACHE_BUDGET_BYTES"),
        ..ScrubOptions::default()
    };

    let service = SweepService::start(ServiceConfig {
        cache_dir,
        workers,
        job_timeout,
        scrub,
        scrub_interval,
    })
    .unwrap_or_else(|e| {
        eprintln!("error: cannot start sweep service: {e}");
        std::process::exit(1);
    });
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "raa-sweepd listening on {} ({} workers, job timeout {}s)",
        listener
            .local_addr()
            .map_or(addr.clone(), |a| a.to_string()),
        service.status().workers,
        job_timeout.as_secs(),
    );

    install_signal_handlers();
    let shutdown = Arc::new(AtomicBool::new(false));
    let watcher_flag = Arc::clone(&shutdown);
    std::thread::Builder::new()
        .name("raa-sweepd-signals".into())
        .spawn(move || loop {
            if STOP.load(Ordering::SeqCst) {
                watcher_flag.store(true, Ordering::SeqCst);
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawning the signal watcher");

    if let Err(e) = serve(listener, &service, &shutdown) {
        eprintln!("error: serve loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("raa-sweepd drained and stopped");
}
