//! Regenerates Fig. 2: comparison of the transversal architecture with
//! lattice-surgery resource estimates (Gidney–Ekerå [8] rescaled to 900 µs
//! cycles at several reaction times, and a Beverland et al. [9] style point).
//!
//! Columns: label, physical qubits, runtime (days), space–time volume
//! (Mqubit·days). The paper's headline row should read ≈19 M qubits and
//! ≈5.6 days, roughly 50× faster than the GE19 rescaling at comparable
//! qubit counts.

use raa::shor::{BeverlandModel, GidneyEkeraModel, TransversalArchitecture};
use raa_bench::{fmt, header, row};

fn main() {
    header("Fig. 2: qubits vs runtime vs space-time volume");
    row(&[
        "series".into(),
        "qubits".into(),
        "days".into(),
        "Mqubit-days".into(),
    ]);

    let ours = TransversalArchitecture::paper().estimate();
    let st = ours.space_time();
    row(&[
        "this-work (transversal, 1 ms reaction)".into(),
        fmt(st.qubits),
        fmt(st.days()),
        fmt(st.volume_mqubit_days()),
    ]);
    println!(
        "#   {} lookup-additions; lookup {:.3} s; addition {:.3} s; {:.2e} CCZ; {} factories; d = {}",
        ours.lookup_additions,
        ours.lookup_seconds,
        ours.addition_seconds,
        ours.ccz_total,
        ours.factories,
        ours.distance
    );

    for tr_ms in [1.0, 3.0, 10.0, 30.0, 100.0] {
        let ge = GidneyEkeraModel::atom_array(tr_ms * 1e-3);
        let st = ge.space_time();
        row(&[
            format!("GE19 @900us cycle, {tr_ms} ms reaction"),
            fmt(st.qubits),
            fmt(st.days()),
            fmt(st.volume_mqubit_days()),
        ]);
    }

    let ge_sc = GidneyEkeraModel::superconducting_reference();
    let st = ge_sc.space_time();
    row(&[
        "GE19 reference (1 us cycle, superconducting)".into(),
        fmt(st.qubits),
        fmt(st.days()),
        fmt(st.volume_mqubit_days()),
    ]);

    let bev = BeverlandModel::atomic_reference();
    let st = bev.space_time();
    row(&[
        "Beverland et al. style (100 us ops)".into(),
        fmt(st.qubits),
        fmt(st.days()),
        fmt(st.volume_mqubit_days()),
    ]);

    let speedup = GidneyEkeraModel::atom_array(1e-3).runtime_seconds() / ours.expected_seconds();
    header(&format!(
        "run-time speed-up vs GE19@900us at 1 ms reaction: {speedup:.1}x (paper: ~50x)"
    ));
}
