//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section (see DESIGN.md for the full index), printing
//! tab-separated series with `#`-prefixed headers so the output can be piped
//! into plotting tools or diffed in CI.

/// Reads a shot-count override from `RAA_SHOTS` (used by the Monte-Carlo
/// figures so CI can run fast and papers-quality runs can go deep).
pub fn env_shots(default: usize) -> usize {
    env_parse_strict("RAA_SHOTS").unwrap_or(default)
}

/// Reads an env knob strictly: unset returns `None`, but a value that does
/// not parse **exits with a clear error** (status 2) instead of silently
/// falling back — `RAA_SHOTS=10k` must never run a 20 000-shot sweep the
/// user did not ask for.
pub fn env_parse_strict<T: std::str::FromStr>(key: &str) -> Option<T> {
    let value = std::env::var(key).ok()?;
    match value.parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => {
            eprintln!(
                "error: {key}={value:?} is not a valid {}",
                std::any::type_name::<T>()
            );
            std::process::exit(2);
        }
    }
}

/// Reads a string-valued env knob: `None` when unset, the raw value
/// otherwise. This is the only sanctioned way to read a free-form knob
/// (addresses, paths) — every other module goes through this crate so the
/// audit's `env-var` rule can keep raw `std::env::var` out of the tree.
pub fn env_string(key: &str) -> Option<String> {
    std::env::var(key).ok()
}

/// Prints a `#`-prefixed header line.
// Stdout *is* this crate's product: the figure binaries emit their tables
// through these helpers, so the workspace-wide print_stdout lint is lifted
// exactly here.
#[allow(clippy::print_stdout)]
pub fn header(title: &str) {
    println!("# {title}");
}

/// Prints a tab-separated row.
#[allow(clippy::print_stdout)]
pub fn row(cells: &[String]) {
    println!("{}", cells.join("\t"));
}

/// Dumps experiment-engine records as JSON lines when `RAA_JSON` is set
/// (any value), so every simulation-backed figure binary can feed plotting
/// or archival pipelines without bespoke flags.
#[allow(clippy::print_stdout)]
pub fn maybe_dump_json(records: &[raa::sim::ExperimentRecord]) {
    if std::env::var_os("RAA_JSON").is_some() {
        header("json records");
        print!("{}", raa::sim::to_json_lines(records));
    }
}

/// Formats a float compactly for table output.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shots_default() {
        std::env::remove_var("RAA_SHOTS");
        assert_eq!(env_shots(123), 123);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(1e-9).contains('e'));
        assert!(!fmt(3.25).contains('e'));
    }
}
