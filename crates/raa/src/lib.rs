//! `raa` — low-overhead transversal architectures for reconfigurable atom
//! arrays.
//!
//! A from-scratch Rust reproduction of Zhou, Duckering, Zhao, Bluvstein,
//! Cain, Kubica, Wang & Lukin, *Resource Analysis of Low-Overhead
//! Transversal Architectures for Reconfigurable Atom Arrays* (ISCA 2025,
//! arXiv:2505.15907). This facade crate re-exports the full stack:
//!
//! | Module | Contents | Paper |
//! |---|---|---|
//! | [`physics`] | Table I parameters, Eq. (1) movement law, QEC cycle timing | §II.1 |
//! | [`stabsim`] | stabilizer circuit IR, tableau + Pauli-frame simulators, DEM extraction | §III.4 substrate |
//! | [`decode`] | decoding graphs, union–find and exact matching decoders | §II.4 |
//! | [`surface`] | rotated surface code, transversal-CNOT experiments, [[8,3,2]] code | §II.3, §III.6 |
//! | [`sim`] | declarative experiment engine: specs, sweep grids, JSON records, Eq. (4) fits | §III.4 evaluation |
//! | [`core`] | the logical-error model Eqs. (2)–(6), fits, idle/SE optimization | §III.4, §III.5 |
//! | [`factory`] | cultivation + 8T-to-CCZ factory (28 p² verified exactly) | §III.6 |
//! | [`gadgets`] | Cuccaro adders with runways, GHZ-fan-out look-up tables, Bell bridges | §III.5–III.8 |
//! | [`shor`] | RSA-2048 end-to-end estimate, Table II optimizer, Fig. 2 baselines | §IV |
//! | [`chem`] | THC qubitization on the same building blocks | §III.3 |
//!
//! # Quickstart
//!
//! ```
//! use raa::shor::TransversalArchitecture;
//!
//! let estimate = TransversalArchitecture::paper().estimate();
//! // The paper's headline: ~19 M qubits, ~5.6 days for 2048-bit factoring.
//! assert!(estimate.qubits < 25e6);
//! assert!(estimate.expected_days() < 7.0);
//! ```

#![forbid(unsafe_code)]

pub use raa_chem as chem;
pub use raa_core as core;
pub use raa_decode as decode;
pub use raa_factory as factory;
pub use raa_gadgets as gadgets;
pub use raa_physics as physics;
pub use raa_shor as shor;
pub use raa_sim as sim;
pub use raa_stabsim as stabsim;
pub use raa_surface as surface;
