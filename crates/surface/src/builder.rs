//! Multi-patch circuit builder with automatic detector derivation.
//!
//! Builds noisy syndrome-extraction circuits for one or more surface-code
//! patches connected by transversal CNOTs. Detectors are derived by tracking
//! the *stabilizer flow*: for every plaquette we remember which earlier
//! measurements its current eigenvalue equals (as a parity), updating the
//! bookkeeping through each transversal gate (a transversal CX maps
//! `Z_target → Z_control·Z_target` and `X_control → X_control·X_target`
//! plaquette-wise). Every ancilla measurement then yields a detector against
//! its flowed reference, which is exactly the correlated-decoding structure
//! the paper relies on (§II.4).

use crate::rotated::RotatedSurfaceCode;
use raa_stabsim::Circuit;

/// Circuit-level depolarizing noise strengths (§III.4: every operation is
/// followed — or for measurements preceded — by a depolarizing channel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Two-qubit depolarizing probability after every CX.
    pub p2: f64,
    /// Single-qubit depolarizing on data qubits, once per SE round (idle).
    pub p_idle: f64,
    /// Preparation flip probability after each reset.
    pub p_prep: f64,
    /// Measurement flip probability before each readout.
    pub p_meas: f64,
}

impl NoiseModel {
    /// Uniform circuit-level noise of strength `p` (the paper's `p_phys`).
    pub fn uniform(p: f64) -> Self {
        Self {
            p2: p,
            p_idle: p,
            p_prep: p,
            p_meas: p,
        }
    }

    /// No noise at all (for determinism checks).
    pub fn noiseless() -> Self {
        Self::uniform(0.0)
    }
}

/// Measurement basis of an experiment: which logical operator is protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Basis {
    /// Prepare |0⟩, protect logical Z, detect X errors in readout.
    Z,
    /// Prepare |+⟩, protect logical X.
    X,
}

/// Stabilizer-flow entry: the set of measurement indices whose parity equals
/// the plaquette's current eigenvalue; `None` when the value is undetermined.
type Flow = Option<Vec<usize>>;

fn flow_xor(a: &Flow, b: &Flow) -> Flow {
    match (a, b) {
        (Some(x), Some(y)) => {
            let mut out = x.clone();
            for &m in y {
                if let Some(pos) = out.iter().position(|&v| v == m) {
                    out.remove(pos);
                } else {
                    out.push(m);
                }
            }
            Some(out)
        }
        _ => None,
    }
}

/// Builder for multi-patch transversal circuits on identical distance-`d`
/// patches.
///
/// # Example
///
/// ```
/// use raa_surface::builder::{Basis, NoiseModel, PatchCircuitBuilder};
///
/// // Two patches, |0⟩ init, one SE round, transversal CNOT, one more round.
/// let mut b = PatchCircuitBuilder::new(3, 2, Basis::Z, NoiseModel::uniform(1e-3));
/// b.initialize();
/// b.se_round();
/// b.transversal_cx(0, 1);
/// b.se_round();
/// let circuit = b.finish();
/// assert_eq!(circuit.num_observables(), 2);
/// assert!(circuit.num_detectors() > 0);
/// ```
#[derive(Debug)]
pub struct PatchCircuitBuilder {
    code: RotatedSurfaceCode,
    num_patches: usize,
    basis: Basis,
    noise: NoiseModel,
    circuit: Circuit,
    /// Per patch, per Z-plaquette.
    z_flow: Vec<Vec<Flow>>,
    /// Per patch, per X-plaquette.
    x_flow: Vec<Vec<Flow>>,
    /// Per patch: the logical Z operator's reference (measurement parity it
    /// currently equals), `None` when undetermined.
    logical_z: Vec<Flow>,
    /// Per patch: the logical X operator's reference.
    logical_x: Vec<Flow>,
    /// Per patch: false once consumed by a mid-circuit measurement.
    alive: Vec<bool>,
    /// Z-plaquette index → X-plaquette index under the diagonal reflection
    /// used by transversal H.
    h_map_z_to_x: Vec<usize>,
    initialized: bool,
    se_rounds_emitted: usize,
    cnots_emitted: usize,
}

impl PatchCircuitBuilder {
    /// Creates a builder for `num_patches` distance-`distance` patches.
    ///
    /// # Panics
    ///
    /// Panics if `num_patches` is zero or `distance < 2`.
    pub fn new(distance: u32, num_patches: usize, basis: Basis, noise: NoiseModel) -> Self {
        assert!(num_patches >= 1, "need at least one patch");
        let code = RotatedSurfaceCode::new(distance);
        let nz = code.z_plaquettes().len();
        let nx = code.x_plaquettes().len();
        // Transversal H maps the code to its dual, which equals the original
        // layout rotated by 90°: position (x, y) ↦ (y, 2d − x) carries every
        // Z plaquette onto an X plaquette (and the logical Z row onto the
        // logical X column).
        let two_d = 2 * distance as i32;
        let h_map_z_to_x = code
            .z_plaquettes()
            .iter()
            .map(|zp| {
                let want = (zp.position.1, two_d - zp.position.0);
                code.x_plaquettes()
                    .iter()
                    .position(|xp| xp.position == want)
                    .expect("rotated layout is self-dual under 90-degree rotation")
            })
            .collect();
        Self {
            code,
            num_patches,
            basis,
            noise,
            circuit: Circuit::new(),
            z_flow: vec![vec![None; nz]; num_patches],
            x_flow: vec![vec![None; nx]; num_patches],
            logical_z: vec![None; num_patches],
            logical_x: vec![None; num_patches],
            alive: vec![true; num_patches],
            h_map_z_to_x,
            initialized: false,
            se_rounds_emitted: 0,
            cnots_emitted: 0,
        }
    }

    /// The underlying code layout.
    pub fn code(&self) -> &RotatedSurfaceCode {
        &self.code
    }

    /// Number of SE rounds emitted so far.
    pub fn se_rounds_emitted(&self) -> usize {
        self.se_rounds_emitted
    }

    /// Number of transversal CX layers emitted so far.
    pub fn cnots_emitted(&self) -> usize {
        self.cnots_emitted
    }

    /// Global circuit-qubit index of data qubit `i` of patch `p`.
    pub fn data_qubit(&self, patch: usize, i: usize) -> u32 {
        (patch * self.code.num_qubits() + i) as u32
    }

    fn x_anc(&self, patch: usize, i: usize) -> u32 {
        (patch * self.code.num_qubits() + self.code.x_ancilla(i)) as u32
    }

    fn z_anc(&self, patch: usize, i: usize) -> u32 {
        (patch * self.code.num_qubits() + self.code.z_ancilla(i)) as u32
    }

    /// Prepares every patch in the builder's basis and seeds stabilizer flows:
    /// the basis-aligned plaquettes start with a known (+1) eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn initialize(&mut self) {
        assert!(!self.initialized, "initialize() may only be called once");
        self.initialized = true;
        let all_data: Vec<u32> = (0..self.num_patches)
            .flat_map(|p| (0..self.code.num_data()).map(move |i| (p, i)))
            .map(|(p, i)| self.data_qubit(p, i))
            .collect();
        match self.basis {
            Basis::Z => {
                self.circuit.r(&all_data);
                self.circuit.x_error(&all_data, self.noise.p_prep);
                for p in 0..self.num_patches {
                    for s in 0..self.code.z_plaquettes().len() {
                        self.z_flow[p][s] = Some(Vec::new());
                    }
                    self.logical_z[p] = Some(Vec::new());
                }
            }
            Basis::X => {
                self.circuit.rx(&all_data);
                self.circuit.z_error(&all_data, self.noise.p_prep);
                for p in 0..self.num_patches {
                    for s in 0..self.code.x_plaquettes().len() {
                        self.x_flow[p][s] = Some(Vec::new());
                    }
                    self.logical_x[p] = Some(Vec::new());
                }
            }
        }
    }

    /// Prepares a *specific* patch in the given basis (overriding the
    /// builder-wide default), before the first SE round touches it. Useful
    /// for mixed-basis experiments like measurement-based GHZ preparation.
    ///
    /// # Panics
    ///
    /// Panics if called before [`PatchCircuitBuilder::initialize`].
    pub fn reprepare_patch(&mut self, patch: usize, basis: Basis) {
        assert!(self.initialized, "call initialize() first");
        assert!(patch < self.num_patches, "patch index out of range");
        let data: Vec<u32> = (0..self.code.num_data())
            .map(|i| self.data_qubit(patch, i))
            .collect();
        let nz = self.code.z_plaquettes().len();
        let nx = self.code.x_plaquettes().len();
        self.z_flow[patch] = vec![None; nz];
        self.x_flow[patch] = vec![None; nx];
        self.logical_z[patch] = None;
        self.logical_x[patch] = None;
        self.alive[patch] = true;
        match basis {
            Basis::Z => {
                self.circuit.r(&data);
                self.circuit.x_error(&data, self.noise.p_prep);
                for s in 0..nz {
                    self.z_flow[patch][s] = Some(Vec::new());
                }
                self.logical_z[patch] = Some(Vec::new());
            }
            Basis::X => {
                self.circuit.rx(&data);
                self.circuit.z_error(&data, self.noise.p_prep);
                for s in 0..nx {
                    self.x_flow[patch][s] = Some(Vec::new());
                }
                self.logical_x[patch] = Some(Vec::new());
            }
        }
    }

    /// Emits one noisy syndrome-extraction round on every patch, with
    /// detectors comparing each outcome to its flowed reference.
    pub fn se_round(&mut self) {
        assert!(self.initialized, "call initialize() first");
        self.se_rounds_emitted += 1;
        let nm = self.noise;
        // Reset ancillas.
        let z_ancs: Vec<u32> = (0..self.num_patches)
            .flat_map(|p| (0..self.code.z_plaquettes().len()).map(move |i| (p, i)))
            .map(|(p, i)| self.z_anc(p, i))
            .collect();
        let x_ancs: Vec<u32> = (0..self.num_patches)
            .flat_map(|p| (0..self.code.x_plaquettes().len()).map(move |i| (p, i)))
            .map(|(p, i)| self.x_anc(p, i))
            .collect();
        self.circuit.r(&z_ancs);
        self.circuit.x_error(&z_ancs, nm.p_prep);
        self.circuit.rx(&x_ancs);
        self.circuit.z_error(&x_ancs, nm.p_prep);

        // Four interleaved CX layers.
        for layer in 0..4 {
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for p in 0..self.num_patches {
                for (i, plaq) in self.code.x_plaquettes().iter().enumerate() {
                    if let Some(dq) = plaq.data[layer] {
                        pairs.push((self.x_anc(p, i), self.data_qubit(p, dq)));
                    }
                }
                for (i, plaq) in self.code.z_plaquettes().iter().enumerate() {
                    if let Some(dq) = plaq.data[layer] {
                        pairs.push((self.data_qubit(p, dq), self.z_anc(p, i)));
                    }
                }
            }
            self.circuit.cx(&pairs);
            self.circuit.depolarize2(&pairs, nm.p2);
        }

        // Data idle noise once per round.
        let all_data: Vec<u32> = (0..self.num_patches)
            .flat_map(|p| (0..self.code.num_data()).map(move |i| (p, i)))
            .map(|(p, i)| self.data_qubit(p, i))
            .collect();
        self.circuit.depolarize1(&all_data, nm.p_idle);

        // Measure ancillas; emit detectors against the flow.
        self.circuit.x_error(&z_ancs, nm.p_meas);
        let z_base = self.circuit.num_measurements();
        self.circuit.m(&z_ancs);
        self.circuit.z_error(&x_ancs, nm.p_meas);
        let x_base = self.circuit.num_measurements();
        self.circuit.mx(&x_ancs);

        let nz = self.code.z_plaquettes().len();
        let nx = self.code.x_plaquettes().len();
        for p in 0..self.num_patches {
            if !self.alive[p] {
                continue;
            }
            for s in 0..nz {
                let m = z_base + p * nz + s;
                if let Some(prev) = &self.z_flow[p][s] {
                    let mut dets = prev.clone();
                    dets.push(m);
                    self.circuit.detector_at(&dets);
                }
                self.z_flow[p][s] = Some(vec![m]);
            }
            for s in 0..nx {
                let m = x_base + p * nx + s;
                if let Some(prev) = &self.x_flow[p][s] {
                    let mut dets = prev.clone();
                    dets.push(m);
                    self.circuit.detector_at(&dets);
                }
                self.x_flow[p][s] = Some(vec![m]);
            }
        }
    }

    /// Emits a transversal logical CX from patch `control` to patch `target`:
    /// physical CXs between matching data qubits plus the flow update
    /// `Z_t ← Z_c·Z_t`, `X_c ← X_c·X_t` (plaquette-wise and logical).
    ///
    /// # Panics
    ///
    /// Panics if the patch indices coincide or are out of range.
    pub fn transversal_cx(&mut self, control: usize, target: usize) {
        assert!(self.initialized, "call initialize() first");
        assert!(control != target, "control and target patch must differ");
        assert!(
            control < self.num_patches && target < self.num_patches,
            "patch index out of range"
        );
        self.cnots_emitted += 1;
        let pairs: Vec<(u32, u32)> = (0..self.code.num_data())
            .map(|i| (self.data_qubit(control, i), self.data_qubit(target, i)))
            .collect();
        self.circuit.cx(&pairs);
        self.circuit.depolarize2(&pairs, self.noise.p2);
        // Flow update (plaquettes and logical operators alike).
        for s in 0..self.code.z_plaquettes().len() {
            self.z_flow[target][s] = flow_xor(&self.z_flow[target][s], &self.z_flow[control][s]);
        }
        for s in 0..self.code.x_plaquettes().len() {
            self.x_flow[control][s] = flow_xor(&self.x_flow[control][s], &self.x_flow[target][s]);
        }
        self.logical_z[target] = flow_xor(&self.logical_z[target], &self.logical_z[control]);
        self.logical_x[control] = flow_xor(&self.logical_x[control], &self.logical_x[target]);
    }

    /// Emits a transversal logical Hadamard on `patch`: physical H on every
    /// data qubit followed by the diagonal reflection of the patch (a block
    /// move, §II.4 — the paper assumes it costs the same as an entangling
    /// layer). Plaquette flows exchange between the X and Z sectors through
    /// the reflection map, and the logical operators swap roles.
    ///
    /// # Panics
    ///
    /// Panics if the builder is uninitialized or `patch` is out of range.
    pub fn transversal_h(&mut self, patch: usize) {
        assert!(self.initialized, "call initialize() first");
        assert!(patch < self.num_patches, "patch index out of range");
        let d = self.code.distance() as usize;
        let data: Vec<u32> = (0..self.code.num_data())
            .map(|i| self.data_qubit(patch, i))
            .collect();
        self.circuit.h(&data);
        self.circuit.depolarize1(&data, self.noise.p_idle);
        // Rotate the patch by 90°: data (r, c) moves to (d−1−c, r). Emit the
        // permutation as swaps along its cycles (physically one AOD block
        // rotation; the paper charges it like an entangling layer).
        let perm = |i: usize| {
            let (r, c) = (i / d, i % d);
            (d - 1 - c) * d + r
        };
        let mut visited = vec![false; d * d];
        let mut swaps = Vec::new();
        for start in 0..d * d {
            if visited[start] {
                continue;
            }
            let mut cycle = vec![start];
            visited[start] = true;
            let mut next = perm(start);
            while next != start {
                visited[next] = true;
                cycle.push(next);
                next = perm(next);
            }
            // Realize the cycle (a b c ...) as swaps (a b)(a c)...
            for &other in cycle.iter().skip(1) {
                swaps.push((
                    self.data_qubit(patch, cycle[0]),
                    self.data_qubit(patch, other),
                ));
            }
        }
        self.circuit.swap(&swaps);
        // Flow exchange through the reflection map.
        let nz = self.code.z_plaquettes().len();
        let mut new_x = vec![None; self.code.x_plaquettes().len()];
        let mut new_z = vec![None; nz];
        for (zi, nz_slot) in new_z.iter_mut().enumerate() {
            let xi = self.h_map_z_to_x[zi];
            new_x[xi] = self.z_flow[patch][zi].take();
            *nz_slot = self.x_flow[patch][xi].take();
        }
        self.x_flow[patch] = new_x;
        self.z_flow[patch] = new_z;
        std::mem::swap(&mut self.logical_z[patch], &mut self.logical_x[patch]);
    }

    /// Measures every data qubit of `patch` transversally in `basis`,
    /// consuming the patch: emits the final plaquette detectors of that
    /// basis and returns the measurement indices of the patch's logical
    /// operator support (for custom detectors/observables).
    ///
    /// # Panics
    ///
    /// Panics if the patch was already consumed.
    pub fn measure_patch(&mut self, patch: usize, basis: Basis) -> Vec<usize> {
        assert!(self.initialized, "call initialize() first");
        assert!(self.alive[patch], "patch {patch} was already measured");
        self.alive[patch] = false;
        let nd = self.code.num_data();
        let data: Vec<u32> = (0..nd).map(|i| self.data_qubit(patch, i)).collect();
        let base = match basis {
            Basis::Z => {
                self.circuit.x_error(&data, self.noise.p_meas);
                let base = self.circuit.num_measurements();
                self.circuit.m(&data);
                base
            }
            Basis::X => {
                self.circuit.z_error(&data, self.noise.p_meas);
                let base = self.circuit.num_measurements();
                self.circuit.mx(&data);
                base
            }
        };
        match basis {
            Basis::Z => {
                for (s, plaq) in self.code.z_plaquettes().iter().enumerate() {
                    if let Some(prev) = self.z_flow[patch][s].take() {
                        let mut dets = prev;
                        dets.extend(plaq.support().map(|dq| base + dq));
                        self.circuit.detector_at(&dets);
                    }
                }
            }
            Basis::X => {
                for (s, plaq) in self.code.x_plaquettes().iter().enumerate() {
                    if let Some(prev) = self.x_flow[patch][s].take() {
                        let mut dets = prev;
                        dets.extend(plaq.support().map(|dq| base + dq));
                        self.circuit.detector_at(&dets);
                    }
                }
            }
        }
        self.z_flow[patch].fill(None);
        self.x_flow[patch].fill(None);
        let support = match basis {
            Basis::Z => self.code.logical_z_support(),
            Basis::X => self.code.logical_x_support(),
        };
        support.into_iter().map(|dq| base + dq).collect()
    }

    /// Injects an X-error channel of probability `p` on data qubit `i` of
    /// `patch`, at the current point of the circuit. Probability-1
    /// injections are deterministic Pauli faults — the differential
    /// tableau-vs-frame conformance tests use them to compare engines
    /// bit-for-bit on scenario circuits; error channels never perturb the
    /// stabilizer-flow bookkeeping.
    pub fn inject_x_error(&mut self, patch: usize, i: usize, p: f64) {
        assert!(self.initialized, "call initialize() first");
        let q = self.data_qubit(patch, i);
        self.circuit.x_error(&[q], p);
    }

    /// Z-basis twin of [`PatchCircuitBuilder::inject_x_error`].
    pub fn inject_z_error(&mut self, patch: usize, i: usize, p: f64) {
        assert!(self.initialized, "call initialize() first");
        let q = self.data_qubit(patch, i);
        self.circuit.z_error(&[q], p);
    }

    /// The logical reference flow of `patch` in the given basis: the set of
    /// earlier measurement indices whose parity the logical operator
    /// currently equals, or `None` when undetermined.
    pub fn logical_flow(&self, patch: usize, basis: Basis) -> Option<&[usize]> {
        match basis {
            Basis::Z => self.logical_z[patch].as_deref(),
            Basis::X => self.logical_x[patch].as_deref(),
        }
    }

    /// Adds a custom detector over absolute measurement indices (for
    /// experiment-level parity checks such as GHZ stabilizers).
    pub fn custom_detector(&mut self, meas: &[usize]) {
        self.circuit.detector_at(meas);
    }

    /// Adds absolute measurement indices to observable `id`.
    pub fn custom_observable(&mut self, id: usize, meas: &[usize]) {
        self.circuit.observable_include_at(id, meas);
    }

    /// Measures every data qubit in the builder's basis, emits the final
    /// plaquette detectors and defines one logical observable per patch
    /// (observable `p` for patch `p`).
    ///
    /// Consumes the builder and returns the finished circuit.
    pub fn finish(mut self) -> Circuit {
        assert!(self.initialized, "call initialize() first");
        let nm = self.noise;
        let nd = self.code.num_data();
        // Reserve one observable slot per patch, so skipped observables read
        // back as empty rather than out of range.
        self.circuit
            .observable_include_at(self.num_patches - 1, &[]);
        // Only patches still alive are measured; consumed patches already
        // emitted their detectors in measure_patch().
        let live: Vec<usize> = (0..self.num_patches).filter(|&p| self.alive[p]).collect();
        if live.is_empty() {
            return self.circuit;
        }
        let all_data: Vec<u32> = live
            .iter()
            .flat_map(|&p| (0..nd).map(move |i| (p, i)))
            .map(|(p, i)| self.data_qubit(p, i))
            .collect();
        let base = match self.basis {
            Basis::Z => {
                self.circuit.x_error(&all_data, nm.p_meas);
                let base = self.circuit.num_measurements();
                self.circuit.m(&all_data);
                base
            }
            Basis::X => {
                self.circuit.z_error(&all_data, nm.p_meas);
                let base = self.circuit.num_measurements();
                self.circuit.mx(&all_data);
                base
            }
        };
        // Final plaquette checks in the measured basis.
        for (slot, &p) in live.iter().enumerate() {
            match self.basis {
                Basis::Z => {
                    for (s, plaq) in self.code.z_plaquettes().iter().enumerate() {
                        if let Some(prev) = &self.z_flow[p][s] {
                            let mut dets = prev.clone();
                            dets.extend(plaq.support().map(|dq| base + slot * nd + dq));
                            self.circuit.detector_at(&dets);
                        }
                    }
                }
                Basis::X => {
                    for (s, plaq) in self.code.x_plaquettes().iter().enumerate() {
                        if let Some(prev) = &self.x_flow[p][s] {
                            let mut dets = prev.clone();
                            dets.extend(plaq.support().map(|dq| base + slot * nd + dq));
                            self.circuit.detector_at(&dets);
                        }
                    }
                }
            }
            // Logical observable, only when its reference is determined
            // (e.g. skipped for a basis-Z readout after an odd number of
            // transversal Hadamards).
            let logical = match self.basis {
                Basis::Z => &self.logical_z[p],
                Basis::X => &self.logical_x[p],
            };
            if let Some(reference) = logical {
                let support = match self.basis {
                    Basis::Z => self.code.logical_z_support(),
                    Basis::X => self.code.logical_x_support(),
                };
                let mut meas: Vec<usize> =
                    support.iter().map(|&dq| base + slot * nd + dq).collect();
                meas.extend_from_slice(reference);
                self.circuit.observable_include_at(p, &meas);
            }
        }
        self.circuit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::{FrameSim, TableauSim};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_memory_has_silent_detectors() {
        for basis in [Basis::Z, Basis::X] {
            let mut b = PatchCircuitBuilder::new(3, 1, basis, NoiseModel::noiseless());
            b.initialize();
            for _ in 0..3 {
                b.se_round();
            }
            let c = b.finish();
            // All detectors must be deterministic: the reference sample is
            // all-zero detectors by construction; sampling without noise
            // must produce no flips.
            let s = FrameSim::sample(&c, 64, &mut StdRng::seed_from_u64(0));
            for shot in 0..64 {
                assert!(s.fired_detectors(shot).is_empty(), "basis {basis:?}");
                assert_eq!(s.observable_mask(shot), 0);
            }
        }
    }

    /// The reference sample itself must make every detector even: detectors
    /// are valid parity checks of the noiseless circuit.
    #[test]
    fn detectors_are_deterministic_parity_checks() {
        let mut b = PatchCircuitBuilder::new(3, 2, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        b.transversal_cx(0, 1);
        b.se_round();
        b.transversal_cx(1, 0);
        b.se_round();
        let c = b.finish();
        let reference = TableauSim::reference_sample(&c);
        for d in 0..c.num_detectors() {
            let parity = c
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "detector {d} is not deterministic");
        }
        for o in 0..c.num_observables() {
            let parity = c
                .observable(o)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "observable {o} is not deterministic");
        }
    }

    #[test]
    fn noiseless_transversal_circuit_is_silent_under_sampling() {
        let mut b = PatchCircuitBuilder::new(3, 2, Basis::X, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        for step in 0..4 {
            if step % 2 == 0 {
                b.transversal_cx(0, 1);
            } else {
                b.transversal_cx(1, 0);
            }
            b.se_round();
        }
        let c = b.finish();
        let s = FrameSim::sample(&c, 32, &mut StdRng::seed_from_u64(1));
        for shot in 0..32 {
            assert!(s.fired_detectors(shot).is_empty());
            assert_eq!(s.observable_mask(shot), 0);
        }
    }

    #[test]
    fn detector_count_accounting() {
        let d = 3u32;
        let mut b = PatchCircuitBuilder::new(d, 1, Basis::Z, NoiseModel::uniform(1e-3));
        b.initialize();
        b.se_round(); // 4 Z detectors (first round), X silent
        b.se_round(); // 4 Z + 4 X
        let c = b.finish(); // + 4 final Z
        let half = ((d * d - 1) / 2) as usize;
        assert_eq!(c.num_detectors(), half * 4);
        assert_eq!(c.num_observables(), 1);
    }

    #[test]
    #[should_panic(expected = "initialize")]
    fn se_round_requires_initialize() {
        let mut b = PatchCircuitBuilder::new(3, 1, Basis::Z, NoiseModel::noiseless());
        b.se_round();
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn transversal_cx_rejects_same_patch() {
        let mut b = PatchCircuitBuilder::new(3, 2, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.transversal_cx(1, 1);
    }

    #[test]
    fn double_hadamard_preserves_determinism() {
        // H twice returns the patch to the Z sector: all detectors and the
        // observable must stay deterministic.
        let mut b = PatchCircuitBuilder::new(3, 1, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        b.transversal_h(0);
        b.se_round();
        b.transversal_h(0);
        b.se_round();
        let c = b.finish();
        assert_eq!(c.num_observables(), 1);
        assert!(!c.observable(0).is_empty());
        let reference = TableauSim::reference_sample(&c);
        for d in 0..c.num_detectors() {
            let parity = c
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "detector {d} not deterministic after H·H");
        }
        let s = FrameSim::sample(&c, 64, &mut StdRng::seed_from_u64(7));
        for shot in 0..64 {
            assert!(s.fired_detectors(shot).is_empty());
            assert_eq!(s.observable_mask(shot), 0);
        }
    }

    #[test]
    fn single_hadamard_switches_sector() {
        // After one H, the Z-basis observable is undetermined and skipped,
        // but every emitted detector is still deterministic.
        let mut b = PatchCircuitBuilder::new(3, 1, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        b.transversal_h(0);
        b.se_round();
        let c = b.finish();
        assert!(c.observable(0).is_empty(), "observable must be skipped");
        let reference = TableauSim::reference_sample(&c);
        for d in 0..c.num_detectors() {
            let parity = c
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "detector {d} not deterministic after H");
        }
    }

    #[test]
    fn mid_circuit_patch_measurement_is_deterministic() {
        // Measure one of two patches mid-circuit; the other carries on.
        let mut b = PatchCircuitBuilder::new(3, 2, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        b.transversal_cx(0, 1);
        b.se_round();
        let rows = b.measure_patch(1, Basis::Z);
        assert_eq!(rows.len(), 3);
        b.se_round();
        let c = b.finish();
        let reference = TableauSim::reference_sample(&c);
        for d in 0..c.num_detectors() {
            let parity = c
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "detector {d} not deterministic");
        }
        // Patch 0 still gets its observable; patch 1 does not (consumed).
        assert!(!c.observable(0).is_empty());
        assert!(c.observable(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "already measured")]
    fn double_measurement_rejected() {
        let mut b = PatchCircuitBuilder::new(3, 1, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.se_round();
        b.measure_patch(0, Basis::Z);
        b.measure_patch(0, Basis::Z);
    }

    #[test]
    fn reprepare_patch_in_other_basis() {
        let mut b = PatchCircuitBuilder::new(3, 2, Basis::Z, NoiseModel::noiseless());
        b.initialize();
        b.reprepare_patch(0, Basis::X);
        b.se_round();
        let c = b.finish();
        // Patch 0's Z observable is undetermined (|+> init): skipped.
        assert!(c.observable(0).is_empty());
        assert!(!c.observable(1).is_empty());
        let s = FrameSim::sample(&c, 32, &mut StdRng::seed_from_u64(3));
        for shot in 0..32 {
            assert!(s.fired_detectors(shot).is_empty());
        }
    }
}
