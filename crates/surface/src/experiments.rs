//! Ready-made experiments: surface-code memory and transversal-CNOT circuits,
//! with end-to-end Monte-Carlo decoding.
//!
//! These regenerate the simulation inputs behind the paper's logical-error
//! model (Fig. 6a): deep CNOT-only transversal circuits between surface-code
//! patches with `x` CNOTs per syndrome-extraction round, decoded jointly
//! (correlated decoding) from the circuit's detector error model.

use crate::builder::{Basis, NoiseModel, PatchCircuitBuilder};
use raa_decode::mc::{self, DecodeStats};
use raa_decode::{DecodingGraph, MatchingDecoder, UnionFindDecoder};
use raa_stabsim::{Circuit, DetectorErrorModel};
use rand::{Rng, RngExt};

/// Which decoder to use for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecoderKind {
    /// Weighted union–find (fast, slightly less accurate → larger α).
    #[default]
    UnionFind,
    /// Exact small-instance matching (MLE-like reference, slow).
    Matching,
}

/// A memory experiment: one patch idling for a number of SE rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryExperiment {
    /// Code distance.
    pub distance: u32,
    /// Number of syndrome-extraction rounds (≥ 1).
    pub rounds: usize,
    /// Logical basis protected.
    pub basis: Basis,
    /// Noise strengths.
    pub noise: NoiseModel,
}

impl MemoryExperiment {
    /// Builds the noisy circuit with detectors and one logical observable.
    pub fn build(&self) -> Circuit {
        assert!(self.rounds >= 1, "need at least one SE round");
        let mut b = PatchCircuitBuilder::new(self.distance, 1, self.basis, self.noise);
        b.initialize();
        for _ in 0..self.rounds {
            b.se_round();
        }
        b.finish()
    }
}

/// A two-patch (or ring) transversal-CNOT experiment: a deep logical Clifford
/// circuit of CNOTs with `cnots_per_round` transversal gates per SE round
/// (the paper's `x`), random gate directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransversalCnotExperiment {
    /// Code distance.
    pub distance: u32,
    /// Number of patches (≥ 2); gates act between random distinct pairs.
    pub patches: usize,
    /// Total number of transversal logical CNOTs (the circuit depth).
    pub depth: usize,
    /// CNOTs per SE round, the paper's `x` (e.g. 1.0, 2.0, 0.5).
    pub cnots_per_round: f64,
    /// Logical basis protected.
    pub basis: Basis,
    /// Noise strengths.
    pub noise: NoiseModel,
}

impl TransversalCnotExperiment {
    /// Builds the noisy circuit, drawing random CNOT directions from `rng`.
    ///
    /// The schedule starts with one SE round after initialization, then after
    /// every gate accumulates `1/x` SE rounds, emitting rounds whenever the
    /// accumulator reaches one (so `x = 2` gives a round every two gates,
    /// `x = 0.5` two rounds per gate).
    ///
    /// # Panics
    ///
    /// Panics if `patches < 2`, `depth == 0` or `cnots_per_round ≤ 0`.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Circuit {
        assert!(self.patches >= 2, "need at least two patches");
        assert!(self.depth >= 1, "need at least one CNOT");
        assert!(
            self.cnots_per_round > 0.0 && self.cnots_per_round.is_finite(),
            "cnots_per_round must be positive"
        );
        let mut b = PatchCircuitBuilder::new(self.distance, self.patches, self.basis, self.noise);
        b.initialize();
        b.se_round();
        let per_gate = 1.0 / self.cnots_per_round;
        let mut debt = 0.0f64;
        for _ in 0..self.depth {
            let a = rng.random_range(0..self.patches);
            let mut t = rng.random_range(0..self.patches - 1);
            if t >= a {
                t += 1;
            }
            b.transversal_cx(a, t);
            debt += per_gate;
            while debt >= 1.0 {
                b.se_round();
                debt -= 1.0;
            }
        }
        if debt > 0.0 {
            b.se_round();
        }
        b.finish()
    }

    /// Total SE rounds the schedule will emit (including the initial round).
    pub fn expected_se_rounds(&self) -> usize {
        1 + (self.depth as f64 / self.cnots_per_round).ceil() as usize
    }
}

/// One deterministic Pauli fault injected into a scheduled-CNOT circuit
/// (a probability-1 error channel on a single data qubit), used by the
/// differential tableau-vs-frame conformance tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PauliInjection {
    /// Inject after this many SE rounds have been emitted (1 = right after
    /// the initial round). Injections past the last round are dropped.
    pub after_round: usize,
    /// Patch carrying the fault.
    pub patch: usize,
    /// Data-qubit index within the patch.
    pub data: usize,
    /// `true` injects X, `false` injects Z.
    pub x: bool,
}

/// A deterministic scheduled-CNOT workload: `rounds` SE rounds over
/// `patches` patches, with the cycled transversal-CNOT `schedule` applying
/// one layer before every SE round after the first. This is the
/// circuit-level skeleton behind the factory and gadget scenarios: the
/// non-Clifford content of a protocol (T/Toffoli injections) is outside
/// the reach of a stabilizer simulation, but its *Clifford frame* — the
/// deterministic CNOT network that moves and checks the data — is exactly
/// what sets the syndrome structure, and an all-|0⟩ initialization keeps
/// every Z flow and logical observable determined through arbitrary CNOT
/// layers.
///
/// Detectors come out in uniform time layers of `patches × (d² − 1)` per
/// SE round (the first round emits the basis-aligned half, the final
/// transversal readout the other half), so windowed and streaming decoding
/// apply at any depth.
///
/// # Example
///
/// ```
/// use raa_surface::experiments::ScheduledCnotExperiment;
/// use raa_surface::{Basis, NoiseModel};
///
/// let exp = ScheduledCnotExperiment {
///     distance: 3,
///     patches: 2,
///     schedule: vec![vec![(0, 1)], vec![(1, 0)]],
///     rounds: 4,
///     basis: Basis::Z,
///     noise: NoiseModel::uniform(1e-3),
/// };
/// let circuit = exp.build();
/// assert_eq!(exp.cnots(), 3);
/// assert_eq!(circuit.num_detectors(), 4 * 2 * 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCnotExperiment {
    /// Code distance.
    pub distance: u32,
    /// Number of patches (≥ 2).
    pub patches: usize,
    /// CNOT layers, cycled: layer `(r − 1) mod len` runs before SE round
    /// `r + 1` (0-based pairs of (control, target) patch indices).
    pub schedule: Vec<Vec<(usize, usize)>>,
    /// Total SE rounds (≥ 1).
    pub rounds: usize,
    /// Logical basis protected.
    pub basis: Basis,
    /// Noise strengths.
    pub noise: NoiseModel,
}

impl ScheduledCnotExperiment {
    /// Total transversal CNOTs the cycled schedule emits over `rounds`.
    pub fn cnots(&self) -> usize {
        (1..self.rounds)
            .map(|r| self.schedule[(r - 1) % self.schedule.len()].len())
            .sum()
    }

    /// Builds the noisy circuit with detectors and one observable per patch.
    ///
    /// # Panics
    ///
    /// Panics if `patches < 2`, `rounds == 0`, the schedule is empty, or a
    /// layer references an out-of-range or self-targeting pair.
    pub fn build(&self) -> Circuit {
        self.build_with_injections(&[])
    }

    /// Like [`ScheduledCnotExperiment::build`], additionally inserting the
    /// given deterministic Pauli faults after their SE rounds.
    pub fn build_with_injections(&self, injections: &[PauliInjection]) -> Circuit {
        assert!(self.patches >= 2, "need at least two patches");
        assert!(self.rounds >= 1, "need at least one SE round");
        assert!(!self.schedule.is_empty(), "need at least one CNOT layer");
        for layer in &self.schedule {
            for &(c, t) in layer {
                assert!(
                    c < self.patches && t < self.patches && c != t,
                    "bad CNOT pair ({c}, {t}) for {} patches",
                    self.patches
                );
            }
        }
        let mut b = PatchCircuitBuilder::new(self.distance, self.patches, self.basis, self.noise);
        b.initialize();
        let inject_after = |b: &mut PatchCircuitBuilder, emitted: usize| {
            for inj in injections.iter().filter(|i| i.after_round == emitted) {
                if inj.x {
                    b.inject_x_error(inj.patch, inj.data, 1.0);
                } else {
                    b.inject_z_error(inj.patch, inj.data, 1.0);
                }
            }
        };
        b.se_round();
        inject_after(&mut b, 1);
        for r in 1..self.rounds {
            for &(c, t) in &self.schedule[(r - 1) % self.schedule.len()] {
                b.transversal_cx(c, t);
            }
            b.se_round();
            inject_after(&mut b, r + 1);
        }
        b.finish()
    }
}

/// Measurement-based logical GHZ preparation and verification
/// (the CNOT fan-out primitive of paper §III.8, Fig. 10b, at the logical
/// level): `targets` patches are prepared in |+⟩, helper patches between
/// neighbours measure the pairwise ZZ stabilizers via two transversal CNOTs
/// and a destructive logical Z readout, then the GHZ qubits are read out in
/// Z. Every neighbouring pair parity (corrected by its helper outcome) is a
/// logical observable; flips that survive decoding are GHZ preparation
/// errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GhzFanoutExperiment {
    /// Code distance.
    pub distance: u32,
    /// Number of GHZ branches (≥ 2).
    pub targets: usize,
    /// Noise strengths.
    pub noise: NoiseModel,
}

impl GhzFanoutExperiment {
    /// Total patches: `targets` GHZ qubits interleaved with their helpers.
    pub fn patches(&self) -> usize {
        2 * self.targets - 1
    }

    /// Transversal CNOTs emitted: two per helper.
    pub fn cnots(&self) -> usize {
        2 * (self.targets - 1)
    }

    /// SE rounds the schedule emits (after init, after the CNOT layer, and
    /// after the helper readout).
    pub fn se_rounds(&self) -> usize {
        3
    }

    /// Builds the noisy circuit: helpers interleave with targets, so patch
    /// `2i` is GHZ qubit `i` and patch `2i+1` its helper.
    ///
    /// # Panics
    ///
    /// Panics if `targets < 2`.
    pub fn build(&self) -> Circuit {
        assert!(self.targets >= 2, "need at least two GHZ branches");
        let num_patches = 2 * self.targets - 1;
        let mut b = PatchCircuitBuilder::new(self.distance, num_patches, Basis::Z, self.noise);
        b.initialize();
        // GHZ qubits start in |+⟩; helpers stay in |0⟩.
        for i in 0..self.targets {
            b.reprepare_patch(2 * i, Basis::X);
        }
        b.se_round();
        // Helper i measures Z_i Z_{i+1}.
        for i in 0..self.targets - 1 {
            b.transversal_cx(2 * i, 2 * i + 1);
            b.transversal_cx(2 * i + 2, 2 * i + 1);
        }
        b.se_round();
        let helper_rows: Vec<Vec<usize>> = (0..self.targets - 1)
            .map(|i| b.measure_patch(2 * i + 1, Basis::Z))
            .collect();
        b.se_round();
        // Record the target logical-row measurement indices, then finish.
        let mut target_rows: Vec<Vec<usize>> = Vec::new();
        for i in 0..self.targets {
            let rows = b.measure_patch(2 * i, Basis::Z);
            target_rows.push(rows);
        }
        for i in 0..self.targets - 1 {
            let mut meas = target_rows[i].clone();
            meas.extend_from_slice(&target_rows[i + 1]);
            meas.extend_from_slice(&helper_rows[i]);
            b.custom_observable(i, &meas);
        }
        b.finish()
    }
}

/// Runs the GHZ fan-out experiment end to end; a failure is any pair parity
/// the joint decoder fails to predict.
pub fn run_ghz<R: Rng>(
    exp: &GhzFanoutExperiment,
    decoder: DecoderKind,
    shots: usize,
    rng: &mut R,
) -> ExperimentResult {
    let circuit = exp.build();
    let stats = decode_circuit(&circuit, decoder, shots, rng);
    ExperimentResult {
        distance: exp.distance,
        cnots: exp.cnots(),
        se_rounds: exp.se_rounds(),
        patches: exp.patches(),
        stats,
    }
}

/// Result of a decoded experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentResult {
    /// Code distance.
    pub distance: u32,
    /// Number of transversal CNOTs in the circuit (0 for memory).
    pub cnots: usize,
    /// Number of SE rounds executed.
    pub se_rounds: usize,
    /// Number of logical qubits (patches).
    pub patches: usize,
    /// Decoding statistics.
    pub stats: DecodeStats,
}

impl ExperimentResult {
    /// Total logical error probability per shot.
    pub fn logical_error_rate(&self) -> f64 {
        self.stats.logical_error_rate()
    }

    /// Logical error rate per logical qubit per SE round, assuming
    /// independent additive errors: `p_shot ≈ 1 - (1-p_unit)^(q·r)`.
    pub fn error_per_qubit_round(&self) -> f64 {
        let units = (self.patches * self.se_rounds) as f64;
        per_unit_rate(self.stats.logical_error_rate(), units)
    }

    /// Logical error rate per CNOT (both qubits), when `cnots > 0`.
    pub fn error_per_cnot(&self) -> f64 {
        assert!(self.cnots > 0, "no CNOTs in this experiment");
        per_unit_rate(self.stats.logical_error_rate(), self.cnots as f64)
    }
}

/// Inverts `p_total = 1 - (1 - p_unit)^units`: the per-unit error rate of
/// `units` independent additive error opportunities compounding to
/// `p_total`. Shared by every per-round / per-CNOT rate in the stack.
pub fn per_unit_rate(p_total: f64, units: f64) -> f64 {
    if p_total <= 0.0 {
        return 0.0;
    }
    if p_total >= 1.0 {
        return 1.0;
    }
    1.0 - (1.0 - p_total).powf(1.0 / units)
}

fn decode_circuit<R: Rng>(
    circuit: &Circuit,
    decoder: DecoderKind,
    shots: usize,
    rng: &mut R,
) -> DecodeStats {
    let dem = DetectorErrorModel::from_circuit(circuit);
    let (graph, _arbitrary) = DecodingGraph::from_dem_decomposed(&dem);
    match decoder {
        DecoderKind::UnionFind => {
            let d = UnionFindDecoder::new(graph);
            mc::logical_error_rate(circuit, &d, shots, rng)
        }
        DecoderKind::Matching => {
            let d = MatchingDecoder::new(graph);
            mc::logical_error_rate(circuit, &d, shots, rng)
        }
    }
}

/// Runs a memory experiment end to end (build → DEM → decode → stats).
pub fn run_memory<R: Rng>(
    exp: &MemoryExperiment,
    decoder: DecoderKind,
    shots: usize,
    rng: &mut R,
) -> ExperimentResult {
    let circuit = exp.build();
    let stats = decode_circuit(&circuit, decoder, shots, rng);
    ExperimentResult {
        distance: exp.distance,
        cnots: 0,
        se_rounds: exp.rounds,
        patches: 1,
        stats,
    }
}

/// Runs a transversal-CNOT experiment end to end.
pub fn run_transversal<R: Rng>(
    exp: &TransversalCnotExperiment,
    decoder: DecoderKind,
    shots: usize,
    rng: &mut R,
) -> ExperimentResult {
    let circuit = exp.build(rng);
    let stats = decode_circuit(&circuit, decoder, shots, rng);
    ExperimentResult {
        distance: exp.distance,
        cnots: exp.depth,
        se_rounds: exp.expected_se_rounds(),
        patches: exp.patches,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn memory_error_rate_reasonable_at_moderate_noise() {
        let exp = MemoryExperiment {
            distance: 3,
            rounds: 3,
            basis: Basis::Z,
            noise: NoiseModel::uniform(3e-3),
        };
        let r = run_memory(
            &exp,
            DecoderKind::UnionFind,
            5_000,
            &mut StdRng::seed_from_u64(1),
        );
        // Well below threshold: logical error rate should be far below 10%.
        assert!(r.logical_error_rate() < 0.1, "{}", r.logical_error_rate());
    }

    #[test]
    fn memory_distance_suppression() {
        let p = 2e-3;
        let mut rng = StdRng::seed_from_u64(2);
        let mut rate = |d: u32| {
            let exp = MemoryExperiment {
                distance: d,
                rounds: d as usize,
                basis: Basis::Z,
                noise: NoiseModel::uniform(p),
            };
            run_memory(&exp, DecoderKind::UnionFind, 20_000, &mut rng).logical_error_rate()
        };
        let r3 = rate(3);
        let r5 = rate(5);
        assert!(
            r5 < r3.max(1.0 / 20_000.0) * 1.2,
            "no suppression: d3 {r3}, d5 {r5}"
        );
    }

    #[test]
    fn transversal_experiment_builds_and_decodes() {
        let exp = TransversalCnotExperiment {
            distance: 3,
            patches: 2,
            depth: 4,
            cnots_per_round: 1.0,
            basis: Basis::Z,
            noise: NoiseModel::uniform(2e-3),
        };
        let r = run_transversal(
            &exp,
            DecoderKind::UnionFind,
            3_000,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(r.cnots, 4);
        assert!(r.logical_error_rate() < 0.2);
        assert!(r.error_per_cnot() <= r.logical_error_rate());
    }

    #[test]
    fn fewer_se_rounds_per_cnot_is_cheaper_per_gate() {
        // The paper's core point (§II.4): O(1) SE rounds per transversal gate
        // suffice, and *extra* rounds per gate add noise volume. At fixed
        // depth, the x = 4 schedule (few rounds) must not be more error-prone
        // per gate than the x = 0.5 schedule (two rounds per gate).
        let p = 4e-3;
        let mut rng = StdRng::seed_from_u64(4);
        let mut rate = |x: f64| {
            let exp = TransversalCnotExperiment {
                distance: 3,
                patches: 2,
                depth: 8,
                cnots_per_round: x,
                basis: Basis::Z,
                noise: NoiseModel::uniform(p),
            };
            run_transversal(&exp, DecoderKind::UnionFind, 6_000, &mut rng).logical_error_rate()
        };
        let slow = rate(0.5); // 2 SE rounds per CNOT: 17 rounds total
        let fast = rate(4.0); // 4 CNOTs per SE round: 3 rounds total
        assert!(
            fast < slow,
            "extra SE rounds should cost more per gate: slow {slow}, fast {fast}"
        );
    }

    #[test]
    fn schedule_accounting() {
        let exp = TransversalCnotExperiment {
            distance: 3,
            patches: 2,
            depth: 8,
            cnots_per_round: 2.0,
            basis: Basis::Z,
            noise: NoiseModel::noiseless(),
        };
        assert_eq!(exp.expected_se_rounds(), 1 + 4);
        let c = exp.build(&mut StdRng::seed_from_u64(5));
        assert!(c.num_detectors() > 0);
    }

    #[test]
    fn ghz_noiseless_is_perfect() {
        let exp = GhzFanoutExperiment {
            distance: 3,
            targets: 3,
            noise: NoiseModel::noiseless(),
        };
        let c = exp.build();
        assert_eq!(c.num_observables(), 2.max(c.num_observables().min(5)));
        use raa_stabsim::FrameSim;
        let s = FrameSim::sample(&c, 64, &mut StdRng::seed_from_u64(11));
        for shot in 0..64 {
            assert!(s.fired_detectors(shot).is_empty());
            assert_eq!(s.observable_mask(shot), 0, "GHZ parity must hold");
        }
    }

    #[test]
    fn ghz_observables_are_deterministic_checks() {
        use raa_stabsim::TableauSim;
        let exp = GhzFanoutExperiment {
            distance: 3,
            targets: 4,
            noise: NoiseModel::noiseless(),
        };
        let c = exp.build();
        let reference = TableauSim::reference_sample(&c);
        for o in 0..c.num_observables() {
            let parity = c
                .observable(o)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "GHZ pair parity {o} not deterministic");
        }
        for d in 0..c.num_detectors() {
            let parity = c
                .detector_measurements(d)
                .iter()
                .fold(false, |acc, &m| acc ^ reference[m]);
            assert!(!parity, "detector {d} not deterministic");
        }
    }

    #[test]
    fn ghz_decodes_under_noise() {
        let exp = GhzFanoutExperiment {
            distance: 3,
            targets: 3,
            noise: NoiseModel::uniform(2e-3),
        };
        let r = run_ghz(
            &exp,
            DecoderKind::UnionFind,
            4_000,
            &mut StdRng::seed_from_u64(12),
        );
        assert!(
            r.logical_error_rate() < 0.1,
            "GHZ logical error = {}",
            r.logical_error_rate()
        );
    }

    #[test]
    fn per_unit_rate_inverts_compounding() {
        let p_unit: f64 = 0.01;
        let units = 7.0;
        let p_total = 1.0 - (1.0 - p_unit).powf(units);
        assert!((per_unit_rate(p_total, units) - p_unit).abs() < 1e-12);
        assert_eq!(per_unit_rate(0.0, 5.0), 0.0);
    }
}
