//! Surface-code substrate for the transversal-architecture reproduction:
//! layouts, syndrome-extraction circuits and transversal-gate experiments.
//!
//! * [`rotated`] — the [[d², 1, d]] rotated surface code: plaquettes,
//!   boundaries, schedules and logical operators (paper §II.3);
//! * [`builder`] — a multi-patch circuit builder that derives detectors
//!   automatically through transversal CNOTs via stabilizer-flow tracking
//!   (the joint detector structure needed for correlated decoding, §II.4);
//! * [`experiments`] — ready-made memory and deep transversal-CNOT
//!   experiments with end-to-end Monte-Carlo decoding, the simulation inputs
//!   behind the paper's logical-error model (its Fig. 6a);
//! * [`code832`] — the [[8,3,2]] cube code behind the 8T-to-CCZ factory,
//!   including the exact enumeration behind `p_out = 28 p_in²` (its Eq. 8).
//!
//! # Example: error suppression with distance
//!
//! ```no_run
//! use raa_surface::builder::{Basis, NoiseModel};
//! use raa_surface::experiments::{run_memory, DecoderKind, MemoryExperiment};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut rate = |d: u32| {
//!     let exp = MemoryExperiment {
//!         distance: d,
//!         rounds: d as usize,
//!         basis: Basis::Z,
//!         noise: NoiseModel::uniform(1e-3),
//!     };
//!     run_memory(&exp, DecoderKind::UnionFind, 100_000, &mut rng).logical_error_rate()
//! };
//! assert!(rate(5) <= rate(3));
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod code832;
pub mod experiments;
pub mod rotated;

pub use builder::{Basis, NoiseModel, PatchCircuitBuilder};
pub use code832::Code832MemoryExperiment;
pub use experiments::{
    run_ghz, run_memory, run_transversal, DecoderKind, ExperimentResult, GhzFanoutExperiment,
    MemoryExperiment, PauliInjection, ScheduledCnotExperiment, TransversalCnotExperiment,
};
pub use rotated::{Plaquette, RotatedSurfaceCode};
