//! Rotated surface code layout: data qubits, plaquettes and the
//! syndrome-extraction schedule.
//!
//! The [[d², 1, d]] rotated surface code (§II.3 of the paper) places `d × d`
//! data qubits on odd coordinates `(2c+1, 2r+1)` and stabilizer ancillas on
//! even coordinates, checkerboard-coloured: Z-type plaquettes where `c + r`
//! is even, X-type where odd. Weight-2 boundary plaquettes are X-type on the
//! top/bottom edges and Z-type on the left/right edges, so logical Z runs
//! along a row and logical X along a column.

/// A stabilizer plaquette of the rotated code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaquette {
    /// Ancilla coordinate `(x, y)` on the even grid.
    pub position: (i32, i32),
    /// Data-qubit indices touched, in syndrome-extraction layer order;
    /// `None` where the neighbour falls outside the patch (boundary).
    pub data: [Option<usize>; 4],
}

impl Plaquette {
    /// The weight (number of data qubits) of this stabilizer.
    pub fn weight(&self) -> usize {
        self.data.iter().flatten().count()
    }

    /// Iterates over the data-qubit indices in this plaquette's support.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.data.iter().flatten().copied()
    }
}

/// The rotated surface code at distance `d`.
///
/// Local qubit numbering (used by circuit builders): data qubits `0..d²` in
/// row-major order, then X ancillas, then Z ancillas.
///
/// # Example
///
/// ```
/// use raa_surface::rotated::RotatedSurfaceCode;
///
/// let code = RotatedSurfaceCode::new(3);
/// assert_eq!(code.num_data(), 9);
/// assert_eq!(code.x_plaquettes().len() + code.z_plaquettes().len(), 8);
/// assert_eq!(code.num_qubits(), 17); // 9 data + 8 ancillas
/// ```
#[derive(Debug, Clone)]
pub struct RotatedSurfaceCode {
    distance: u32,
    x_plaquettes: Vec<Plaquette>,
    z_plaquettes: Vec<Plaquette>,
}

impl RotatedSurfaceCode {
    /// Builds the distance-`d` rotated surface code.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or smaller than 3 (the architecture uses odd
    /// distances, where the rotated layout is balanced).
    pub fn new(distance: u32) -> Self {
        assert!(
            distance >= 3 && distance % 2 == 1,
            "distance must be odd and at least 3, got {distance}"
        );
        let d = distance as i32;
        let mut x_plaquettes = Vec::new();
        let mut z_plaquettes = Vec::new();
        for c in 0..=d {
            for r in 0..=d {
                let pos = (2 * c, 2 * r);
                let is_z = (c + r) % 2 == 0;
                // Data neighbours NW, NE, SW, SE of the ancilla.
                let corners = [
                    (pos.0 - 1, pos.1 - 1),
                    (pos.0 + 1, pos.1 - 1),
                    (pos.0 - 1, pos.1 + 1),
                    (pos.0 + 1, pos.1 + 1),
                ];
                let idx = |xy: (i32, i32)| -> Option<usize> {
                    let (x, y) = xy;
                    if x < 1 || y < 1 || x > 2 * d - 1 || y > 2 * d - 1 {
                        return None;
                    }
                    let (cc, rr) = ((x - 1) / 2, (y - 1) / 2);
                    Some((rr * d + cc) as usize)
                };
                let present: Vec<(i32, i32)> = corners
                    .iter()
                    .copied()
                    .filter(|&c| idx(c).is_some())
                    .collect();
                let keep = match present.len() {
                    4 => true,
                    2 => {
                        let on_top_bottom = pos.1 == 0 || pos.1 == 2 * d;
                        // X-type boundary plaquettes on top/bottom edges,
                        // Z-type on left/right edges.
                        if is_z {
                            !on_top_bottom
                        } else {
                            on_top_bottom
                        }
                    }
                    _ => false,
                };
                if !keep {
                    continue;
                }
                // Schedule order: X-type sweeps NW, NE, SW, SE ("Z" path);
                // Z-type sweeps NW, SW, NE, SE ("N" path). The opposite
                // interleave preserves the code distance under circuit noise.
                let order: [usize; 4] = if is_z { [0, 2, 1, 3] } else { [0, 1, 2, 3] };
                let mut data = [None; 4];
                for (slot, &k) in order.iter().enumerate() {
                    data[slot] = idx(corners[k]);
                }
                let plaq = Plaquette {
                    position: (pos.0, pos.1),
                    data,
                };
                if is_z {
                    z_plaquettes.push(plaq);
                } else {
                    x_plaquettes.push(plaq);
                }
            }
        }
        Self {
            distance,
            x_plaquettes,
            z_plaquettes,
        }
    }

    /// The code distance.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Number of data qubits, `d²`.
    pub fn num_data(&self) -> usize {
        (self.distance * self.distance) as usize
    }

    /// Total qubits per patch: data plus one ancilla per plaquette.
    pub fn num_qubits(&self) -> usize {
        self.num_data() + self.x_plaquettes.len() + self.z_plaquettes.len()
    }

    /// The X-type plaquettes.
    pub fn x_plaquettes(&self) -> &[Plaquette] {
        &self.x_plaquettes
    }

    /// The Z-type plaquettes.
    pub fn z_plaquettes(&self) -> &[Plaquette] {
        &self.z_plaquettes
    }

    /// Local index of the ancilla for X plaquette `i`.
    pub fn x_ancilla(&self, i: usize) -> usize {
        self.num_data() + i
    }

    /// Local index of the ancilla for Z plaquette `i`.
    pub fn z_ancilla(&self, i: usize) -> usize {
        self.num_data() + self.x_plaquettes.len() + i
    }

    /// Data indices of the logical Z operator (the top row).
    pub fn logical_z_support(&self) -> Vec<usize> {
        (0..self.distance as usize).collect()
    }

    /// Data indices of the logical X operator (the left column).
    pub fn logical_x_support(&self) -> Vec<usize> {
        let d = self.distance as usize;
        (0..d).map(|r| r * d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use raa_stabsim::pauli::PauliString;

    fn z_string(support: impl IntoIterator<Item = usize>) -> PauliString {
        PauliString::z_on(support.into_iter().map(|q| q as u32))
    }

    fn x_string(support: impl IntoIterator<Item = usize>) -> PauliString {
        PauliString::x_on(support.into_iter().map(|q| q as u32))
    }

    #[test]
    fn stabilizer_counts() {
        for d in [3u32, 5, 7, 9] {
            let code = RotatedSurfaceCode::new(d);
            let total = code.x_plaquettes().len() + code.z_plaquettes().len();
            assert_eq!(total, (d * d - 1) as usize, "d = {d}");
            // Balanced split between X and Z.
            assert_eq!(
                code.x_plaquettes().len(),
                code.z_plaquettes().len(),
                "d = {d}"
            );
        }
    }

    #[test]
    fn plaquette_weights_are_2_or_4() {
        let code = RotatedSurfaceCode::new(5);
        for p in code.x_plaquettes().iter().chain(code.z_plaquettes()) {
            assert!(p.weight() == 2 || p.weight() == 4, "{p:?}");
        }
        // (d²-1)/2 plaquettes of each type; (d-1)/2... boundary count:
        let boundary_x = code
            .x_plaquettes()
            .iter()
            .filter(|p| p.weight() == 2)
            .count();
        let boundary_z = code
            .z_plaquettes()
            .iter()
            .filter(|p| p.weight() == 2)
            .count();
        assert_eq!(boundary_x, 4); // (d-1)/2 per edge × 2 edges at d=5
        assert_eq!(boundary_z, 4);
    }

    #[test]
    fn all_stabilizers_commute() {
        let code = RotatedSurfaceCode::new(5);
        let xs: Vec<PauliString> = code
            .x_plaquettes()
            .iter()
            .map(|p| x_string(p.support()))
            .collect();
        let zs: Vec<PauliString> = code
            .z_plaquettes()
            .iter()
            .map(|p| z_string(p.support()))
            .collect();
        for x in &xs {
            for z in &zs {
                assert!(x.commutes_with(z), "{x} vs {z}");
            }
        }
    }

    #[test]
    fn logicals_commute_with_stabilizers_and_anticommute() {
        let code = RotatedSurfaceCode::new(5);
        let lz = z_string(code.logical_z_support());
        let lx = x_string(code.logical_x_support());
        for p in code.x_plaquettes() {
            assert!(lz.commutes_with(&x_string(p.support())));
        }
        for p in code.z_plaquettes() {
            assert!(lx.commutes_with(&z_string(p.support())));
        }
        assert!(!lz.commutes_with(&lx));
        assert_eq!(lz.weight(), 5);
        assert_eq!(lx.weight(), 5);
    }

    #[test]
    fn schedule_slots_cover_all_neighbours() {
        let code = RotatedSurfaceCode::new(3);
        for p in code.x_plaquettes().iter().chain(code.z_plaquettes()) {
            let mut support: Vec<usize> = p.support().collect();
            support.sort_unstable();
            support.dedup();
            assert_eq!(support.len(), p.weight(), "duplicate neighbour in {p:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The full stabilizer group is consistent at several distances.
        #[test]
        fn group_structure(k in 1u32..5) {
            let d = 2 * k + 1;
            let code = RotatedSurfaceCode::new(d);
            let lz = z_string(code.logical_z_support());
            // Logical Z commutes with every X stabilizer.
            for p in code.x_plaquettes() {
                prop_assert!(lz.commutes_with(&x_string(p.support())));
            }
            // Every data qubit is covered by at least one plaquette.
            let mut covered = vec![false; code.num_data()];
            for p in code.x_plaquettes().iter().chain(code.z_plaquettes()) {
                for q in p.support() {
                    covered[q] = true;
                }
            }
            prop_assert!(covered.iter().all(|&b| b));
        }
    }
}
