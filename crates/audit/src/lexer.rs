//! A token-level Rust lexer, just deep enough for contract auditing.
//!
//! The rules in [`crate::rules`] match on identifier and punctuation
//! *tokens*, never on raw text, so the lexer's job is to make sure the
//! things that look like code but aren't — string literals, char literals,
//! raw strings, line and block comments — come out as single opaque tokens.
//! `".unwrap()"` inside a string must not trip the panic rule; `'a'` must
//! not be confused with the lifetime `'a`; `r#"// SAFETY:"#` must not
//! count as a safety comment. Comments are *kept* in the stream (the
//! suppression and `// SAFETY:` machinery reads them); rule matching uses
//! the comment-free view built by [`crate::rules::FileContext`].
//!
//! The lexer is lossless enough for auditing, not for compilation: it does
//! not distinguish keywords from identifiers (rules compare the text) and
//! it folds all numeric literals into [`TokKind::Int`] / [`TokKind::Float`].

/// Token classification. See the module docs for what the lexer guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `HashMap`, ...).
    Ident,
    /// Lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`, ...).
    Float,
    /// String literal of any flavour: `"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'\0'`.
    Char,
    /// `// …` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Operator or delimiter; multi-char operators (`::`, `==`, `!=`,
    /// `..`, ...) are single tokens.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Exact source text of the token (comments keep their delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// Multi-char operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream. Unterminated literals or comments are
/// closed at end of file rather than reported — the audit runs on sources
/// the compiler already accepted, so recovery is not worth modelling.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let mut text = String::new();
        let kind = if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(cur.bump().unwrap());
            }
            TokKind::LineComment
        } else if c == '/' && cur.peek(1) == Some('*') {
            text.push(cur.bump().unwrap());
            text.push(cur.bump().unwrap());
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push(cur.bump().unwrap());
                        text.push(cur.bump().unwrap());
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push(cur.bump().unwrap());
                        text.push(cur.bump().unwrap());
                    }
                    (Some(_), _) => text.push(cur.bump().unwrap()),
                    (None, _) => break,
                }
            }
            TokKind::BlockComment
        } else if c == '"' {
            lex_quoted_string(&mut cur, &mut text);
            TokKind::Str
        } else if c == '\'' {
            lex_char_or_lifetime(&mut cur, &mut text)
        } else if is_ident_start(c) {
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(cur.bump().unwrap());
            }
            // String/char prefixes: r"…", r#"…"#, b"…", br#"…"#, b'…'.
            match (text.as_str(), cur.peek(0)) {
                ("r" | "br" | "b", Some('"')) | ("r" | "br", Some('#')) => {
                    if lex_maybe_raw_or_quoted(&mut cur, &mut text) {
                        TokKind::Str
                    } else {
                        TokKind::Ident
                    }
                }
                ("b", Some('\'')) => {
                    // Byte char: `b'x'` — always a literal, never a lifetime.
                    text.push(cur.bump().unwrap());
                    lex_char_body(&mut cur, &mut text);
                    TokKind::Char
                }
                _ => TokKind::Ident,
            }
        } else if c.is_ascii_digit() {
            lex_number(&mut cur, &mut text)
        } else {
            let mut matched = false;
            for op in OPERATORS {
                if src_matches(&cur, op) {
                    for _ in 0..op.len() {
                        text.push(cur.bump().unwrap());
                    }
                    matched = true;
                    break;
                }
            }
            if !matched {
                text.push(cur.bump().unwrap());
            }
            TokKind::Punct
        };
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    out
}

fn src_matches(cur: &Cursor, pat: &str) -> bool {
    pat.chars()
        .enumerate()
        .all(|(i, pc)| cur.peek(i) == Some(pc))
}

/// Consumes a `"…"` string (opening quote still pending) with escapes.
fn lex_quoted_string(cur: &mut Cursor, text: &mut String) {
    text.push(cur.bump().unwrap()); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(cur.bump().unwrap());
            if cur.peek(0).is_some() {
                text.push(cur.bump().unwrap());
            }
            continue;
        }
        let closed = c == '"';
        text.push(cur.bump().unwrap());
        if closed {
            break;
        }
    }
}

/// After an `r`/`br` prefix: consumes `#…#"…"#…#` raw strings, or after a
/// `b` prefix a plain quoted string. Returns false if what follows is not
/// actually a string start (e.g. `r#raw_ident`).
fn lex_maybe_raw_or_quoted(cur: &mut Cursor, text: &mut String) -> bool {
    if cur.peek(0) == Some('"') && text != "r" && text != "br" {
        // b"…" — plain escapes apply.
        lex_quoted_string(cur, text);
        return true;
    }
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        if hashes > 0 {
            // `r#ident` raw identifier: fold the `#` into the ident token.
            text.push(cur.bump().unwrap());
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(cur.bump().unwrap());
            }
            return false;
        }
        lex_quoted_string(cur, text);
        return true;
    }
    for _ in 0..=hashes {
        text.push(cur.bump().unwrap()); // hashes + opening quote
    }
    // Raw strings have no escapes: scan for `"` followed by `hashes` hashes.
    while cur.peek(0).is_some() {
        if cur.peek(0) == Some('"') && (0..hashes).all(|i| cur.peek(1 + i) == Some('#')) {
            for _ in 0..=hashes {
                text.push(cur.bump().unwrap());
            }
            return true;
        }
        text.push(cur.bump().unwrap());
    }
    true
}

/// After a `'`: char literal (`'x'`, `'\n'`) or lifetime (`'a`, `'static`).
fn lex_char_or_lifetime(cur: &mut Cursor, text: &mut String) -> TokKind {
    // A char literal is `'` + (escape | single char) + `'`; a lifetime is
    // `'` + identifier with no closing quote.
    if cur.peek(1) == Some('\\') || (cur.peek(1).is_some() && cur.peek(2) == Some('\'')) {
        text.push(cur.bump().unwrap());
        lex_char_body(cur, text);
        TokKind::Char
    } else {
        text.push(cur.bump().unwrap());
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cur.bump().unwrap());
        }
        TokKind::Lifetime
    }
}

/// Consumes a char-literal body up to and including the closing `'`.
fn lex_char_body(cur: &mut Cursor, text: &mut String) {
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            text.push(cur.bump().unwrap());
            if cur.peek(0).is_some() {
                text.push(cur.bump().unwrap());
            }
            continue;
        }
        let closed = c == '\'';
        text.push(cur.bump().unwrap());
        if closed {
            break;
        }
    }
}

fn lex_number(cur: &mut Cursor, text: &mut String) -> TokKind {
    let mut float = false;
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        text.push(cur.bump().unwrap());
        text.push(cur.bump().unwrap());
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cur.bump().unwrap());
        }
        return TokKind::Int;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        text.push(cur.bump().unwrap());
    }
    // Fraction: `1.5` yes; `0..10` and `x.foo()` no.
    if cur.peek(0) == Some('.') {
        let after = cur.peek(1);
        if after.is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push(cur.bump().unwrap());
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().unwrap());
            }
        } else if !after.is_some_and(|c| c == '.' || is_ident_start(c)) {
            // Trailing-dot float such as `1.`.
            float = true;
            text.push(cur.bump().unwrap());
        }
    }
    // Exponent: `1e9`, `1.5e-3`.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let (sign, digit) = (cur.peek(1), cur.peek(2));
        let has_exp = sign.is_some_and(|c| c.is_ascii_digit())
            || (matches!(sign, Some('+' | '-')) && digit.is_some_and(|c| c.is_ascii_digit()));
        if has_exp {
            float = true;
            text.push(cur.bump().unwrap());
            if matches!(cur.peek(0), Some('+' | '-')) {
                text.push(cur.bump().unwrap());
            }
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.bump().unwrap());
            }
        }
    }
    // Suffix: `1u64`, `1.0f32`, `2f64` (a float by type even without a dot).
    let mut suffix = String::new();
    while cur.peek(0).is_some_and(is_ident_continue) {
        suffix.push(cur.bump().unwrap());
    }
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    text.push_str(&suffix);
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}
