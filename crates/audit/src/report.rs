//! Report rendering: the human summary (grouped by rule, then crate) and
//! the machine-readable `--json` document CI archives as an artifact.

use crate::baseline::json_string;
use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything one audit run produced, post-suppression.
pub struct Report {
    /// Findings not covered by the baseline — these fail `--deny-new`.
    pub fresh: Vec<Finding>,
    /// Findings tolerated by the checked-in baseline.
    pub grandfathered: Vec<Finding>,
    /// Findings silenced by `raa-audit: allow` comments (with reasons).
    pub suppressed: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when `--deny-new` should pass.
    pub fn clean(&self) -> bool {
        self.fresh.is_empty()
    }

    /// The human report: new findings first with full spans, then a
    /// per-rule/per-crate tally of the grandfathered backlog.
    pub fn human(&self) -> String {
        let mut out = String::new();
        if self.fresh.is_empty() {
            let _ = writeln!(
                out,
                "raa-audit: clean — {} files scanned, {} grandfathered, {} suppressed",
                self.files_scanned,
                self.grandfathered.len(),
                self.suppressed.len()
            );
        } else {
            let _ = writeln!(
                out,
                "raa-audit: {} new finding(s) — {} files scanned, {} grandfathered, {} suppressed",
                self.fresh.len(),
                self.files_scanned,
                self.grandfathered.len(),
                self.suppressed.len()
            );
        }
        for (rule, group) in group_by_rule(&self.fresh) {
            let _ = writeln!(out, "\nrule {rule} — {} new finding(s):", group.len());
            for f in group {
                let _ = writeln!(out, "  {}:{}:{}: {}", f.file, f.line, f.col, f.message);
                if !f.snippet.is_empty() {
                    let _ = writeln!(out, "      | {}", f.snippet);
                }
            }
        }
        if !self.grandfathered.is_empty() {
            let _ = writeln!(out, "\ngrandfathered backlog (baseline-tolerated):");
            let mut per: BTreeMap<(String, String), usize> = BTreeMap::new();
            for f in &self.grandfathered {
                *per.entry((f.rule.clone(), crate_of(&f.file))).or_insert(0) += 1;
            }
            for ((rule, krate), n) in per {
                let _ = writeln!(out, "  {rule:<16} {krate:<24} {n}");
            }
        }
        out
    }

    /// The `--json` document: summary counts plus every finding with its
    /// disposition (`new` / `grandfathered` / `suppressed`).
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"files_scanned\":{},\"new\":{},\"grandfathered\":{},\"suppressed\":{},",
            self.files_scanned,
            self.fresh.len(),
            self.grandfathered.len(),
            self.suppressed.len()
        );
        out.push_str("\"findings\":[\n");
        let mut first = true;
        for (status, list) in [
            ("new", &self.fresh),
            ("grandfathered", &self.grandfathered),
            ("suppressed", &self.suppressed),
        ] {
            for f in list.iter() {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"status\":\"{status}\",\"rule\":{},\"file\":{},\"line\":{},\
                     \"col\":{},\"message\":{},\"snippet\":{}}}",
                    json_string(&f.rule),
                    json_string(&f.file),
                    f.line,
                    f.col,
                    json_string(&f.message),
                    json_string(&f.snippet),
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => rel_path.to_string(),
    }
}

fn group_by_rule(findings: &[Finding]) -> BTreeMap<String, Vec<&Finding>> {
    let mut groups: BTreeMap<String, Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        groups.entry(f.rule.clone()).or_default().push(f);
    }
    groups
}
