//! The rule registry: every project contract the audit enforces.
//!
//! # Extension point
//!
//! A rule is an implementation of [`Rule`] registered in [`registry`].
//! Rules see one file at a time as a [`FileContext`]: the full token
//! stream (comments included), a comment-free index (`code`), a per-token
//! "inside `#[cfg(test)]`" mask, and the raw source lines for snippet
//! reporting. To add a rule:
//!
//! 1. Pick a stable kebab-case id — it is the suppression key
//!    (`// raa-audit: allow(<id>): <reason>`) and the baseline key, so it
//!    must never be renamed once findings ship in `audit-baseline.json`.
//! 2. Implement [`Rule::applies_to`] over the *workspace-relative* path
//!    (forward slashes, e.g. `crates/sim/src/service.rs`). Scoping by
//!    path, not by content, keeps the contract reviewable in one place.
//! 3. Emit findings via [`FileContext::finding`] so spans and snippets
//!    (the baseline fingerprint) stay consistent across rules.
//! 4. Register the rule in [`registry`] and document it in the README's
//!    "Static analysis" table.
//!
//! Rules must be deterministic: findings are emitted in token order and
//! the driver sorts files, so two runs over the same tree produce
//! byte-identical reports.
//!
//! Test code (`#[cfg(test)]` items) is exempt from every rule except
//! [`UnsafeSafety`]: tests may unwrap, iterate hash maps, and read env
//! vars freely, but an `unsafe` block needs a `// SAFETY:` comment no
//! matter where it lives.

use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeSet;

/// One audit finding, pointing at a token span in a workspace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see [`Rule::id`]); `bad-suppression` is reserved for
    /// malformed `raa-audit:` comments.
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human explanation including the expected remedy.
    pub message: String,
    /// The trimmed source line — also the baseline fingerprint, so a
    /// finding survives unrelated edits that only move it vertically.
    pub snippet: String,
}

/// Per-file view handed to rules. See the module docs.
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Full token stream, comments included.
    pub tokens: &'a [Token],
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// `in_test[i]` is true when `tokens[i]` sits inside a `#[cfg(test)]`
    /// item (attribute included).
    pub in_test: Vec<bool>,
    /// Raw source lines for snippet extraction.
    pub lines: Vec<&'a str>,
}

impl<'a> FileContext<'a> {
    /// Lexes `source` and builds the derived views.
    pub fn new(rel_path: &'a str, tokens: &'a [Token], source: &'a str) -> Self {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let in_test = test_mask(tokens, &code);
        FileContext {
            rel_path,
            tokens,
            code,
            in_test,
            lines: source.lines().collect(),
        }
    }

    /// The trimmed source line at 1-based `line`.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// Builds a finding anchored at `tok`.
    pub fn finding(&self, rule: &str, tok: &Token, message: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
        }
    }

    /// Code token at code-index `ci` (not a raw token index).
    fn ct(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.tokens[i])
    }

    /// Whether the code token at code-index `ci` is test code.
    fn ct_in_test(&self, ci: usize) -> bool {
        self.code.get(ci).is_some_and(|&i| self.in_test[i])
    }

    /// True when the code tokens starting at `ci` match `pat` exactly
    /// (text comparison; kinds are not constrained).
    fn seq(&self, ci: usize, pat: &[&str]) -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, p)| self.ct(ci + k).is_some_and(|t| t.text == *p))
    }
}

/// Marks every token belonging to an item annotated `#[cfg(test)]` (or any
/// `#[cfg(...)]` attribute that mentions `test`, covering
/// `#[cfg(all(test, …))]`). The extent of the item is the next top-level
/// `{…}` block after the attribute stack, or the next `;` if one comes
/// first (e.g. a `use` or a field).
fn test_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let text = |ci: usize| code.get(ci).map(|&i| tokens[i].text.as_str());
    let mut ci = 0;
    while ci < code.len() {
        // Match `# [ cfg ( … test … ) ]` at the code level.
        if text(ci) == Some("#") && text(ci + 1) == Some("[") && text(ci + 2) == Some("cfg") {
            let attr_start = ci;
            let mut depth = 0usize;
            let mut saw_test = false;
            let mut j = ci + 1;
            // Scan to the attribute's closing `]`.
            loop {
                match text(j) {
                    None => break,
                    Some("[") | Some("(") => depth += 1,
                    Some(")") => depth -= 1,
                    Some("]") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some("test") => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_test {
                // Skip any further attributes stacked on the same item.
                let mut k = j + 1;
                while text(k) == Some("#") && text(k + 1) == Some("[") {
                    let mut d = 0usize;
                    k += 1;
                    loop {
                        match text(k) {
                            None => break,
                            Some("[") => d += 1,
                            Some("]") => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Item extent: to matching `}` of the first block, or `;`.
                let mut d = 0usize;
                let end = loop {
                    match text(k) {
                        None => break k,
                        Some(";") if d == 0 => break k + 1,
                        Some("{") => d += 1,
                        Some("}") => {
                            d -= 1;
                            if d == 0 {
                                break k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                };
                // Mark raw-token range [attr_start, end) including comments
                // interleaved in it.
                if let (Some(&a), Some(&b)) = (
                    code.get(attr_start),
                    code.get(end.saturating_sub(1)).or(code.last()),
                ) {
                    for slot in mask.iter_mut().take(b + 1).skip(a) {
                        *slot = true;
                    }
                }
                ci = end.max(ci + 1);
                continue;
            }
        }
        ci += 1;
    }
    mask
}

/// A single enforced contract. See the module docs for how to add one.
pub trait Rule {
    /// Stable kebab-case id; the suppression and baseline key.
    fn id(&self) -> &'static str;
    /// One-line description shown in reports.
    fn summary(&self) -> &'static str;
    /// Path-based scope, on workspace-relative forward-slash paths.
    fn applies_to(&self, rel_path: &str) -> bool;
    /// Scans one in-scope file.
    fn check(&self, ctx: &FileContext) -> Vec<Finding>;
}

/// All registered rules, in report order.
///
/// The crate-level `#![forbid(unsafe_code)]` check does not fit the
/// per-file [`Rule`] shape and lives in [`forbid_unsafe_findings`]; its
/// findings use the rule id `forbid-unsafe` and flow through the same
/// suppression/baseline pipeline.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(HashIter),
        Box::new(NondetTime),
        Box::new(EnvVar),
        Box::new(PanicPath),
        Box::new(UnsafeSafety),
        Box::new(FloatEq),
    ]
}

/// The crates whose decode/sim outputs are contractually bit-identical
/// across thread counts and hasher seeds.
const DETERMINISM_CRATES: &[&str] = &[
    "crates/decode/src/",
    "crates/stabsim/src/",
    "crates/sim/src/",
    "crates/surface/src/",
];

/// `hash-iter`: no hasher-order-dependent iteration in determinism crates.
///
/// Token-level type inference: an identifier is considered hash-backed
/// when it is declared `name: HashMap<…>`/`HashSet` (directly or wrapped
/// in `RwLock`/`Mutex`/`Arc`/`Option`), bound `let name = HashMap::new()`,
/// bound from another hash-backed name (guards:
/// `let m = self.memo.read()…`), or typed with a local alias of a hash
/// type (`type CompMemo = HashMap<…>`). Iterating such a name (`.iter()`,
/// `.keys()`, `.values()`, `.drain()`, `.into_iter()`, `.retain()`, or a
/// bare `for _ in &name`) is hasher-order-dependent and flagged.
pub struct HashIter;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

impl Rule for HashIter {
    fn id(&self) -> &'static str {
        "hash-iter"
    }
    fn summary(&self) -> &'static str {
        "no HashMap/HashSet iteration in determinism-contracted crates"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        DETERMINISM_CRATES.iter().any(|p| rel_path.starts_with(p))
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        // Pass 0: local aliases of hash types (`type CompMemo = HashMap<…>`).
        let mut hash_types: BTreeSet<String> = HASH_TYPES.iter().map(|s| s.to_string()).collect();
        for ci in 0..ctx.code.len() {
            if ctx.ct(ci).is_some_and(|t| t.text == "type")
                && ctx.ct(ci + 2).is_some_and(|t| t.text == "=")
            {
                let mut j = ci + 3;
                while let Some(t) = ctx.ct(j) {
                    if t.text == ";" {
                        break;
                    }
                    if HASH_TYPES.contains(&t.text.as_str()) {
                        hash_types.insert(ctx.ct(ci + 1).unwrap().text.clone());
                        break;
                    }
                    j += 1;
                }
            }
        }
        // Passes 1..: hash-backed names, to fixpoint (guard bindings chain).
        let mut names: BTreeSet<String> = BTreeSet::new();
        loop {
            let before = names.len();
            for ci in 0..ctx.code.len() {
                let Some(t) = ctx.ct(ci) else { break };
                // `name : …Hash…` declarations (let/param/field).
                if t.kind == TokKind::Ident
                    && ctx.ct(ci + 1).is_some_and(|n| n.text == ":")
                    && type_run_mentions(ctx, ci + 2, &hash_types)
                {
                    names.insert(t.text.clone());
                }
                // `let name = <init>;` — propagate hash-ness through
                // bindings that still *hold* the map: a constructor
                // (`HashMap::new()`), a bare alias/reference, or a
                // guard/clone (`self.memo.read()…`). An init that merely
                // *consumes* the map (`merged.into_iter().collect()`)
                // yields something else and must not propagate.
                if t.text == "let" {
                    let (pat_end, bound) = let_binding(ctx, ci);
                    if let Some(name) = bound {
                        if init_holds_hash(ctx, pat_end, &hash_types, &names) {
                            names.insert(name.clone());
                        }
                    }
                }
            }
            if names.len() == before {
                break;
            }
        }
        // Flag iteration over hash-backed names.
        for ci in 0..ctx.code.len() {
            if ctx.ct_in_test(ci) {
                continue;
            }
            let Some(t) = ctx.ct(ci) else { break };
            if names.contains(&t.text)
                && ctx.ct(ci + 1).is_some_and(|d| d.text == ".")
                && ctx
                    .ct(ci + 2)
                    .is_some_and(|m| ITER_METHODS.contains(&m.text.as_str()))
                && ctx.ct(ci + 3).is_some_and(|p| p.text == "(")
            {
                let m = ctx.ct(ci + 2).unwrap();
                findings.push(ctx.finding(
                    self.id(),
                    m,
                    format!(
                        "`{}.{}()` iterates a HashMap/HashSet in hasher order; use a BTreeMap, \
                         sort the keys first, or annotate why the order cannot escape",
                        t.text, m.text
                    ),
                ));
            }
            // `for pat in [&[mut]] name {` — bare hash iteration.
            if t.text == "for" {
                let mut j = ci + 1;
                while let Some(u) = ctx.ct(j) {
                    if u.text == "in" || u.text == "{" || j > ci + 40 {
                        break;
                    }
                    j += 1;
                }
                if ctx.ct(j).is_some_and(|u| u.text == "in") {
                    let mut k = j + 1;
                    while let Some(u) = ctx.ct(k) {
                        if u.text != "&" && u.text != "mut" {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(u) = ctx.ct(k) {
                        if names.contains(&u.text) && ctx.ct(k + 1).is_some_and(|b| b.text == "{") {
                            findings.push(ctx.finding(
                                self.id(),
                                u,
                                format!(
                                    "`for … in {}` iterates a HashMap/HashSet in hasher order; \
                                     use a BTreeMap, sort the keys first, or annotate why the \
                                     order cannot escape",
                                    u.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
        findings
    }
}

/// Whether a `let` initializer starting at code-index `start` evaluates
/// to something hash-backed: mentions a hash type (constructors,
/// `CompMemo::default()`), or uses a hash-backed name in a *holding*
/// position — bare/borrowed, or via `.read()`/`.write()`/`.lock()`/
/// `.clone()`/`.borrow()` guards. A name consumed through any other
/// method (`.into_iter()`, `.len()`, …) does not propagate.
fn init_holds_hash(
    ctx: &FileContext,
    start: usize,
    hash_types: &BTreeSet<String>,
    names: &BTreeSet<String>,
) -> bool {
    const HOLDING_METHODS: &[&str] = &["read", "write", "lock", "clone", "borrow", "borrow_mut"];
    let mut depth = 0i32;
    let mut j = start;
    while let Some(t) = ctx.ct(j) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => break,
            _ => {
                if hash_types.contains(&t.text) {
                    return true;
                }
                if names.contains(&t.text) {
                    match ctx.ct(j + 1).map(|u| u.text.as_str()) {
                        Some(".") => {
                            if ctx
                                .ct(j + 2)
                                .is_some_and(|m| HOLDING_METHODS.contains(&m.text.as_str()))
                            {
                                return true;
                            }
                        }
                        // A call: this is a function/method that merely
                        // *shares* the name (`.map(…)`), not the binding.
                        Some("(") => {}
                        _ => return true,
                    }
                }
            }
        }
        j += 1;
    }
    false
}

/// Scans a type position (after `:`) for a hash type, looking through
/// wrappers like `RwLock<HashMap<…>>`. Stops at tokens that end the type.
fn type_run_mentions(ctx: &FileContext, start: usize, hash_types: &BTreeSet<String>) -> bool {
    let mut depth = 0i32;
    for j in start..(start + 24).min(ctx.code.len()) {
        let Some(t) = ctx.ct(j) else { break };
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            "," | ";" | ")" | "{" | "=" if depth == 0 => break,
            _ => {
                if hash_types.contains(&t.text) {
                    return true;
                }
            }
        }
    }
    false
}

/// For a `let` at code-index `ci`, returns (code-index after `=`, bound
/// name) when the pattern is a simple `let [mut] name =` binding.
fn let_binding(ctx: &FileContext, ci: usize) -> (usize, Option<String>) {
    let mut j = ci + 1;
    if ctx.ct(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let name = match ctx.ct(j) {
        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
        _ => return (j, None),
    };
    // Optional `: Type` before `=`.
    let mut k = j + 1;
    let mut depth = 0i32;
    while let Some(t) = ctx.ct(k) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "=" if depth == 0 => return (k + 1, Some(name)),
            ";" if depth == 0 => return (k, None),
            _ => {}
        }
        if k > j + 40 {
            return (k, None);
        }
        k += 1;
    }
    (k, None)
}

/// `nondet-time`: no wall-clock or ambient randomness in code that feeds
/// `ExperimentRecord`s, cache fingerprints, or memo tables.
///
/// Scope: the decode/stabsim/surface crates wholesale, plus the record
/// producing `sim` modules. The operational `sim` modules
/// (`service`/`lock`/`orchestrator` timeouts, lock ages, scrub timers) are
/// deliberately out of scope: wall-clock is their job, and none of it may
/// reach a record by the `hash-iter`/`engine` contracts.
pub struct NondetTime;

const NONDET_SCOPE: &[&str] = &[
    "crates/decode/src/",
    "crates/stabsim/src/",
    "crates/surface/src/",
    "crates/sim/src/engine.rs",
    "crates/sim/src/record.rs",
    "crates/sim/src/spec.rs",
    "crates/sim/src/analysis.rs",
    "crates/sim/src/calibrate.rs",
];

impl Rule for NondetTime {
    fn id(&self) -> &'static str {
        "nondet-time"
    }
    fn summary(&self) -> &'static str {
        "no Instant/SystemTime/thread_rng in record- or memo-feeding code"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        NONDET_SCOPE.iter().any(|p| rel_path.starts_with(p))
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..ctx.code.len() {
            if ctx.ct_in_test(ci) {
                continue;
            }
            let Some(t) = ctx.ct(ci) else { break };
            if (t.text == "Instant" || t.text == "SystemTime") && ctx.seq(ci + 1, &["::", "now"]) {
                findings.push(ctx.finding(
                    self.id(),
                    t,
                    format!(
                        "`{}::now()` in a record/memo-feeding module: wall-clock values must \
                         never reach records, fingerprints, or memo keys",
                        t.text
                    ),
                ));
            }
            if t.text == "thread_rng" {
                findings.push(
                    ctx.finding(
                        self.id(),
                        t,
                        "`thread_rng()` is nondeterministic; derive seeds with SplitMix from the \
                     spec seed instead"
                            .to_string(),
                    ),
                );
            }
        }
        findings
    }
}

/// `env-var`: all environment access funnels through
/// `raa_bench::env_parse_strict` and its sibling helpers, so a malformed
/// knob is a hard error everywhere instead of a silent fallback.
pub struct EnvVar;

impl Rule for EnvVar {
    fn id(&self) -> &'static str {
        "env-var"
    }
    fn summary(&self) -> &'static str {
        "no raw std::env::var outside raa_bench's strict env helpers"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path != "crates/bench/src/lib.rs"
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..ctx.code.len() {
            if ctx.ct_in_test(ci) {
                continue;
            }
            let Some(t) = ctx.ct(ci) else { break };
            if t.text == "env"
                && ctx.ct(ci + 1).is_some_and(|d| d.text == "::")
                && ctx
                    .ct(ci + 2)
                    .is_some_and(|m| m.text.starts_with("var") && m.kind == TokKind::Ident)
            {
                let m = ctx.ct(ci + 2).unwrap();
                findings.push(ctx.finding(
                    self.id(),
                    m,
                    format!(
                        "raw `env::{}` bypasses the strict env contract; use \
                         `raa_bench::env_parse_strict`/`env_string` so malformed values fail \
                         loudly",
                        m.text
                    ),
                ));
            }
        }
        findings
    }
}

/// `panic-path`: the daemon-reachable `sim` modules must use the typed
/// `OrchestratorError`/`McError` chain — a stray `unwrap()` in a worker
/// turns a bad job into a poisoned thread.
pub struct PanicPath;

const PANIC_SCOPE: &[&str] = &[
    "crates/sim/src/service.rs",
    "crates/sim/src/orchestrator.rs",
    "crates/sim/src/lock.rs",
    "crates/sim/src/jobs.rs",
];

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-path"
    }
    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic! in daemon-reachable sim modules"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        PANIC_SCOPE.contains(&rel_path)
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..ctx.code.len() {
            if ctx.ct_in_test(ci) {
                continue;
            }
            let Some(t) = ctx.ct(ci) else { break };
            if t.text == "."
                && ctx
                    .ct(ci + 1)
                    .is_some_and(|m| m.text == "unwrap" || m.text == "expect")
                && ctx.ct(ci + 2).is_some_and(|p| p.text == "(")
            {
                let m = ctx.ct(ci + 1).unwrap();
                findings.push(ctx.finding(
                    self.id(),
                    m,
                    format!(
                        "`.{}()` in a daemon-reachable path; thread the typed \
                         OrchestratorError/McError chain instead (or annotate why panicking \
                         is the containment boundary)",
                        m.text
                    ),
                ));
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && ctx.ct(ci + 1).is_some_and(|b| b.text == "!")
            {
                findings.push(ctx.finding(
                    self.id(),
                    t,
                    format!(
                        "`{}!` in a daemon-reachable path; return a typed error instead (or \
                         annotate why panicking is the containment boundary)",
                        t.text
                    ),
                ));
            }
        }
        findings
    }
}

/// `unsafe-safety`: every `unsafe` keyword needs a `// SAFETY:` comment on
/// the same line or within the three lines above it. Applies to test code
/// too — an unfenced invariant is no safer in a test.
pub struct UnsafeSafety;

impl Rule for UnsafeSafety {
    fn id(&self) -> &'static str {
        "unsafe-safety"
    }
    fn summary(&self) -> &'static str {
        "every `unsafe` requires an adjacent // SAFETY: comment"
    }
    fn applies_to(&self, _rel_path: &str) -> bool {
        true
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for &i in &ctx.code {
            let t = &ctx.tokens[i];
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            // A `// SAFETY:` justification may span several line comments;
            // coverage extends to the end of the contiguous comment block the
            // marker opens, so a four-line rationale still counts as adjacent.
            let covered = ctx.tokens.iter().enumerate().any(|(ci, c)| {
                if !matches!(c.kind, TokKind::LineComment | TokKind::BlockComment)
                    || !c.text.contains("SAFETY:")
                    || c.line > t.line
                {
                    return false;
                }
                let mut end = c.line;
                for next in &ctx.tokens[ci + 1..] {
                    if next.kind == TokKind::LineComment && next.line == end + 1 {
                        end = next.line;
                    } else {
                        break;
                    }
                }
                end + 3 >= t.line
            });
            if !covered {
                findings.push(
                    ctx.finding(
                        self.id(),
                        t,
                        "`unsafe` without an adjacent `// SAFETY:` comment stating the upheld \
                     invariant"
                            .to_string(),
                    ),
                );
            }
        }
        findings
    }
}

/// `float-eq`: `==`/`!=` on floats in the fitting/analysis modules —
/// exact float comparison silently turns a fit into a coin flip.
pub struct FloatEq;

const FLOAT_SCOPE: &[&str] = &["crates/core/src/fit.rs", "crates/sim/src/analysis.rs"];

impl Rule for FloatEq {
    fn id(&self) -> &'static str {
        "float-eq"
    }
    fn summary(&self) -> &'static str {
        "no ==/!= on float expressions in fit/analysis code"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        FLOAT_SCOPE.contains(&rel_path)
    }
    fn check(&self, ctx: &FileContext) -> Vec<Finding> {
        // Names declared as floats in this file: `name: f64`, `let n = 1.0`.
        let mut float_names: BTreeSet<String> = BTreeSet::new();
        for ci in 0..ctx.code.len() {
            let Some(t) = ctx.ct(ci) else { break };
            if t.kind == TokKind::Ident
                && ctx.ct(ci + 1).is_some_and(|c| c.text == ":")
                && ctx
                    .ct(ci + 2)
                    .is_some_and(|f| f.text == "f64" || f.text == "f32")
            {
                float_names.insert(t.text.clone());
            }
            if t.text == "let" {
                let (init, bound) = let_binding(ctx, ci);
                if let (Some(name), Some(first)) = (bound, ctx.ct(init)) {
                    if first.kind == TokKind::Float {
                        float_names.insert(name);
                    }
                }
            }
        }
        let is_floaty = |tok: Option<&Token>| {
            tok.is_some_and(|t| t.kind == TokKind::Float || float_names.contains(&t.text))
        };
        let mut findings = Vec::new();
        for ci in 0..ctx.code.len() {
            if ctx.ct_in_test(ci) {
                continue;
            }
            let Some(t) = ctx.ct(ci) else { break };
            if t.text != "==" && t.text != "!=" {
                continue;
            }
            // Right operand may carry a unary minus: `x == -1.0`.
            let mut right = ci + 1;
            if ctx.ct(right).is_some_and(|u| u.text == "-") {
                right += 1;
            }
            if is_floaty(ctx.ct(ci.wrapping_sub(1))) || is_floaty(ctx.ct(right)) {
                findings.push(ctx.finding(
                    self.id(),
                    t,
                    format!(
                        "float `{}` comparison; compare against a tolerance or restructure \
                         so exactness is guaranteed",
                        t.text
                    ),
                ));
            }
        }
        findings
    }
}

/// The crate-level unsafe-hygiene check (rule id `forbid-unsafe`): a crate
/// whose sources contain no `unsafe` at all must declare
/// `#![forbid(unsafe_code)]` in its root (`src/lib.rs`, else
/// `src/main.rs`), so the clean state is compiler-enforced from then on.
///
/// `files` are `(rel_path, source, tokens)` for every scanned file of one
/// crate, sorted by path.
pub fn forbid_unsafe_findings(
    crate_rel_dir: &str,
    files: &[(String, String, Vec<Token>)],
) -> Vec<Finding> {
    let any_unsafe = files.iter().any(|(_, _, tokens)| {
        tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unsafe")
    });
    if any_unsafe {
        return Vec::new();
    }
    let lib = format!("{crate_rel_dir}/src/lib.rs");
    let main = format!("{crate_rel_dir}/src/main.rs");
    let Some((root_path, _, tokens)) = files
        .iter()
        .find(|(p, _, _)| *p == lib)
        .or_else(|| files.iter().find(|(p, _, _)| *p == main))
    else {
        return Vec::new();
    };
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let has_forbid = code.windows(8).any(|w| {
        let texts: Vec<&str> = w.iter().map(|t| t.text.as_str()).collect();
        texts == ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]
    });
    if has_forbid {
        return Vec::new();
    }
    vec![Finding {
        rule: "forbid-unsafe".to_string(),
        file: root_path.clone(),
        line: 1,
        col: 1,
        message: format!(
            "crate `{crate_rel_dir}` contains no unsafe code; add `#![forbid(unsafe_code)]` \
             to its root so the clean state is compiler-enforced"
        ),
        // Stable fingerprint independent of whatever line 1 says today.
        snippet: "#![forbid(unsafe_code)] missing".to_string(),
    }]
}

/// Convenience for tests: lex + build a context + run one rule.
pub fn run_rule_on(rule: &dyn Rule, rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = lex(source);
    let ctx = FileContext::new(rel_path, &tokens, source);
    rule.check(&ctx)
}
