//! The suppression channel: `// raa-audit: allow(<rule>): <reason>`.
//!
//! A suppression comment silences findings of `<rule>` on its own line
//! (trailing form) and on the line directly below it (preceding form).
//! The reason is mandatory — an allow without a written justification is
//! itself reported, under the reserved rule id `bad-suppression`, so a
//! suppression can never be quieter than the finding it hides.

use crate::lexer::TokKind;
use crate::rules::{FileContext, Finding};

/// A parsed, well-formed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// The mandatory human justification.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
}

const MARKER: &str = "raa-audit:";

/// Extracts suppressions from a file's comment tokens. Malformed
/// `raa-audit:` comments come back as `bad-suppression` findings.
pub fn collect(ctx: &FileContext) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for tok in ctx.tokens {
        if !matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // The directive must lead the comment (`// raa-audit: …`); a
        // mid-sentence mention (docs talking *about* the syntax) is text.
        let body = tok.text.trim_start_matches(['/', '*', '!']).trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        match parse_directive(rest.trim()) {
            Ok((rule, reason)) => sups.push(Suppression {
                rule,
                reason,
                line: tok.line,
            }),
            Err(why) => bad.push(ctx.finding(
                "bad-suppression",
                tok,
                format!("malformed raa-audit suppression: {why}"),
            )),
        }
    }
    (sups, bad)
}

/// Parses `allow(<rule>): <reason>`; both parts are mandatory.
fn parse_directive(rest: &str) -> Result<(String, String), String> {
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err("expected `allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` — expected `allow(<rule>): <reason>`".to_string());
    };
    let rule = args[..close].trim();
    if rule.is_empty() {
        return Err("empty rule id in `allow()`".to_string());
    }
    let after = args[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("missing `: <reason>` after `allow(…)` — the reason is mandatory".to_string());
    };
    // Strip a block comment's trailing `*/` before judging emptiness.
    let reason = reason.trim().trim_end_matches("*/").trim();
    if reason.is_empty() {
        return Err("empty reason — write down why this violation is sound".to_string());
    }
    Ok((rule.to_string(), reason.to_string()))
}

/// Splits `findings` into (kept, suppressed) under `sups`. A suppression
/// covers findings of its rule on `line` and `line + 1`.
pub fn apply(findings: Vec<Finding>, sups: &[Suppression]) -> (Vec<Finding>, Vec<Finding>) {
    let (mut kept, mut suppressed) = (Vec::new(), Vec::new());
    for f in findings {
        let hit = sups
            .iter()
            .any(|s| s.rule == f.rule && (s.line == f.line || s.line + 1 == f.line));
        if hit {
            suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}
