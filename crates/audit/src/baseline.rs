//! The grandfathering baseline: `audit-baseline.json`.
//!
//! The audit gates on *regressions*, not on history: findings present when
//! a rule was introduced are recorded here and tolerated, while anything
//! beyond the recorded multiset fails `--deny-new`. A baseline entry is
//! keyed by `(rule, file, snippet)` — the snippet is the trimmed source
//! line, so findings survive unrelated edits that only move them
//! vertically, and disappear (tightening the gate on the next
//! `--update-baseline`) when the offending line itself is fixed. Entries
//! carry a count so N identical lines in one file grandfather exactly N
//! findings.
//!
//! The file is written sorted and newline-stable, so regenerating it on an
//! unchanged tree is a byte-level no-op — diffs show real contract drift.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Multiset of grandfathered findings.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// `(rule, file, snippet) -> tolerated count`.
    pub entries: BTreeMap<(String, String, String), u32>,
}

impl Baseline {
    /// Builds the baseline that exactly grandfathers `findings`.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.clone(), f.file.clone(), f.snippet.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// The findings in `findings` not covered by this baseline: for each
    /// `(rule, file, snippet)` key, occurrences beyond the tolerated count
    /// (in source order).
    pub fn new_findings<'a>(&self, findings: &'a [Finding]) -> Vec<&'a Finding> {
        let mut seen: BTreeMap<(&str, &str, &str), u32> = BTreeMap::new();
        let mut fresh = Vec::new();
        for f in findings {
            let key = (f.rule.as_str(), f.file.as_str(), f.snippet.as_str());
            let n = seen.entry(key).or_insert(0);
            *n += 1;
            let tolerated = self
                .entries
                .get(&(f.rule.clone(), f.file.clone(), f.snippet.clone()))
                .copied()
                .unwrap_or(0);
            if *n > tolerated {
                fresh.push(f);
            }
        }
        fresh
    }

    /// Serializes to the checked-in JSON format (sorted, one entry per
    /// line, trailing newline).
    pub fn to_json(&self) -> String {
        if self.entries.is_empty() {
            return String::from("{\"version\":1,\"entries\":[]}\n");
        }
        let mut out = String::from("{\"version\":1,\"entries\":[\n");
        let mut first = true;
        for ((rule, file, key), count) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "  {{\"rule\":{},\"file\":{},\"key\":{},\"count\":{}}}",
                json_string(rule),
                json_string(file),
                json_string(key),
                count
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parses the format written by [`Baseline::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = parse_json(text)?;
        let Value::Object(top) = value else {
            return Err("baseline: top level must be an object".to_string());
        };
        let entries_val = top
            .iter()
            .find(|(k, _)| k == "entries")
            .map(|(_, v)| v)
            .ok_or("baseline: missing \"entries\"")?;
        let Value::Array(items) = entries_val else {
            return Err("baseline: \"entries\" must be an array".to_string());
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let Value::Object(fields) = item else {
                return Err("baseline: entry must be an object".to_string());
            };
            let get_str = |name: &str| -> Result<String, String> {
                match fields.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                    Some(Value::String(s)) => Ok(s.clone()),
                    _ => Err(format!("baseline: entry missing string \"{name}\"")),
                }
            };
            let count = match fields.iter().find(|(k, _)| k == "count").map(|(_, v)| v) {
                Some(Value::Number(n)) if *n >= 0.0 => *n as u32,
                _ => return Err("baseline: entry missing numeric \"count\"".to_string()),
            };
            *entries
                .entry((get_str("rule")?, get_str("file")?, get_str("key")?))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Loads a baseline; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path) -> io::Result<Option<Self>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_json(&text)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Writes the baseline (atomically via temp + rename, matching the
    /// record cache's write discipline).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }
}

/// Escapes a string into a JSON literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the baseline format. Object keys keep insertion
/// order in a Vec — the audit never needs key lookup at scale.
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    String(String),
    Number(f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

/// A tiny recursive-descent JSON parser, enough for the baseline file.
fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("baseline: trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "baseline: expected {:?} at byte {}",
            b as char, pos
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(format!("baseline: expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("baseline: expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("baseline: bad number at byte {start}"))
        }
        None => Err("baseline: unexpected end of input".to_string()),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("baseline: expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out)
                    .map_err(|_| "baseline: invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("baseline: bad escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("baseline: bad \\u escape")?;
                        *pos += 4;
                        let c = char::from_u32(hex).ok_or("baseline: bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err("baseline: unknown escape".to_string()),
                }
            }
            b => out.push(b),
        }
    }
    Err("baseline: unterminated string".to_string())
}
