//! `raa-audit` — project-specific static analysis for the workspace.
//!
//! The headline contracts of this repo ("`DecodeStats` bit-identical
//! across thread counts", "memo hit/miss interleavings byte-identical",
//! "no panic escapes a daemon worker") are enforced at runtime by anchor
//! tests; this crate gives them a compile-adjacent gate. It lexes every
//! workspace crate at the token level — strings, char literals, raw
//! strings, and comments handled correctly — and runs a registry of
//! project rules over the stream:
//!
//! | rule            | contract |
//! |-----------------|----------|
//! | `hash-iter`     | no hasher-ordered `HashMap`/`HashSet` iteration in determinism crates |
//! | `nondet-time`   | no `Instant::now`/`SystemTime::now`/`thread_rng` in record-feeding code |
//! | `env-var`       | env access funnels through `raa_bench`'s strict helpers |
//! | `panic-path`    | daemon-reachable `sim` modules use the typed error chain |
//! | `unsafe-safety` | every `unsafe` carries an adjacent `// SAFETY:` comment |
//! | `forbid-unsafe` | unsafe-free crates declare `#![forbid(unsafe_code)]` |
//! | `float-eq`      | no `==`/`!=` on floats in fit/analysis code |
//!
//! Findings are suppressible only via
//! `// raa-audit: allow(<rule>): <reason>` with a mandatory reason, and a
//! checked-in `audit-baseline.json` grandfathers the backlog so CI
//! (`raa-audit --deny-new`) gates strictly on regressions. See
//! [`rules`] for the extension point and the README's "Static analysis"
//! section for the workflow.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

use baseline::Baseline;
use report::Report;
use rules::{FileContext, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Scans every crate under `<root>/crates/` (the `vendor/` shims and the
/// root integration package are out of audit scope) and returns the
/// post-suppression findings split against `baseline`.
///
/// File order, finding order, and report bytes are deterministic.
pub fn scan_workspace(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let mut all_findings: Vec<Finding> = Vec::new();
    let mut suppressed: Vec<Finding> = Vec::new();
    let mut files_scanned = 0usize;
    let registry = rules::registry();

    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_rel = format!(
            "crates/{}",
            crate_dir.file_name().unwrap_or_default().to_string_lossy()
        );
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files: Vec<(String, String, Vec<lexer::Token>)> = Vec::new();
        for path in rs_files(&src)? {
            let rel = format!(
                "{crate_rel}/src/{}",
                path.strip_prefix(&src)
                    .expect("walked under src")
                    .to_string_lossy()
                    .replace('\\', "/")
            );
            let source = std::fs::read_to_string(&path)?;
            let tokens = lexer::lex(&source);
            files.push((rel, source, tokens));
        }
        files_scanned += files.len();
        for (rel, source, tokens) in &files {
            let ctx = FileContext::new(rel, tokens, source);
            let (sups, mut bad) = suppress::collect(&ctx);
            let mut file_findings = Vec::new();
            for rule in &registry {
                if rule.applies_to(rel) {
                    file_findings.extend(rule.check(&ctx));
                }
            }
            let (kept, silenced) = suppress::apply(file_findings, &sups);
            all_findings.extend(kept);
            // Malformed suppressions are findings and cannot be suppressed.
            all_findings.append(&mut bad);
            suppressed.extend(silenced);
        }
        all_findings.extend(rules::forbid_unsafe_findings(&crate_rel, &files));
    }

    // Stable report order: file, line, col, rule.
    all_findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    // Split against the baseline by occurrence count per key: the first
    // `tolerated` identical findings are grandfathered, the rest are new.
    let mut seen: std::collections::BTreeMap<(String, String, String), u32> =
        std::collections::BTreeMap::new();
    let (mut fresh, mut grandfathered) = (Vec::new(), Vec::new());
    for f in all_findings {
        let key = (f.rule.clone(), f.file.clone(), f.snippet.clone());
        let n = seen.entry(key.clone()).or_insert(0);
        *n += 1;
        if *n > baseline.entries.get(&key).copied().unwrap_or(0) {
            fresh.push(f);
        } else {
            grandfathered.push(f);
        }
    }
    Ok(Report {
        fresh,
        grandfathered,
        suppressed,
        files_scanned,
    })
}

/// All current findings (post-suppression, pre-baseline) — what
/// `--update-baseline` records.
pub fn current_findings(root: &Path) -> io::Result<Vec<Finding>> {
    let empty = Baseline::default();
    let report = scan_workspace(root, &empty)?;
    Ok(report.fresh)
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, sorted by path.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}
