//! `raa-audit` CLI — scan the workspace and gate on contract regressions.
//!
//! ```sh
//! raa-audit                      # human report, exit 0
//! raa-audit --deny-new           # exit 1 on any finding not in the baseline
//! raa-audit --update-baseline    # re-grandfather the current findings
//! raa-audit --json               # machine-readable report on stdout
//! raa-audit --json-out audit.json --deny-new   # CI: artifact + gate
//! ```
//!
//! `--root <dir>` points at a workspace other than the current directory;
//! `--baseline <path>` overrides the default `<root>/audit-baseline.json`.
//! Exit codes: 0 clean (or violations all grandfathered), 1 new findings
//! under `--deny-new`, 2 usage or I/O errors.

#![forbid(unsafe_code)]

use raa_audit::baseline::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    json: bool,
    json_out: Option<PathBuf>,
    deny_new: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline_path: None,
        json: false,
        json_out: None,
        deny_new: false,
        update_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                opts.baseline_path =
                    Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--json" => opts.json = true,
            "--json-out" => {
                opts.json_out = Some(PathBuf::from(args.next().ok_or("--json-out needs a path")?));
            }
            "--deny-new" => opts.deny_new = true,
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => {
                return Err("usage: raa-audit [--root DIR] [--baseline PATH] [--json] \
                            [--json-out PATH] [--deny-new] [--update-baseline]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}; see --help")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| opts.root.join("audit-baseline.json"));

    if opts.update_baseline {
        let findings = match raa_audit::current_findings(&opts.root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("raa-audit: scan failed: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = baseline.save(&baseline_path) {
            eprintln!("raa-audit: writing {} failed: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "raa-audit: baseline updated — {} entry(ies) grandfathering {} finding(s)",
            baseline.entries.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(Some(b)) => b,
        Ok(None) => Baseline::default(),
        Err(e) => {
            eprintln!("raa-audit: reading {} failed: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };
    let report = match raa_audit::scan_workspace(&opts.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("raa-audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.json_out {
        if let Err(e) = std::fs::write(path, report.json()) {
            eprintln!("raa-audit: writing {} failed: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if opts.json {
        print!("{}", report.json());
    } else {
        print!("{}", report.human());
    }
    if opts.deny_new && !report.clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
