//! The audit's own acceptance gate, as a test: scanning the real workspace
//! must come back clean modulo the checked-in baseline, and regenerating
//! the baseline on the unchanged tree must be a byte-level no-op. This is
//! the same check CI runs via `raa-audit --deny-new`, wired into
//! `cargo test` so a contract regression fails locally too.

use raa_audit::baseline::Baseline;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_is_clean_modulo_baseline() {
    let root = workspace_root();
    let baseline = Baseline::load(&root.join("audit-baseline.json"))
        .expect("baseline parses")
        .unwrap_or_default();
    let report = raa_audit::scan_workspace(&root, &baseline).expect("scan succeeds");
    assert!(report.files_scanned > 50, "workspace scan looks truncated");
    assert!(
        report.clean(),
        "new audit findings (fix them or annotate with \
         `// raa-audit: allow(<rule>): <reason>`):\n{}",
        report.human()
    );
}

#[test]
fn baseline_regeneration_is_a_noop_on_a_clean_tree() {
    let root = workspace_root();
    let checked_in = std::fs::read_to_string(root.join("audit-baseline.json"))
        .expect("audit-baseline.json is checked in");
    let findings = raa_audit::current_findings(&root).expect("scan succeeds");
    let regenerated = Baseline::from_findings(&findings).to_json();
    assert_eq!(
        regenerated, checked_in,
        "audit-baseline.json is stale; rerun `raa-audit --update-baseline`"
    );
}
