//! Per-rule positive/negative snippets: each contract rule gets at least
//! one snippet that must fire and one that must stay silent, including the
//! scope boundaries (out-of-scope paths, `#[cfg(test)]` exemption) and the
//! lexical traps (the pattern inside a string or comment).

use raa_audit::lexer::lex;
use raa_audit::rules::{
    forbid_unsafe_findings, run_rule_on, EnvVar, FloatEq, HashIter, NondetTime, PanicPath, Rule,
    UnsafeSafety,
};

fn hits(rule: &dyn Rule, path: &str, src: &str) -> usize {
    assert!(
        rule.applies_to(path),
        "snippet path {path} must be in scope for {}",
        rule.id()
    );
    run_rule_on(rule, path, src).len()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_flags_iteration_over_declared_map() {
    let src = r#"
use std::collections::HashMap;
fn f(map: &HashMap<u32, u32>) -> u32 {
    let mut s = 0;
    for (_k, v) in map.iter() { s += v; }
    s
}
"#;
    assert_eq!(hits(&HashIter, "crates/decode/src/x.rs", src), 1);
}

#[test]
fn hash_iter_flags_bare_for_loop_and_guard_propagation() {
    let src = r#"
use std::collections::{HashMap, HashSet};
struct S { memo: std::sync::RwLock<HashMap<u64, u64>> }
fn f(s: &S, set: HashSet<u32>) {
    let m = s.memo.read().unwrap();
    for _ in m.keys() {}
    for _x in &set {}
}
"#;
    assert_eq!(hits(&HashIter, "crates/stabsim/src/x.rs", src), 2);
}

#[test]
fn hash_iter_silent_on_vec_and_btreemap_and_consuming_bindings() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};
fn f(merged: HashMap<u64, f64>, sorted: BTreeMap<u64, f64>, v: Vec<u64>) {
    // A binding that *consumes* the map is no longer hash-ordered.
    let mut errors: Vec<u64> = merged.into_iter().map(|(k, _)| k).collect();
    errors.sort_unstable();
    for e in errors.iter() { let _ = e; }
    for (_k, _x) in sorted.iter() {}
    for y in v.iter() { let _ = y; }
}
"#;
    // Only `merged.into_iter()` itself is hasher-ordered — and it feeds a
    // sort, so the canonical fix is an annotation; here we only assert the
    // Vec/BTreeMap iterations stay silent.
    let findings = run_rule_on(&HashIter, "crates/decode/src/x.rs", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].snippet.contains("merged.into_iter()"));
}

#[test]
fn hash_iter_out_of_scope_path_and_test_code_are_exempt() {
    assert!(!HashIter.applies_to("crates/core/src/budget.rs"));
    let src = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for _ in m.iter() {}
    }
}
"#;
    assert_eq!(hits(&HashIter, "crates/decode/src/x.rs", src), 0);
}

// -------------------------------------------------------------- nondet-time

#[test]
fn nondet_time_flags_clocks_and_thread_rng() {
    let src = r#"
fn f() -> u64 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let r = rand::thread_rng().gen::<u64>();
    let _ = (t, s);
    r
}
"#;
    assert_eq!(hits(&NondetTime, "crates/sim/src/engine.rs", src), 3);
}

#[test]
fn nondet_time_silent_in_operational_modules_and_strings() {
    // service.rs owns timeouts — deliberately out of scope.
    assert!(!NondetTime.applies_to("crates/sim/src/service.rs"));
    let src = r#"fn f() -> &'static str { "Instant::now() in a string" }"#;
    assert_eq!(hits(&NondetTime, "crates/decode/src/x.rs", src), 0);
}

// ------------------------------------------------------------------ env-var

#[test]
fn env_var_flags_raw_access_everywhere_but_the_helper_module() {
    let src = r#"
fn f() -> Option<String> {
    std::env::var("RAA_KNOB").ok()
}
fn g() -> bool {
    std::env::var_os("RAA_FLAG").is_some()
}
"#;
    assert_eq!(hits(&EnvVar, "crates/core/src/budget.rs", src), 2);
    assert!(!EnvVar.applies_to("crates/bench/src/lib.rs"));
}

#[test]
fn env_var_silent_on_helper_calls_and_test_code() {
    let src = r#"
fn f() -> Option<String> { raa_bench::env_string("RAA_KNOB") }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = std::env::var("RAA_KNOB"); }
}
"#;
    assert_eq!(hits(&EnvVar, "crates/core/src/budget.rs", src), 0);
}

// --------------------------------------------------------------- panic-path

#[test]
fn panic_path_flags_unwrap_expect_and_panic_macros() {
    let src = r#"
fn f(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect("present");
    if a + b > 9 { panic!("boom"); }
    match a { 0 => unreachable!(), _ => a }
}
"#;
    assert_eq!(hits(&PanicPath, "crates/sim/src/service.rs", src), 4);
}

#[test]
fn panic_path_scope_is_the_daemon_reachable_modules_only() {
    assert!(PanicPath.applies_to("crates/sim/src/jobs.rs"));
    assert!(PanicPath.applies_to("crates/sim/src/lock.rs"));
    assert!(PanicPath.applies_to("crates/sim/src/orchestrator.rs"));
    assert!(!PanicPath.applies_to("crates/sim/src/engine.rs"));
    assert!(!PanicPath.applies_to("crates/decode/src/unionfind.rs"));
}

#[test]
fn panic_path_silent_on_renamed_methods_strings_and_tests() {
    let src = r#"
fn f(p: &mut Parser) -> Result<(), String> {
    p.expect_byte(b':')?;
    let msg = "call .unwrap() and panic!";
    let _ = msg;
    Ok(())
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
    assert_eq!(hits(&PanicPath, "crates/sim/src/service.rs", src), 0);
}

// ------------------------------------------------------------ unsafe-safety

#[test]
fn unsafe_safety_flags_unfenced_unsafe_even_in_tests() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let x = 0u8; assert_eq!(unsafe { *(&x as *const u8) }, 0); }
}
"#;
    assert_eq!(hits(&UnsafeSafety, "crates/core/src/budget.rs", src), 2);
}

#[test]
fn unsafe_safety_accepts_adjacent_and_multiline_safety_comments() {
    let src = r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points at a live, initialized byte.
    unsafe { *p }
}
fn g(p: *const u8) -> u8 {
    // SAFETY: a justification that takes several lines to state fully —
    // the pointer is derived from a reference two frames up, the borrow
    // is still live, and nothing reallocates underneath it while this
    // read happens.
    unsafe { *p }
}
"#;
    assert_eq!(hits(&UnsafeSafety, "crates/core/src/budget.rs", src), 0);
}

#[test]
fn unsafe_safety_ignores_safety_text_inside_strings() {
    let src = r##"
fn f(p: *const u8) -> u8 {
    let _doc = r#"// SAFETY: not a real comment"#;
    unsafe { *p }
}
"##;
    assert_eq!(hits(&UnsafeSafety, "crates/core/src/budget.rs", src), 1);
}

// ----------------------------------------------------------------- float-eq

#[test]
fn float_eq_flags_exact_comparison_against_literals_and_float_names() {
    let src = r#"
fn f(x: f64, y: f64) -> bool {
    let z = 0.5;
    x == 1.0 || y != z || z == -0.0
}
"#;
    assert_eq!(hits(&FloatEq, "crates/core/src/fit.rs", src), 3);
}

#[test]
fn float_eq_silent_on_integers_orderings_and_out_of_scope_files() {
    let src = r#"
fn f(n: usize, x: f64) -> bool {
    n == 3 && x < 1.0 && x >= 0.0
}
"#;
    assert_eq!(hits(&FloatEq, "crates/core/src/fit.rs", src), 0);
    assert!(!FloatEq.applies_to("crates/core/src/budget.rs"));
}

// ------------------------------------------------------------ forbid-unsafe

fn file(rel: &str, src: &str) -> (String, String, Vec<raa_audit::lexer::Token>) {
    (rel.to_string(), src.to_string(), lex(src))
}

#[test]
fn forbid_unsafe_flags_clean_crate_without_the_attribute() {
    let files = vec![file("crates/foo/src/lib.rs", "pub fn f() {}\n")];
    let findings = forbid_unsafe_findings("crates/foo", &files);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, "forbid-unsafe");
    assert_eq!(findings[0].file, "crates/foo/src/lib.rs");
}

#[test]
fn forbid_unsafe_silent_with_attribute_or_real_unsafe() {
    let clean = vec![file(
        "crates/foo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    )];
    assert!(forbid_unsafe_findings("crates/foo", &clean).is_empty());
    // A crate that *does* contain unsafe must not be told to forbid it.
    let has_unsafe = vec![file(
        "crates/foo/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: test.\n    unsafe { *p }\n}\n",
    )];
    assert!(forbid_unsafe_findings("crates/foo", &has_unsafe).is_empty());
    // The attribute in a comment or string does not count.
    let faked = vec![file(
        "crates/foo/src/lib.rs",
        "// #![forbid(unsafe_code)]\npub fn f() {}\n",
    )];
    assert_eq!(forbid_unsafe_findings("crates/foo", &faked).len(), 1);
}
