//! End-to-end baseline semantics on a synthetic workspace: seed one
//! violation of every rule class, watch `--deny-new` fail with accurate
//! spans, grandfather the backlog with `--update-baseline`, watch
//! `--deny-new` pass, then regress one line and watch exactly that line
//! fail. Exercises the real CLI binary so the exit-code contract is
//! pinned, not just the library.

use raa_audit::baseline::Baseline;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("raa-audit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn write(root: &Path, rel: &str, src: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir");
    fs::write(path, src).expect("write");
}

/// A synthetic workspace with one violation of every rule class.
fn seed_tree(root: &Path) {
    // hash-iter + nondet-time + env-var in a determinism crate, plus the
    // missing `#![forbid(unsafe_code)]` (forbid-unsafe) on its root.
    write(
        root,
        "crates/decode/src/lib.rs",
        r#"use std::collections::HashMap;
pub fn f(map: &HashMap<u32, u32>) -> u32 {
    let t = std::time::Instant::now();
    let _knob = std::env::var("RAA_X");
    let mut s = t.elapsed().as_secs() as u32;
    for (_k, v) in map.iter() { s += v; }
    s
}
"#,
    );
    // panic-path in a daemon-reachable module (no crate root on purpose:
    // the forbid-unsafe check needs a lib.rs/main.rs to anchor to).
    write(
        root,
        "crates/sim/src/service.rs",
        "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );
    // float-eq in the fit module.
    write(
        root,
        "crates/core/src/fit.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: f64) -> bool { x == 1.0 }\n",
    );
    // unsafe-safety: unsafe without a SAFETY comment (and therefore no
    // forbid-unsafe finding for this crate).
    write(
        root,
        "crates/phys/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    // A suppressed violation and a malformed suppression.
    write(
        root,
        "crates/surface/src/lib.rs",
        r#"#![forbid(unsafe_code)]
pub fn g() -> u64 {
    // raa-audit: allow(nondet-time): timing printed to stderr only, never recorded.
    std::time::Instant::now().elapsed().as_secs()
}
pub fn h() -> u64 {
    // raa-audit: allow(nondet-time)
    std::time::Instant::now().elapsed().as_secs()
}
"#,
    );
}

fn audit(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_raa-audit"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("raa-audit runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn deny_new_fails_on_seeded_violations_with_accurate_spans() {
    let tmp = TempDir::new("seeded");
    seed_tree(&tmp.0);
    let (code, stdout, _) = audit(&tmp.0, &["--deny-new"]);
    assert_eq!(code, 1, "seeded violations must fail --deny-new:\n{stdout}");
    // One finding of every class, each at its exact source location.
    for span in [
        "crates/decode/src/lib.rs:6:24: `map.iter()`",
        "crates/decode/src/lib.rs:3:24: `Instant::now()`",
        "crates/decode/src/lib.rs:4:27: raw `env::var`",
        "crates/decode/src/lib.rs:1:1: crate `crates/decode` contains no unsafe",
        "crates/sim/src/service.rs:1:37: `.unwrap()`",
        "crates/core/src/fit.rs:2:30: float `==`",
        "crates/phys/src/lib.rs:1:32: `unsafe` without",
        "crates/surface/src/lib.rs:7:5: malformed raa-audit suppression",
    ] {
        assert!(stdout.contains(span), "missing {span:?} in:\n{stdout}");
    }
    // The well-formed suppression silenced its finding; the nondet-time
    // count must therefore be exactly 2 (decode + the malformed-allow line).
    assert!(
        stdout.contains("rule nondet-time — 2 new finding(s)"),
        "suppression failed to silence:\n{stdout}"
    );
}

#[test]
fn update_baseline_then_deny_new_passes_and_regression_fails() {
    let tmp = TempDir::new("roundtrip");
    seed_tree(&tmp.0);

    // Grandfather the backlog.
    let (code, _, stderr) = audit(&tmp.0, &["--update-baseline"]);
    assert_eq!(code, 0, "{stderr}");
    let baseline_path = tmp.0.join("audit-baseline.json");
    assert!(baseline_path.exists());

    // The JSON round-trips to the identical multiset and identical bytes.
    let text = fs::read_to_string(&baseline_path).expect("baseline readable");
    let parsed = Baseline::from_json(&text).expect("baseline parses");
    assert!(!parsed.entries.is_empty());
    assert_eq!(parsed.to_json(), text, "baseline serialization not stable");

    // Same tree, baseline applied: clean.
    let (code, stdout, _) = audit(&tmp.0, &["--deny-new"]);
    assert_eq!(
        code, 0,
        "grandfathered tree must pass --deny-new:\n{stdout}"
    );
    assert!(stdout.contains("clean"), "{stdout}");

    // Regress one new line; exactly that line fails, the backlog stays
    // grandfathered.
    let service = tmp.0.join("crates/sim/src/service.rs");
    let mut src = fs::read_to_string(&service).expect("readable");
    src.push_str("pub fn g(v: Option<u32>) -> u32 { v.expect(\"set\") }\n");
    fs::write(&service, src).expect("writable");
    let (code, stdout, _) = audit(&tmp.0, &["--deny-new"]);
    assert_eq!(code, 1, "regression must fail --deny-new:\n{stdout}");
    assert!(
        stdout.contains("crates/sim/src/service.rs:2:37: `.expect()`"),
        "{stdout}"
    );
    assert_eq!(
        stdout.matches("— 1 new finding(s)").count(),
        1,
        "only the regression may be new:\n{stdout}"
    );
}

#[test]
fn json_report_is_machine_readable_and_deny_new_composable() {
    let tmp = TempDir::new("json");
    seed_tree(&tmp.0);
    let json_path = tmp.0.join("report.json");
    let (code, stdout, _) = audit(
        &tmp.0,
        &[
            "--json",
            "--json-out",
            json_path.to_str().expect("utf-8 path"),
        ],
    );
    // Without --deny-new the exit code stays 0 even with findings.
    assert_eq!(code, 0);
    let on_disk = fs::read_to_string(&json_path).expect("json artifact written");
    assert_eq!(stdout, on_disk, "--json and --json-out must agree");
    for needle in [
        "\"rule\":\"hash-iter\"",
        "\"rule\":\"panic-path\"",
        "\"rule\":\"float-eq\"",
        "\"rule\":\"unsafe-safety\"",
        "\"rule\":\"forbid-unsafe\"",
        "\"status\":\"new\"",
        "\"status\":\"suppressed\"",
    ] {
        assert!(on_disk.contains(needle), "missing {needle} in:\n{on_disk}");
    }
}
