// line comment with ".unwrap()" and 'q' and // SAFETY: inside text
/* block /* nested block */ still one comment */
/// doc comment with `unsafe` in backticks
fn tricky<'a>(x: &'a f64) -> f64 {
    let s = "string with // not a comment and \" escaped quote";
    let r = r#"raw "string" with # and \ kept verbatim"#;
    let rr = r##"outer r#"inner"# hash levels"##;
    let b = b"byte string \x00";
    let br = br#"raw byte string"#;
    let c = 'x';
    let esc = '\n';
    let quote = '\'';
    let lt: &'static str = "lifetime, not a char";
    let f = 1.0e-3f64;
    let g = 2f32;
    let h = 0.5;
    let i = 0xFF_u32;
    let o = 0o77;
    let bin = 0b1010_1010u8;
    let range = 1..=3;
    let dots = 0..10;
    let shifted = 1u64 << 3 >> 1;
    let cmp = f == 0.001 && g != 3.0 || h <= 1.0;
    let arrow = |y: f64| -> f64 { y };
    let r#type = 7;
    let path = std::collections::HashMap::<u32, u32>::new();
    let _ = (s, r, rr, b, br, c, esc, quote, lt, i, o, bin, range, dots);
    let _ = (shifted, cmp, arrow(h), r#type, path);
    *x + f + f64::from(g)
}
