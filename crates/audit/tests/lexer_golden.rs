//! Golden-fixture coverage for the audit lexer: `fixtures/tricky.rs`
//! concentrates every construct the lexer must not misread (nested block
//! comments, raw strings, char-vs-lifetime, float suffix forms, multi-char
//! operators, raw identifiers), and the dump below pins the exact token
//! stream. Regenerate with `RAA_BLESS=1 cargo test -p raa-audit` after a
//! deliberate lexer change, then review the diff like any other golden.

use raa_audit::lexer::lex;
use std::path::PathBuf;

const FIXTURE: &str = include_str!("fixtures/tricky.rs");

fn dump(src: &str) -> String {
    let mut out = String::new();
    for t in lex(src) {
        out.push_str(&format!(
            "{}:{}\t{:?}\t{}\n",
            t.line,
            t.col,
            t.kind,
            t.text.escape_default()
        ));
    }
    out
}

#[test]
fn tricky_fixture_tokens_match_golden() {
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tricky.tokens.txt");
    let actual = dump(FIXTURE);
    if std::env::var_os("RAA_BLESS").is_some() {
        std::fs::write(&golden_path, &actual).expect("writing blessed golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden_path)
        .expect("golden token dump exists (RAA_BLESS=1 to create)");
    assert_eq!(
        actual, expected,
        "lexer token stream drifted from fixtures/tricky.tokens.txt; \
         rerun with RAA_BLESS=1 and review the diff if the change is deliberate"
    );
}

#[test]
fn strings_and_comments_are_opaque() {
    use raa_audit::lexer::TokKind;
    // The panic-looking and safety-looking text in the fixture lives only
    // inside comments and string literals — no Ident token may leak it.
    let idents: Vec<String> = lex(FIXTURE)
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect();
    assert!(!idents.iter().any(|t| t == "unwrap"));
    assert!(!idents.iter().any(|t| t == "SAFETY"));
    assert!(!idents.iter().any(|t| t == "nested"));
}

#[test]
fn char_vs_lifetime_disambiguation() {
    use raa_audit::lexer::TokKind;
    let toks = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let s = '\\''; }");
    let lifetimes: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    let chars: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a"]);
    assert_eq!(chars, ["'x'", "'\\''"]);
}

#[test]
fn positions_are_one_based_and_accurate() {
    let toks = lex("a\n  bb\n");
    assert_eq!((toks[0].line, toks[0].col), (1, 1));
    assert_eq!((toks[1].line, toks[1].col), (2, 3));
}
