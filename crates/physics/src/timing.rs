//! Derived QEC-cycle timing for the transversal architecture.
//!
//! The dominant timescales of the platform are atom movement and measurement
//! (§II.1). During a syndrome-extraction (SE) round each measure ancilla visits
//! its four neighbouring data qubits (Fig. 4a), so the gate segment of a cycle is
//! four ancilla hops of about one site each plus five entangling-gate layers —
//! roughly 400 µs with Table I numbers (§IV.2). Ancilla measurement (500 µs) is
//! pipelined with the moves for the next transversal gate, because moving a code
//! patch across one logical-qubit pitch also takes ≈500 µs at d = 27. The full
//! QEC cycle is therefore the gate segment plus the pipelined
//! measure/patch-move segment: ≈0.9 ms, matching the paper's ≈1 ms headline.

use crate::motion::move_time_sites;
use crate::params::PhysicalParams;

/// Number of data-qubit neighbours visited by a measure ancilla per SE round.
const SE_HOPS: u32 = 4;

/// Number of physical gate layers per SE round (4 CX layers + ancilla init/H).
const SE_GATE_LAYERS: u32 = 5;

/// Timing model for one QEC cycle of a distance-`d` patch under block moves.
///
/// # Example
///
/// ```
/// use raa_physics::{CycleModel, PhysicalParams};
///
/// let cycle = CycleModel::new(&PhysicalParams::default(), 27);
/// // Gate segment ~ 0.4 ms; patch move ~ 0.5 ms == measurement, so they pipeline.
/// assert!((cycle.gate_segment() - 0.4e-3).abs() < 0.1e-3);
/// assert!((cycle.patch_move_time() - 0.49e-3).abs() < 0.05e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    params: PhysicalParams,
    distance: u32,
}

impl CycleModel {
    /// Builds the cycle model for code distance `distance`.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero.
    pub fn new(params: &PhysicalParams, distance: u32) -> Self {
        assert!(distance >= 1, "code distance must be at least 1");
        Self {
            params: *params,
            distance,
        }
    }

    /// The physical parameters used by this model.
    pub fn params(&self) -> &PhysicalParams {
        &self.params
    }

    /// The code distance used by this model.
    pub fn distance(&self) -> u32 {
        self.distance
    }

    /// Duration of the gate segment of one SE round: four single-site ancilla
    /// hops plus the entangling-gate layers (≈400 µs with Table I values, §IV.2).
    pub fn gate_segment(&self) -> f64 {
        f64::from(SE_HOPS) * move_time_sites(&self.params, 1.0)
            + f64::from(SE_GATE_LAYERS) * self.params.gate_time
    }

    /// Time to move a code patch across one logical-qubit pitch (`d` sites).
    pub fn patch_move_time(&self) -> f64 {
        move_time_sites(&self.params, f64::from(self.distance))
    }

    /// Time to move a code patch across `pitches` logical-qubit pitches.
    pub fn patch_move_time_over(&self, pitches: f64) -> f64 {
        move_time_sites(&self.params, pitches * f64::from(self.distance))
    }

    /// Duration of one full QEC cycle: the gate segment followed by the
    /// measurement segment, where ancilla readout is pipelined with the patch
    /// move for the next transversal gate (§IV.2). The measurement segment is
    /// therefore `max(measure_time, patch_move_time)`.
    pub fn cycle_time(&self) -> f64 {
        self.gate_segment() + self.params.measure_time.max(self.patch_move_time())
    }

    /// Duration of one transversal logical gate step with `se_rounds` SE rounds
    /// per gate: the interleave move plus `se_rounds` QEC cycles. Transversal H
    /// and S (permutation/fold moves) are assumed to take the same time as
    /// entangling gates (§IV.1).
    pub fn transversal_step(&self, se_rounds: f64) -> f64 {
        assert!(
            se_rounds.is_finite() && se_rounds > 0.0,
            "SE rounds per gate must be positive, got {se_rounds}"
        );
        self.params.gate_time + se_rounds * self.cycle_time()
    }

    /// QEC cycle duration for an *idle* (storage) patch where no transversal
    /// gates are pending: gate segment plus bare measurement time.
    pub fn idle_cycle_time(&self) -> f64 {
        self.gate_segment() + self.params.measure_time
    }

    /// The reaction time: measurement plus decoding latency (§II.2).
    pub fn reaction_time(&self) -> f64 {
        self.params.reaction_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(d: u32) -> CycleModel {
        CycleModel::new(&PhysicalParams::default(), d)
    }

    #[test]
    fn gate_segment_near_400_us() {
        // §IV.2: "the gates in a QEC cycle taking around 400 us".
        let g = model(27).gate_segment();
        assert!((g - 400e-6).abs() < 50e-6, "gate segment = {g}");
    }

    #[test]
    fn patch_move_matches_measure_time_at_d27() {
        // §IV.2: patch move ~ 500 us == measurement time, enabling pipelining.
        let m = model(27);
        let ratio = m.patch_move_time() / m.params().measure_time;
        assert!((ratio - 1.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn cycle_time_near_1_ms() {
        let c = model(27).cycle_time();
        assert!(c > 0.8e-3 && c < 1.0e-3, "cycle = {c}");
    }

    #[test]
    fn faster_acceleration_shortens_cycle() {
        let fast = PhysicalParams::default().with_acceleration_scaled(4.0);
        assert!(CycleModel::new(&fast, 27).cycle_time() < model(27).cycle_time());
    }

    #[test]
    fn transversal_step_scales_with_rounds() {
        let m = model(27);
        let one = m.transversal_step(1.0);
        let two = m.transversal_step(2.0);
        assert!((two - one - m.cycle_time()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_distance_panics() {
        let _ = model(0);
    }

    proptest! {
        /// Cycle time grows (weakly) with code distance: larger patches mean
        /// longer interleave moves once they exceed the measurement time.
        #[test]
        fn cycle_monotone_in_distance(d in 3u32..80) {
            prop_assert!(model(d + 2).cycle_time() >= model(d).cycle_time() - 1e-12);
        }

        /// The idle cycle is never longer than the transversal-gate cycle.
        #[test]
        fn idle_cycle_not_longer(d in 3u32..80) {
            prop_assert!(model(d).idle_cycle_time() <= model(d).cycle_time() + 1e-15);
        }
    }
}
