//! Physical substrate model for dynamically-reconfigurable neutral atom arrays.
//!
//! This crate models the hardware layer of the transversal architecture of
//! Zhou et al., *Resource Analysis of Low-Overhead Transversal Architectures for
//! Reconfigurable Atom Arrays* (ISCA 2025):
//!
//! * [`params::PhysicalParams`] — the platform parameters of Table I (site spacing,
//!   effective acceleration, gate/measure/decode times, coherence time),
//! * [`motion`] — the atom-movement time law *t = 2·sqrt(L/a)* (Eq. 1) and
//!   block-move plans under AOD (acousto-optic deflector) constraints,
//! * [`geometry`] — the site grid, rectangular footprints and patch placement,
//! * [`timing`] — derived QEC-cycle timing: pipelined syndrome extraction,
//!   transversal-gate steps and the reaction time of the control system.
//!
//! # Example
//!
//! ```
//! use raa_physics::params::PhysicalParams;
//! use raa_physics::timing::CycleModel;
//!
//! let params = PhysicalParams::default(); // Table I
//! let cycle = CycleModel::new(&params, 27);
//! // A QEC cycle at d = 27 is of order 1 ms (the paper's headline assumption).
//! assert!(cycle.cycle_time() > 0.5e-3 && cycle.cycle_time() < 1.5e-3);
//! ```

#![forbid(unsafe_code)]

pub mod aod;
pub mod geometry;
pub mod motion;
pub mod params;
pub mod timing;
pub mod zones;

pub use aod::{validate as validate_aod_move, AodError, AodMove};
pub use geometry::{Footprint, Site};
pub use motion::{move_time, MovePlan, MoveSegment};
pub use params::PhysicalParams;
pub use timing::CycleModel;
pub use zones::{Zone, ZoneKind, ZoneLayout};
