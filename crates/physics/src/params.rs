//! Platform parameters for dynamically-reconfigurable neutral atom arrays (Table I).

use std::fmt;

/// Physical parameters of the neutral-atom platform, following Table I of the paper.
///
/// All times are in seconds and all lengths in metres. The defaults reproduce
/// Table I: site spacing 12 µm, effective acceleration 5500 m/s² (calibrated from
/// moving 55 µm in 200 µs), 1 µs entangling gates, 500 µs measurement, 500 µs
/// decoding latency and a 10 s idle coherence time (§IV.2).
///
/// # Example
///
/// ```
/// use raa_physics::params::PhysicalParams;
///
/// let p = PhysicalParams::default();
/// assert_eq!(p.site_spacing, 12e-6);
/// // Reaction time = measurement + decoding round trip (§II.2): 1 ms.
/// assert!((p.reaction_time() - 1e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalParams {
    /// Lattice spacing between neighbouring trap sites, in metres (Table I: 12 µm).
    pub site_spacing: f64,
    /// Effective acceleration/deceleration during atom moves, in m/s² (Table I: 5500).
    pub acceleration: f64,
    /// Duration of one physical (Rydberg) entangling gate layer, in seconds (Table I: 1 µs).
    pub gate_time: f64,
    /// Duration of a projective qubit measurement, in seconds (Table I: 500 µs).
    pub measure_time: f64,
    /// Classical decoding latency contributing to the reaction time, in seconds (Table I: 500 µs).
    pub decode_time: f64,
    /// Idle coherence time of a stored qubit, in seconds (§IV.2 assumes 10 s).
    pub coherence_time: f64,
}

impl Default for PhysicalParams {
    fn default() -> Self {
        Self {
            site_spacing: 12e-6,
            acceleration: 5500.0,
            gate_time: 1e-6,
            measure_time: 500e-6,
            decode_time: 500e-6,
            coherence_time: 10.0,
        }
    }
}

impl PhysicalParams {
    /// Creates the Table I parameter set (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Round-trip reaction time of the control system (§II.2): the time from a
    /// measurement to the next conditional quantum operation. Modelled as
    /// measurement plus decoding latency, giving the paper's assumed 1 ms.
    pub fn reaction_time(&self) -> f64 {
        self.measure_time + self.decode_time
    }

    /// Returns a copy with the acceleration rescaled by `factor` (Fig. 14a/b sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive and finite.
    pub fn with_acceleration_scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "acceleration scale factor must be positive and finite, got {factor}"
        );
        self.acceleration *= factor;
        self
    }

    /// Returns a copy with the given coherence time (Fig. 13b sweep).
    ///
    /// # Panics
    ///
    /// Panics if `coherence_time` is not strictly positive and finite.
    pub fn with_coherence_time(mut self, coherence_time: f64) -> Self {
        assert!(
            coherence_time.is_finite() && coherence_time > 0.0,
            "coherence time must be positive and finite, got {coherence_time}"
        );
        self.coherence_time = coherence_time;
        self
    }

    /// Returns a copy with the given measurement and decoding times, so that the
    /// reaction time becomes `measure + decode` (Fig. 14c sweep).
    ///
    /// # Panics
    ///
    /// Panics if either time is negative or non-finite.
    pub fn with_readout(mut self, measure_time: f64, decode_time: f64) -> Self {
        assert!(
            measure_time.is_finite() && measure_time > 0.0,
            "measure time must be positive and finite, got {measure_time}"
        );
        assert!(
            decode_time.is_finite() && decode_time >= 0.0,
            "decode time must be non-negative and finite, got {decode_time}"
        );
        self.measure_time = measure_time;
        self.decode_time = decode_time;
        self
    }
}

impl fmt::Display for PhysicalParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "site spacing {:.1} um, acceleration {:.0} m/s^2, gate {:.1} us, \
             measure {:.0} us, decode {:.0} us, coherence {:.1} s",
            self.site_spacing * 1e6,
            self.acceleration,
            self.gate_time * 1e6,
            self.measure_time * 1e6,
            self.decode_time * 1e6,
            self.coherence_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_defaults() {
        let p = PhysicalParams::default();
        assert_eq!(p.site_spacing, 12e-6);
        assert_eq!(p.acceleration, 5500.0);
        assert_eq!(p.gate_time, 1e-6);
        assert_eq!(p.measure_time, 500e-6);
        assert_eq!(p.decode_time, 500e-6);
        assert_eq!(p.coherence_time, 10.0);
    }

    #[test]
    fn reaction_time_is_one_millisecond() {
        let p = PhysicalParams::default();
        assert!((p.reaction_time() - 1.0e-3).abs() < 1e-15);
    }

    #[test]
    fn acceleration_rescale() {
        let p = PhysicalParams::default().with_acceleration_scaled(2.0);
        assert_eq!(p.acceleration, 11000.0);
    }

    #[test]
    fn readout_override_changes_reaction_time() {
        let p = PhysicalParams::default().with_readout(100e-6, 50e-6);
        assert!((p.reaction_time() - 150e-6).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_acceleration_scale_panics() {
        let _ = PhysicalParams::default().with_acceleration_scaled(0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!PhysicalParams::default().to_string().is_empty());
    }
}
