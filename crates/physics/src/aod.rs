//! AOD (acousto-optic deflector) move validity.
//!
//! A 2D AOD addresses a grid of tweezers with one set of row tones and one
//! set of column tones: during a move, every picked-up atom at row tone `i`
//! and column tone `j` travels to the intersection of the deflected tones.
//! The hardware constraint is that tones cannot cross — row order and column
//! order must be preserved — which is why the paper's layouts move *rigid
//! blocks* and interleave patches without reordering (its Fig. 8c is
//! explicitly chosen so that "no qubit re-ordering" is needed).
//!
//! [`AodMove`] captures one parallel pick-up-and-move; [`validate`] checks
//! the no-crossing constraint.

use crate::geometry::Site;
use std::collections::BTreeSet;
use std::fmt;

/// One parallel AOD move: a set of atoms picked up simultaneously, each with
/// a start and destination site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AodMove {
    transfers: Vec<(Site, Site)>,
}

/// Why an [`AodMove`] is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AodError {
    /// Two picked atoms share a row or column tone but end up reordered.
    OrderViolation {
        /// The two offending start sites.
        first: Site,
        second: Site,
    },
    /// Two atoms were picked from the same site or sent to the same site.
    Collision {
        /// The contested site.
        site: Site,
    },
    /// An atom's row (column) tone maps to two different destination rows
    /// (columns): a 2D AOD deflects whole tones, not individual traps.
    ToneConflict {
        /// True when the conflict is on a row tone, false for a column tone.
        row: bool,
        /// The shared source coordinate.
        coordinate: i64,
    },
}

impl fmt::Display for AodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AodError::OrderViolation { first, second } => {
                write!(
                    f,
                    "tone order violated between atoms at {first} and {second}"
                )
            }
            AodError::Collision { site } => write!(f, "site {site} used twice"),
            AodError::ToneConflict { row, coordinate } => write!(
                f,
                "{} tone at {coordinate} deflected to two destinations",
                if *row { "row" } else { "column" }
            ),
        }
    }
}

impl std::error::Error for AodError {}

impl AodMove {
    /// An empty move.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one atom transfer from `from` to `to`.
    pub fn transfer(&mut self, from: Site, to: Site) -> &mut Self {
        self.transfers.push((from, to));
        self
    }

    /// Number of atoms moved in parallel.
    pub fn len(&self) -> usize {
        self.transfers.len()
    }

    /// Whether no atoms are moved.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// The transfers.
    pub fn transfers(&self) -> &[(Site, Site)] {
        &self.transfers
    }

    /// A rigid translation of `sites` by `(dx, dy)` — always valid.
    pub fn rigid<I: IntoIterator<Item = Site>>(sites: I, dx: i64, dy: i64) -> Self {
        let mut mv = Self::new();
        for s in sites {
            mv.transfer(s, Site::new(s.x + dx, s.y + dy));
        }
        mv
    }

    /// The longest single-atom displacement, in sites (sets the move time).
    pub fn max_displacement(&self) -> f64 {
        self.transfers
            .iter()
            .map(|(a, b)| a.distance(*b))
            .fold(0.0, f64::max)
    }
}

/// Checks the AOD no-crossing constraints.
///
/// # Errors
///
/// Returns the first violation found: duplicate pick-up/drop-off sites,
/// inconsistent tone deflections, or order-crossing rows/columns.
pub fn validate(mv: &AodMove) -> Result<(), AodError> {
    let mut starts = BTreeSet::new();
    let mut ends = BTreeSet::new();
    for (from, to) in mv.transfers() {
        if !starts.insert(*from) {
            return Err(AodError::Collision { site: *from });
        }
        if !ends.insert(*to) {
            return Err(AodError::Collision { site: *to });
        }
    }
    // Each source row tone must map to a single destination row; same for
    // columns.
    let mut row_map = std::collections::BTreeMap::new();
    let mut col_map = std::collections::BTreeMap::new();
    for (from, to) in mv.transfers() {
        if *row_map.entry(from.y).or_insert(to.y) != to.y {
            return Err(AodError::ToneConflict {
                row: true,
                coordinate: from.y,
            });
        }
        if *col_map.entry(from.x).or_insert(to.x) != to.x {
            return Err(AodError::ToneConflict {
                row: false,
                coordinate: from.x,
            });
        }
    }
    // Tone order preservation: the row map and column map must be monotone.
    let check_monotone = |map: &std::collections::BTreeMap<i64, i64>, row: bool| {
        let mut prev: Option<(i64, i64)> = None;
        for (&src, &dst) in map {
            if let Some((psrc, pdst)) = prev {
                if dst <= pdst {
                    return Err(AodError::OrderViolation {
                        first: if row {
                            Site::new(0, psrc)
                        } else {
                            Site::new(psrc, 0)
                        },
                        second: if row {
                            Site::new(0, src)
                        } else {
                            Site::new(src, 0)
                        },
                    });
                }
            }
            prev = Some((src, dst));
        }
        Ok(())
    };
    check_monotone(&row_map, true)?;
    check_monotone(&col_map, false)?;
    Ok(())
}

/// Plans the patch-interleaving move for a transversal gate (Fig. 3b): picks
/// up the `d × d` data grid at `from` (sites at pitch `pitch`) and overlays
/// it onto the patch at `to`, offset by half a site so the two grids
/// interleave. The result is a rigid move, hence always AOD-valid.
pub fn interleave_patches(from: Site, to: Site, d: u32, pitch: i64) -> AodMove {
    let sites = (0..d as i64).flat_map(move |r| {
        (0..d as i64).map(move |c| Site::new(from.x + c * pitch, from.y + r * pitch))
    });
    AodMove::rigid(sites, to.x - from.x, to.y - from.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rigid_moves_are_valid() {
        let sites = (0..5).map(|i| Site::new(i, 2 * i));
        let mv = AodMove::rigid(sites, 7, -3);
        assert_eq!(mv.len(), 5);
        assert!(validate(&mv).is_ok());
    }

    #[test]
    fn interleave_move_is_valid_and_sized() {
        let mv = interleave_patches(Site::new(0, 0), Site::new(27, 0), 27, 1);
        assert_eq!(mv.len(), 27 * 27);
        assert!(validate(&mv).is_ok());
        assert!((mv.max_displacement() - 27.0).abs() < 1e-9);
    }

    #[test]
    fn crossing_columns_rejected() {
        let mut mv = AodMove::new();
        mv.transfer(Site::new(0, 0), Site::new(5, 0));
        mv.transfer(Site::new(1, 0), Site::new(4, 0)); // crosses the first
        match validate(&mv) {
            Err(AodError::OrderViolation { .. }) => {}
            other => panic!("expected order violation, got {other:?}"),
        }
    }

    #[test]
    fn tone_conflict_rejected() {
        let mut mv = AodMove::new();
        // Same source row y=0 deflected to two different rows.
        mv.transfer(Site::new(0, 0), Site::new(0, 1));
        mv.transfer(Site::new(1, 0), Site::new(1, 2));
        match validate(&mv) {
            Err(AodError::ToneConflict { row: true, .. }) => {}
            other => panic!("expected row tone conflict, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_destination_rejected() {
        let mut mv = AodMove::new();
        mv.transfer(Site::new(0, 0), Site::new(2, 2));
        mv.transfer(Site::new(1, 1), Site::new(2, 2));
        match validate(&mv) {
            Err(AodError::Collision { site }) => assert_eq!(site, Site::new(2, 2)),
            other => panic!("expected collision, got {other:?}"),
        }
    }

    #[test]
    fn error_display_nonempty() {
        let e = AodError::Collision {
            site: Site::new(1, 2),
        };
        assert!(!e.to_string().is_empty());
    }

    proptest! {
        /// Any rigid translation of any site set is valid.
        #[test]
        fn rigid_always_valid(
            xs in proptest::collection::btree_set((0i64..30, 0i64..30), 1..40),
            dx in -50i64..50,
            dy in -50i64..50,
        ) {
            let sites: Vec<Site> = xs.into_iter().map(|(x, y)| Site::new(x, y)).collect();
            let mv = AodMove::rigid(sites, dx, dy);
            prop_assert!(validate(&mv).is_ok());
        }

        /// Column-uniform stretches (monotone re-pitching) are valid.
        #[test]
        fn monotone_stretch_valid(n in 2i64..12, factor in 2i64..4) {
            let mut mv = AodMove::new();
            for i in 0..n {
                mv.transfer(Site::new(i, 0), Site::new(i * factor, 0));
            }
            prop_assert!(validate(&mv).is_ok());
        }
    }
}
