//! Zoned array layout: storage, compute (entangling), and readout regions.
//!
//! The paper's architecture (Fig. 3b, Fig. 5c,d) organizes the array into
//! functional regions — dense idle storage, gate zones where patches
//! interleave, measurement regions — with atoms shuttled between them. This
//! module provides the bookkeeping: named rectangular zones on the site
//! grid, capacity accounting at a per-zone atom density, and inter-zone
//! transit times under the Eq. (1) movement law.

use crate::geometry::{Footprint, Site};
use crate::motion::move_time;
use crate::params::PhysicalParams;
use std::fmt;

/// The functional role of a zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZoneKind {
    /// Dense idle storage (data-only packing, ~1 atom per site).
    Storage,
    /// Entangling/compute region (patches with interleaved ancillas).
    Compute,
    /// Readout region (camera field of view).
    Readout,
}

/// A rectangular zone of the array.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    /// Human-readable name ("factory-row", "ghz-lane", ...).
    pub name: String,
    /// Role of this zone.
    pub kind: ZoneKind,
    /// Lower-left corner, in sites.
    pub origin: Site,
    /// Extent in sites.
    pub footprint: Footprint,
    /// Atoms per site this zone packs (storage ≈ 1, compute ≈ 2 with
    /// interleaved ancillas).
    pub atoms_per_site: f64,
}

impl Zone {
    /// Creates a zone.
    ///
    /// # Panics
    ///
    /// Panics if `atoms_per_site` is not positive and finite.
    pub fn new(
        name: &str,
        kind: ZoneKind,
        origin: Site,
        footprint: Footprint,
        atoms_per_site: f64,
    ) -> Self {
        assert!(
            atoms_per_site.is_finite() && atoms_per_site > 0.0,
            "atom density must be positive"
        );
        Self {
            name: name.to_string(),
            kind,
            origin,
            footprint,
            atoms_per_site,
        }
    }

    /// Atom capacity of the zone.
    pub fn capacity(&self) -> f64 {
        self.footprint.area() as f64 * self.atoms_per_site
    }

    /// Centre of the zone, in (fractional) sites.
    pub fn centre(&self) -> (f64, f64) {
        (
            self.origin.x as f64 + self.footprint.width as f64 / 2.0,
            self.origin.y as f64 + self.footprint.height as f64 / 2.0,
        )
    }

    /// Whether `site` lies inside the zone.
    pub fn contains(&self, site: Site) -> bool {
        site.x >= self.origin.x
            && site.y >= self.origin.y
            && site.x < self.origin.x + self.footprint.width as i64
            && site.y < self.origin.y + self.footprint.height as i64
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:?}] at {} size {} ({} atoms)",
            self.name,
            self.kind,
            self.origin,
            self.footprint,
            self.capacity()
        )
    }
}

/// A zoned array layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneLayout {
    zones: Vec<Zone>,
}

impl ZoneLayout {
    /// An empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a zone, rejecting overlaps with existing zones.
    ///
    /// # Panics
    ///
    /// Panics if the new zone overlaps an existing one.
    pub fn add(&mut self, zone: Zone) -> &mut Self {
        for existing in &self.zones {
            let overlap_x = zone.origin.x < existing.origin.x + existing.footprint.width as i64
                && existing.origin.x < zone.origin.x + zone.footprint.width as i64;
            let overlap_y = zone.origin.y < existing.origin.y + existing.footprint.height as i64
                && existing.origin.y < zone.origin.y + zone.footprint.height as i64;
            assert!(
                !(overlap_x && overlap_y),
                "zone {} overlaps zone {}",
                zone.name,
                existing.name
            );
        }
        self.zones.push(zone);
        self
    }

    /// Looks up a zone by name.
    pub fn zone(&self, name: &str) -> Option<&Zone> {
        self.zones.iter().find(|z| z.name == name)
    }

    /// All zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Total atom capacity.
    pub fn total_capacity(&self) -> f64 {
        self.zones.iter().map(Zone::capacity).sum()
    }

    /// Bounding-box footprint of the whole layout.
    pub fn bounding_box(&self) -> Footprint {
        if self.zones.is_empty() {
            return Footprint::new(0, 0);
        }
        let min_x = self
            .zones
            .iter()
            .map(|z| z.origin.x)
            .min()
            .expect("nonempty");
        let min_y = self
            .zones
            .iter()
            .map(|z| z.origin.y)
            .min()
            .expect("nonempty");
        let max_x = self
            .zones
            .iter()
            .map(|z| z.origin.x + z.footprint.width as i64)
            .max()
            .expect("nonempty");
        let max_y = self
            .zones
            .iter()
            .map(|z| z.origin.y + z.footprint.height as i64)
            .max()
            .expect("nonempty");
        Footprint::new((max_x - min_x) as u64, (max_y - min_y) as u64)
    }

    /// Centre-to-centre transit time between two named zones under Eq. (1).
    ///
    /// # Panics
    ///
    /// Panics if either name is unknown.
    pub fn transit_time(&self, params: &PhysicalParams, from: &str, to: &str) -> f64 {
        let a = self
            .zone(from)
            .unwrap_or_else(|| panic!("unknown zone {from}"));
        let b = self.zone(to).unwrap_or_else(|| panic!("unknown zone {to}"));
        let (ax, ay) = a.centre();
        let (bx, by) = b.centre();
        let dist_sites = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        move_time(params, dist_sites * params.site_spacing)
    }
}

/// The paper-style factoring layout at distance `d`: a storage band, a
/// compute band (registers + adder blocks + GHZ lane) and a factory row
/// (Fig. 5c,d schematically).
pub fn factoring_layout(d: u32) -> ZoneLayout {
    let d64 = u64::from(d);
    let mut layout = ZoneLayout::new();
    layout.add(Zone::new(
        "storage",
        ZoneKind::Storage,
        Site::new(0, 0),
        Footprint::new(80 * d64, 10 * d64),
        1.0,
    ));
    layout.add(Zone::new(
        "compute",
        ZoneKind::Compute,
        Site::new(0, 10 * d64 as i64),
        Footprint::new(80 * d64, 20 * d64),
        2.0,
    ));
    layout.add(Zone::new(
        "factories",
        ZoneKind::Compute,
        Site::new(0, 30 * d64 as i64),
        Footprint::new(80 * d64, 8 * d64),
        2.0,
    ));
    layout.add(Zone::new(
        "readout",
        ZoneKind::Readout,
        Site::new(0, 38 * d64 as i64),
        Footprint::new(80 * d64, 4 * d64),
        1.0,
    ));
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_lookup() {
        let layout = factoring_layout(27);
        assert_eq!(layout.zones().len(), 4);
        let storage = layout.zone("storage").expect("exists");
        assert_eq!(storage.kind, ZoneKind::Storage);
        assert!(storage.capacity() > 0.0);
        assert!(layout.zone("nope").is_none());
        assert!(layout.total_capacity() > storage.capacity());
    }

    #[test]
    fn zone_containment() {
        let z = Zone::new(
            "z",
            ZoneKind::Compute,
            Site::new(10, 10),
            Footprint::new(5, 5),
            2.0,
        );
        assert!(z.contains(Site::new(10, 10)));
        assert!(z.contains(Site::new(14, 14)));
        assert!(!z.contains(Site::new(15, 10)));
        assert!(!z.contains(Site::new(9, 10)));
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_zones_rejected() {
        let mut layout = ZoneLayout::new();
        layout.add(Zone::new(
            "a",
            ZoneKind::Storage,
            Site::new(0, 0),
            Footprint::new(10, 10),
            1.0,
        ));
        layout.add(Zone::new(
            "b",
            ZoneKind::Compute,
            Site::new(5, 5),
            Footprint::new(10, 10),
            2.0,
        ));
    }

    #[test]
    fn transit_time_scales_with_distance() {
        let layout = factoring_layout(27);
        let p = PhysicalParams::default();
        let near = layout.transit_time(&p, "storage", "compute");
        let far = layout.transit_time(&p, "storage", "readout");
        assert!(far > near, "far {far} vs near {near}");
        // Transit across a ~30d band at d = 27 is of millisecond order.
        assert!(far > 0.5e-3 && far < 10e-3, "far = {far}");
    }

    #[test]
    fn bounding_box_covers_all() {
        let layout = factoring_layout(27);
        let bb = layout.bounding_box();
        assert_eq!(bb.width, 80 * 27);
        assert_eq!(bb.height, 42 * 27);
        assert_eq!(ZoneLayout::new().bounding_box(), Footprint::new(0, 0));
    }
}
