//! Site-grid geometry: lattice coordinates, rectangular footprints and patch placement.
//!
//! All coordinates are in units of the lattice site spacing (Table I: 12 µm).
//! A distance-`d` surface-code patch occupies a `d × d` block of sites (data
//! qubits at unit pitch with syndrome ancillas interleaved at sub-site offsets),
//! so the physical linear size of a patch is `d` sites — consistent with the
//! paper's statement that moving a patch "across the distance of a logical
//! qubit" is a `d`-site move.

use std::fmt;
use std::ops::{Add, Sub};

/// A lattice site, in units of the site spacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Site {
    /// Column index.
    pub x: i64,
    /// Row index.
    pub y: i64,
}

impl Site {
    /// Creates a site at `(x, y)`.
    pub fn new(x: i64, y: i64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in sites.
    pub fn distance(&self, other: Site) -> f64 {
        ((self.x - other.x) as f64).hypot((self.y - other.y) as f64)
    }

    /// Manhattan distance to `other`, in sites.
    pub fn manhattan(&self, other: Site) -> i64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Site {
    type Output = Site;
    fn add(self, rhs: Site) -> Site {
        Site::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Site {
    type Output = Site;
    fn sub(self, rhs: Site) -> Site {
        Site::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl From<(i64, i64)> for Site {
    fn from((x, y): (i64, i64)) -> Self {
        Site::new(x, y)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangular footprint on the site grid.
///
/// Footprints measure the space cost of gadgets in sites; multiply by the
/// atoms-per-site density of the relevant zone to get physical qubit counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Footprint {
    /// Width in sites.
    pub width: u64,
    /// Height in sites.
    pub height: u64,
}

impl Footprint {
    /// Creates a `width × height` footprint.
    pub fn new(width: u64, height: u64) -> Self {
        Self { width, height }
    }

    /// Total area in sites.
    pub fn area(&self) -> u64 {
        self.width * self.height
    }

    /// Footprint of a single distance-`d` surface-code patch (`d × d` sites).
    pub fn patch(distance: u32) -> Self {
        let d = u64::from(distance);
        Self::new(d, d)
    }

    /// A horizontal row of `n` distance-`d` patches.
    pub fn patch_row(distance: u32, n: u64) -> Self {
        let d = u64::from(distance);
        Self::new(d * n, d)
    }

    /// Stacks `self` on top of `other` (heights add, width is the maximum).
    pub fn stack_vertical(&self, other: Footprint) -> Footprint {
        Footprint::new(self.width.max(other.width), self.height + other.height)
    }

    /// Places `self` beside `other` (widths add, height is the maximum).
    pub fn stack_horizontal(&self, other: Footprint) -> Footprint {
        Footprint::new(self.width + other.width, self.height.max(other.height))
    }

    /// The longest straight-line hop inside this footprint, in sites
    /// (the diagonal), bounding worst-case intra-gadget move times.
    pub fn diagonal_sites(&self) -> f64 {
        (self.width as f64).hypot(self.height as f64)
    }
}

impl fmt::Display for Footprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} sites", self.width, self.height)
    }
}

/// Number of physical atoms in one distance-`d` rotated surface-code patch:
/// `d²` data qubits plus `d² − 1` syndrome ancillas (§II.3).
pub fn atoms_per_patch(distance: u32) -> u64 {
    let d = u64::from(distance);
    2 * d * d - 1
}

/// Number of physical atoms for `n` logical qubits at distance `d`.
pub fn atoms_for_patches(distance: u32, n: u64) -> u64 {
    atoms_per_patch(distance) * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn site_arithmetic() {
        let a = Site::new(1, 2);
        let b = Site::new(4, 6);
        assert_eq!(a + b, Site::new(5, 8));
        assert_eq!(b - a, Site::new(3, 4));
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.manhattan(b), 7);
        assert_eq!(Site::from((3, 4)), Site::new(3, 4));
    }

    #[test]
    fn patch_footprint_and_atoms() {
        let fp = Footprint::patch(27);
        assert_eq!(fp.area(), 27 * 27);
        // d^2 data + d^2 - 1 ancilla
        assert_eq!(atoms_per_patch(27), 2 * 27 * 27 - 1);
        assert_eq!(atoms_for_patches(3, 10), 170);
    }

    #[test]
    fn stacking() {
        let a = Footprint::new(12, 3);
        let b = Footprint::new(12, 1);
        let stacked = a.stack_vertical(b);
        assert_eq!(stacked, Footprint::new(12, 4));
        let side = a.stack_horizontal(b);
        assert_eq!(side, Footprint::new(24, 3));
    }

    #[test]
    fn patch_row_scales_width() {
        assert_eq!(Footprint::patch_row(27, 12), Footprint::new(324, 27));
    }

    #[test]
    fn display_nonempty() {
        assert!(!Site::new(0, 0).to_string().is_empty());
        assert!(!Footprint::new(1, 1).to_string().is_empty());
    }

    proptest! {
        /// Triangle inequality for site distances.
        #[test]
        fn triangle_inequality(ax in -100i64..100, ay in -100i64..100,
                               bx in -100i64..100, by in -100i64..100,
                               cx in -100i64..100, cy in -100i64..100) {
            let (a, b, c) = (Site::new(ax, ay), Site::new(bx, by), Site::new(cx, cy));
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        /// Stacking preserves total area at equal widths/heights.
        #[test]
        fn vertical_stack_area(w in 1u64..100, h1 in 1u64..100, h2 in 1u64..100) {
            let s = Footprint::new(w, h1).stack_vertical(Footprint::new(w, h2));
            prop_assert_eq!(s.area(), w * (h1 + h2));
        }

        /// Atom counts are strictly increasing in distance.
        #[test]
        fn atoms_monotone_in_distance(d in 3u32..60) {
            prop_assert!(atoms_per_patch(d + 2) > atoms_per_patch(d));
        }
    }
}
