//! Atom-movement time model and AOD block-move plans.
//!
//! The time to move an atom a distance `L` while maintaining constant thermal
//! excitation is (Eq. 1 of the paper)
//!
//! ```text
//! t = 2 * sqrt(L / a)
//! ```
//!
//! where `a` is the effective acceleration during the first half and effective
//! deceleration during the second half of the trajectory. A constant-jerk
//! schedule has the same scaling; the Table I acceleration is calibrated from
//! measured move data (55 µm in 200 µs), so the law is accurate for that
//! schedule too (paper footnote [42]).

use crate::geometry::Site;
use crate::params::PhysicalParams;

/// Time in seconds to move an atom a distance of `distance` metres (Eq. 1).
///
/// Returns `0.0` for a zero-length move.
///
/// # Panics
///
/// Panics if `distance` is negative or non-finite, or if the acceleration in
/// `params` is not strictly positive.
///
/// # Example
///
/// ```
/// use raa_physics::{move_time, PhysicalParams};
///
/// let p = PhysicalParams::default();
/// // The calibration point: 55 um in ~200 us.
/// let t = move_time(&p, 55e-6);
/// assert!((t - 200e-6).abs() < 1e-6);
/// ```
pub fn move_time(params: &PhysicalParams, distance: f64) -> f64 {
    assert!(
        distance.is_finite() && distance >= 0.0,
        "move distance must be non-negative and finite, got {distance}"
    );
    assert!(
        params.acceleration > 0.0,
        "acceleration must be positive, got {}",
        params.acceleration
    );
    2.0 * (distance / params.acceleration).sqrt()
}

/// Time in seconds to move across `sites` lattice sites.
pub fn move_time_sites(params: &PhysicalParams, sites: f64) -> f64 {
    assert!(
        sites.is_finite() && sites >= 0.0,
        "site count must be non-negative and finite, got {sites}"
    );
    move_time(params, sites * params.site_spacing)
}

/// One rigid translation of a block of atoms picked up by the AOD tweezers.
///
/// AOD constraints are modelled as rigid translations: every atom in the block
/// moves by the same displacement, so rows and columns cannot cross. The move
/// time depends only on the Euclidean displacement length (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveSegment {
    /// Displacement in lattice sites along x.
    pub dx: f64,
    /// Displacement in lattice sites along y.
    pub dy: f64,
}

impl MoveSegment {
    /// Creates a move by `(dx, dy)` lattice sites.
    pub fn new(dx: f64, dy: f64) -> Self {
        Self { dx, dy }
    }

    /// Euclidean length of the displacement in lattice sites.
    pub fn length_sites(&self) -> f64 {
        self.dx.hypot(self.dy)
    }

    /// Duration of this segment under Eq. (1).
    pub fn duration(&self, params: &PhysicalParams) -> f64 {
        move_time_sites(params, self.length_sites())
    }
}

/// A sequence of rigid block moves executed one after another.
///
/// Segments are executed sequentially (a single AOD can only perform one
/// translation at a time); the plan duration is the sum of segment durations.
/// Use one plan per parallel AOD channel.
///
/// # Example
///
/// ```
/// use raa_physics::{MovePlan, MoveSegment, PhysicalParams};
///
/// let p = PhysicalParams::default();
/// let mut plan = MovePlan::new();
/// plan.push(MoveSegment::new(1.0, 0.0));
/// plan.push(MoveSegment::new(0.0, 1.0));
/// assert!(plan.duration(&p) > 0.0);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MovePlan {
    segments: Vec<MoveSegment>,
}

impl MovePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment to the plan.
    pub fn push(&mut self, segment: MoveSegment) -> &mut Self {
        self.segments.push(segment);
        self
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the plan has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterates over the segments in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, MoveSegment> {
        self.segments.iter()
    }

    /// Total duration of the plan: the sum of Eq. (1) times over segments.
    pub fn duration(&self, params: &PhysicalParams) -> f64 {
        self.segments.iter().map(|s| s.duration(params)).sum()
    }

    /// Total path length in lattice sites.
    pub fn length_sites(&self) -> f64 {
        self.segments.iter().map(|s| s.length_sites()).sum()
    }

    /// Net displacement of the block after all segments, in lattice sites.
    pub fn net_displacement(&self) -> (f64, f64) {
        self.segments
            .iter()
            .fold((0.0, 0.0), |(x, y), s| (x + s.dx, y + s.dy))
    }

    /// The plan that interleaves two logical patches for a transversal gate:
    /// pick up one patch and overlay it onto the other, a move of `d` sites
    /// (one logical-patch pitch), then return it afterwards.
    ///
    /// The paper's §IV.2 notes this takes ≈500 µs at d = 27, matching the
    /// measurement time so the two pipeline.
    pub fn patch_overlay(distance_sites: u32) -> Self {
        let mut plan = Self::new();
        plan.push(MoveSegment::new(f64::from(distance_sites), 0.0));
        plan
    }
}

impl FromIterator<MoveSegment> for MovePlan {
    fn from_iter<I: IntoIterator<Item = MoveSegment>>(iter: I) -> Self {
        Self {
            segments: iter.into_iter().collect(),
        }
    }
}

impl Extend<MoveSegment> for MovePlan {
    fn extend<I: IntoIterator<Item = MoveSegment>>(&mut self, iter: I) {
        self.segments.extend(iter);
    }
}

/// Plans a rigid move between two sites, as a single diagonal segment.
pub fn plan_between(from: Site, to: Site) -> MovePlan {
    let mut plan = MovePlan::new();
    let (dx, dy) = (to.x - from.x, to.y - from.y);
    if dx != 0 || dy != 0 {
        plan.push(MoveSegment::new(dx as f64, dy as f64));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p() -> PhysicalParams {
        PhysicalParams::default()
    }

    #[test]
    fn eq1_matches_calibration_point() {
        // Table I caption: acceleration calibrated from moving 55 um in 200 us.
        let t = move_time(&p(), 55e-6);
        assert!((t - 200e-6).abs() / 200e-6 < 0.01, "t = {t}");
    }

    #[test]
    fn patch_move_at_d27_is_about_500_us() {
        // §IV.2: moving a code patch across a logical qubit (27 sites) ~ 500 us.
        let t = move_time_sites(&p(), 27.0);
        assert!((t - 485e-6).abs() < 10e-6, "t = {t}");
    }

    #[test]
    fn zero_distance_is_instant() {
        assert_eq!(move_time(&p(), 0.0), 0.0);
    }

    #[test]
    fn plan_duration_is_sum_of_segments() {
        let mut plan = MovePlan::new();
        plan.push(MoveSegment::new(3.0, 4.0));
        plan.push(MoveSegment::new(0.0, 2.0));
        let d = plan.duration(&p());
        let expect = move_time_sites(&p(), 5.0) + move_time_sites(&p(), 2.0);
        assert!((d - expect).abs() < 1e-12);
        assert_eq!(plan.net_displacement(), (3.0, 6.0));
    }

    #[test]
    fn plan_between_sites() {
        let plan = plan_between(Site::new(0, 0), Site::new(3, 4));
        assert_eq!(plan.len(), 1);
        assert!((plan.length_sites() - 5.0).abs() < 1e-12);
        assert!(plan_between(Site::new(1, 1), Site::new(1, 1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_distance_panics() {
        let _ = move_time(&p(), -1.0);
    }

    proptest! {
        /// Eq. (1) is monotone in distance: longer moves never take less time.
        #[test]
        fn move_time_is_monotone(a in 1e-7f64..1e-2, b in 1e-7f64..1e-2) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(move_time(&p(), lo) <= move_time(&p(), hi));
        }

        /// sqrt concavity: one long move is faster than two moves of half the
        /// distance (favouring layouts with few long hops over many short ones,
        /// but the paper keeps moves short to bound the *per-step* latency).
        #[test]
        fn single_move_beats_split_move(dist in 1e-6f64..1e-3) {
            let whole = move_time(&p(), dist);
            let halves = 2.0 * move_time(&p(), dist / 2.0);
            prop_assert!(whole <= halves + 1e-15);
        }

        /// Doubling acceleration reduces the move time by sqrt(2).
        #[test]
        fn acceleration_scaling(dist in 1e-6f64..1e-3) {
            let fast = PhysicalParams::default().with_acceleration_scaled(2.0);
            let ratio = move_time(&p(), dist) / move_time(&fast, dist);
            prop_assert!((ratio - 2f64.sqrt()).abs() < 1e-9);
        }
    }
}
