//! Declarative experiment specifications and sweep grids.
//!
//! An [`ExperimentSpec`] pins down *everything* a circuit-level Monte-Carlo
//! experiment needs — scenario, distance, basis, noise, decoder, shot budget
//! and seed — so that running it is a pure function of the spec (see
//! [`crate::engine::run`]). A [`SweepGrid`] expands a cartesian product of
//! distances × physical error rates × (optionally) CNOTs-per-round ×
//! decoders into such specs with per-point derived seeds.

use raa_decode::McConfig;
use raa_factory::FactoryProtocol;
use raa_gadgets::GadgetKind;
use raa_surface::{Basis, NoiseModel};

/// How many syndrome-extraction rounds a memory experiment runs.
///
/// Sweeps over distance usually want the rounds to scale with `d` (the
/// paper's memory figures use a fixed multiple), so the count is resolved
/// per spec point rather than fixed at grid construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounds {
    /// Exactly this many rounds at every distance.
    Fixed(usize),
    /// `factor × d` rounds at distance `d`.
    TimesDistance(usize),
}

impl Rounds {
    /// The round count at code distance `distance`.
    ///
    /// # Panics
    ///
    /// Panics if the resolved count is zero.
    pub fn resolve(&self, distance: u32) -> usize {
        let rounds = match *self {
            Rounds::Fixed(n) => n,
            Rounds::TimesDistance(k) => k * distance as usize,
        };
        assert!(rounds >= 1, "need at least one SE round");
        rounds
    }
}

/// The family of circuit the experiment builds and decodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// One idling patch: `rounds` SE rounds, then destructive readout.
    Memory {
        /// SE rounds, possibly distance-dependent.
        rounds: Rounds,
    },
    /// A deep logical CNOT circuit between `patches` patches with
    /// `cnots_per_round` transversal gates per SE round (the paper's `x`),
    /// random gate directions drawn from the spec seed.
    TransversalCnot {
        /// Number of patches (≥ 2).
        patches: usize,
        /// Total transversal CNOTs.
        depth: usize,
        /// CNOTs per SE round (the paper's `x`).
        cnots_per_round: f64,
    },
    /// Measurement-based logical GHZ preparation over `targets` branches
    /// (the CNOT fan-out primitive of paper §III.8).
    GhzFanout {
        /// Number of GHZ branches (≥ 2).
        targets: usize,
    },
    /// Deep algorithm-style workload: `rounds` SE rounds (typically
    /// [`Rounds::TimesDistance`] with a large factor — the deep-circuit
    /// regime windowed/streaming decoding exists for) over `patches`
    /// patches with `cnots_per_round` transversal CNOTs interleaved per
    /// round. The round count is the knob; the CNOT depth is derived from
    /// it. Detectors come out in uniform layers of `patches × (d² − 1)`
    /// per round, so windowed and streaming decoding apply.
    DeepCnot {
        /// Number of patches (≥ 2).
        patches: usize,
        /// Total SE rounds (≥ 2), possibly distance-dependent.
        rounds: Rounds,
        /// Transversal CNOTs per SE round (the paper's `x`).
        cnots_per_round: f64,
    },
    /// The Clifford skeleton of a magic-state factory (paper §III.6): the
    /// protocol's deterministic transversal-CNOT network cycled one layer
    /// per SE round over [`raa_factory::FactoryProtocol::patches`] patches.
    /// Detectors come out in uniform layers of `patches × (d² − 1)` per
    /// round, so windowed and streaming decoding apply.
    ///
    /// ```
    /// use raa_sim::{FactoryProtocol, Rounds, Scenario};
    ///
    /// let s = Scenario::MagicFactory {
    ///     protocol: FactoryProtocol::Distill15,
    ///     rounds: Rounds::Fixed(4),
    /// };
    /// assert_eq!(s.label(), "factory_distill15");
    /// assert_eq!(s.detectors_per_layer(3), Some(15 * 8));
    /// ```
    MagicFactory {
        /// Which factory protocol's CNOT schedule to run.
        protocol: FactoryProtocol,
        /// Total SE rounds (≥ 1), possibly distance-dependent.
        rounds: Rounds,
    },
    /// The Clifford skeleton of an arithmetic gadget (paper §III.5–III.8):
    /// the gadget's transversal-CNOT frame at register width `width`,
    /// cycled one layer per SE round over
    /// [`raa_gadgets::GadgetKind::patches`] patches. Uniformly layered like
    /// [`Scenario::MagicFactory`], so arbitrary depths stream.
    ///
    /// ```
    /// use raa_sim::{GadgetKind, Rounds, Scenario};
    ///
    /// let s = Scenario::Gadget {
    ///     kind: GadgetKind::Adder,
    ///     width: 4,
    ///     rounds: Rounds::Fixed(8),
    /// };
    /// assert_eq!(s.label(), "gadget_adder");
    /// assert_eq!(s.detectors_per_layer(3), Some(9 * 8));
    /// ```
    Gadget {
        /// Which gadget's CNOT schedule to run.
        kind: GadgetKind,
        /// Register width (bit positions for the adder, patches for
        /// lookup/fan-out).
        width: usize,
        /// Total SE rounds (≥ 1), possibly distance-dependent.
        rounds: Rounds,
    },
    /// Circuit-level memory on the [[8,3,2]] cube code behind the 8T-to-CCZ
    /// factory ([`raa_surface::Code832MemoryExperiment`], pinned against the
    /// PR 2 golden DEM). The block is a fixed code: the spec's `distance`
    /// must be 2 (its code distance), and detectors come in uniform layers
    /// of four (one per Z stabilizer) per round.
    ///
    /// ```
    /// use raa_sim::{Rounds, Scenario};
    ///
    /// let s = Scenario::Code832Memory { rounds: Rounds::Fixed(4) };
    /// assert_eq!(s.label(), "code832_memory");
    /// assert_eq!(s.detectors_per_layer(2), Some(4));
    /// ```
    Code832Memory {
        /// Stabilizer-measurement rounds (≥ 1), possibly
        /// distance-dependent.
        rounds: Rounds,
    },
}

impl Scenario {
    /// Stable label used in records ("memory", "transversal_cnot",
    /// "ghz_fanout").
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::Memory { .. } => "memory",
            Scenario::TransversalCnot { .. } => "transversal_cnot",
            Scenario::GhzFanout { .. } => "ghz_fanout",
            Scenario::DeepCnot { .. } => "deep_cnot",
            Scenario::MagicFactory { protocol, .. } => match protocol {
                FactoryProtocol::Distill15 => "factory_distill15",
                FactoryProtocol::Ccz => "factory_ccz",
                FactoryProtocol::Cultivation => "factory_cultivation",
            },
            Scenario::Gadget { kind, .. } => match kind {
                GadgetKind::Adder => "gadget_adder",
                GadgetKind::Lookup => "gadget_lookup",
                GadgetKind::Fanout => "gadget_fanout",
            },
            Scenario::Code832Memory { .. } => "code832_memory",
        }
    }

    /// Detectors per SE-round time layer at distance `distance`, for the
    /// scenarios whose circuits emit detectors in uniform round-by-round
    /// blocks (memory, deep-CNOT, factory/gadget skeletons and the
    /// [[8,3,2]] block); `None` where the layering is non-uniform
    /// (transversal-CNOT's debt schedule, GHZ fan-out's measurement-based
    /// preparation), which is what rejects windowed/streaming decoding for
    /// those scenarios.
    pub fn detectors_per_layer(&self, distance: u32) -> Option<usize> {
        let per_patch = (distance * distance - 1) as usize;
        match self {
            Scenario::Memory { .. } => Some(per_patch),
            Scenario::DeepCnot { patches, .. } => Some(patches * per_patch),
            Scenario::MagicFactory { protocol, .. } => Some(protocol.patches() * per_patch),
            Scenario::Gadget { kind, width, .. } => Some(kind.patches(*width) * per_patch),
            // One detector per Z stabilizer per round, independent of the
            // spec's (fixed) distance.
            Scenario::Code832Memory { .. } => Some(4),
            Scenario::TransversalCnot { .. } | Scenario::GhzFanout { .. } => None,
        }
    }
}

/// How many shots to spend on one spec point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShotBudget {
    /// Decode exactly this many shots.
    Fixed(usize),
    /// Decode until `target_failures` failures (deterministic early stop,
    /// see [`raa_decode::mc::logical_error_rate_until_seeded`]), capped at
    /// `max_shots`.
    UntilFailures {
        /// Hard cap on shots.
        max_shots: usize,
        /// Failure count that stops the run.
        target_failures: usize,
    },
}

/// Which sampling path feeds the Monte-Carlo decode loop.
///
/// Both paths shard shots into the same deterministically seeded batches,
/// so either choice is bit-identical across thread counts — but the two
/// paths consume randomness differently, so records from one are not
/// comparable shot-for-shot with records from the other.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SamplerChoice {
    /// Sample the precompiled detector error model directly
    /// ([`raa_stabsim::DemSampler`]): cost per batch scales with error
    /// mechanisms × hit rate instead of circuit ops × qubits. The default —
    /// the engine has already extracted the DEM for the decoder, so
    /// sampling it is nearly free. Treats depolarizing-channel components
    /// as independent (the standard DEM semantics, an O(p²) approximation).
    #[default]
    Dem,
    /// Re-simulate the circuit through the gate-level Pauli-frame sampler
    /// per batch ([`raa_stabsim::FrameSim`]): exact for every channel,
    /// roughly an order of magnitude slower on deep circuits.
    Circuit,
}

impl SamplerChoice {
    /// Stable label used in records ("dem", "circuit").
    pub fn label(&self) -> &'static str {
        match self {
            SamplerChoice::Dem => "dem",
            SamplerChoice::Circuit => "circuit",
        }
    }
}

/// Which decoder the engine instantiates for a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderChoice {
    /// Weighted union–find (the fast workhorse).
    UnionFind,
    /// Exact small-instance matching (the MLE-like accuracy reference).
    Matching,
    /// Belief-propagation reweighting ahead of union–find.
    BpUnionFind,
    /// Sliding-window union–find over the time axis (memory scenario only;
    /// layers are one SE round each).
    Windowed {
        /// Layers committed per window step.
        commit: usize,
        /// Look-ahead layers beyond the commit region.
        buffer: usize,
    },
}

impl DecoderChoice {
    /// Stable label used in records.
    pub fn label(&self) -> String {
        match self {
            DecoderChoice::UnionFind => "union_find".into(),
            DecoderChoice::Matching => "matching".into(),
            DecoderChoice::BpUnionFind => "bp_union_find".into(),
            DecoderChoice::Windowed { commit, buffer } => {
                format!("windowed_{commit}+{buffer}")
            }
        }
    }
}

/// A fully pinned-down circuit-level experiment.
///
/// Running a spec ([`crate::engine::run`]) is deterministic: the seed drives
/// both circuit construction (random CNOT directions) and the Monte-Carlo
/// decode streams, and the execution parameters in `mc` (threads, batch
/// size) are guaranteed not to change the result.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Record label (grids derive one per point).
    pub name: String,
    /// Circuit family.
    pub scenario: Scenario,
    /// Code distance.
    pub distance: u32,
    /// Logical basis protected.
    pub basis: Basis,
    /// Circuit-level noise strengths.
    pub noise: NoiseModel,
    /// Decoder to instantiate.
    pub decoder: DecoderChoice,
    /// Sampling path feeding the decode loop (default: compiled DEM).
    pub sampler: SamplerChoice,
    /// Stream the Monte-Carlo decode one time layer at a time
    /// ([`raa_decode::mc::logical_error_rate_streamed`]): resident syndrome
    /// memory is bounded by the decoding window instead of the circuit
    /// depth, opening deep-round sweeps. Requires a
    /// [`DecoderChoice::Windowed`] decoder, the (default) DEM sampler and a
    /// uniformly layered scenario (memory, deep-CNOT, factory/gadget
    /// skeleton or [[8,3,2]] memory). The streaming
    /// path derives per-layer sample streams, so its records are not
    /// shot-comparable with the whole-batch path — but are themselves
    /// bit-identical across thread counts.
    pub streaming: bool,
    /// Shot budget.
    pub shots: ShotBudget,
    /// Base seed for circuit construction and decode streams.
    pub seed: u64,
    /// Execution parameters (threads, batch size). Not part of the result:
    /// records are bit-identical for any `mc` setting.
    pub mc: McConfig,
}

impl ExperimentSpec {
    /// A spec with the given scenario and distance and conservative
    /// defaults: Z basis, uniform 1e-3 noise, union–find decoding,
    /// compiled-DEM sampling, 10k shots, seed 0, default Monte-Carlo
    /// config.
    pub fn new(name: impl Into<String>, scenario: Scenario, distance: u32) -> Self {
        Self {
            name: name.into(),
            scenario,
            distance,
            basis: Basis::Z,
            noise: NoiseModel::uniform(1e-3),
            decoder: DecoderChoice::UnionFind,
            sampler: SamplerChoice::default(),
            streaming: false,
            shots: ShotBudget::Fixed(10_000),
            seed: 0,
            mc: McConfig::default(),
        }
    }
}

/// A cartesian sweep: distances × physical error rates × (optionally)
/// CNOTs-per-round × decoders, each point a full [`ExperimentSpec`] with a
/// seed derived from the grid seed and the point index.
///
/// # Example
///
/// ```
/// use raa_sim::{Rounds, Scenario, ShotBudget, SweepGrid};
///
/// let grid = SweepGrid::new(
///     "memory",
///     Scenario::Memory { rounds: Rounds::TimesDistance(1) },
/// )
/// .with_distances(vec![3, 5])
/// .with_p_phys(vec![1e-3, 2e-3])
/// .with_shots(ShotBudget::Fixed(1_000));
/// let specs = grid.specs();
/// assert_eq!(specs.len(), 4);
/// assert_ne!(specs[0].seed, specs[1].seed);
/// ```
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Prefix for per-point record names.
    pub name: String,
    /// Scenario template (per-point axes override its fields).
    pub scenario: Scenario,
    /// Logical basis protected.
    pub basis: Basis,
    /// Code distances (one axis).
    pub distances: Vec<u32>,
    /// Uniform physical error rates (one axis).
    pub p_phys: Vec<f64>,
    /// Optional CNOTs-per-round axis; empty keeps the scenario's own value.
    /// Only meaningful for [`Scenario::TransversalCnot`].
    pub cnots_per_round: Vec<f64>,
    /// Decoders (one axis).
    pub decoders: Vec<DecoderChoice>,
    /// Sampling path applied to every point.
    pub sampler: SamplerChoice,
    /// Streaming (time-sliced) decoding applied to every point (see
    /// [`ExperimentSpec::streaming`]).
    pub streaming: bool,
    /// Shot budget applied to every point.
    pub shots: ShotBudget,
    /// Grid seed; per-point seeds are derived from it and the point index.
    pub seed: u64,
    /// Execution parameters applied to every point.
    pub mc: McConfig,
}

impl SweepGrid {
    /// A grid with the given scenario template and defaults: Z basis,
    /// distance 3 only, p = 1e-3 only, union–find, 10k shots, seed 0.
    pub fn new(name: impl Into<String>, scenario: Scenario) -> Self {
        Self {
            name: name.into(),
            scenario,
            basis: Basis::Z,
            distances: vec![3],
            p_phys: vec![1e-3],
            cnots_per_round: Vec::new(),
            decoders: vec![DecoderChoice::UnionFind],
            sampler: SamplerChoice::default(),
            streaming: false,
            shots: ShotBudget::Fixed(10_000),
            seed: 0,
            mc: McConfig::default(),
        }
    }

    /// Sets the distance axis.
    pub fn with_distances(mut self, distances: Vec<u32>) -> Self {
        self.distances = distances;
        self
    }

    /// Sets the physical-error-rate axis.
    pub fn with_p_phys(mut self, p_phys: Vec<f64>) -> Self {
        self.p_phys = p_phys;
        self
    }

    /// Sets the CNOTs-per-round axis (transversal-CNOT scenarios only).
    pub fn with_cnots_per_round(mut self, xs: Vec<f64>) -> Self {
        self.cnots_per_round = xs;
        self
    }

    /// Sets the decoder axis.
    pub fn with_decoders(mut self, decoders: Vec<DecoderChoice>) -> Self {
        self.decoders = decoders;
        self
    }

    /// Sets the sampling path applied to every point.
    pub fn with_sampler(mut self, sampler: SamplerChoice) -> Self {
        self.sampler = sampler;
        self
    }

    /// Enables/disables streaming (time-sliced) decoding for every point
    /// (see [`ExperimentSpec::streaming`]).
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Sets the logical basis.
    pub fn with_basis(mut self, basis: Basis) -> Self {
        self.basis = basis;
        self
    }

    /// Sets the per-point shot budget.
    pub fn with_shots(mut self, shots: ShotBudget) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the grid seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the execution parameters.
    pub fn with_mc(mut self, mc: McConfig) -> Self {
        self.mc = mc;
        self
    }

    /// Expands the grid into one spec per point, in the deterministic
    /// cartesian order distance (outer) × p × cnots-per-round × decoder
    /// (inner).
    ///
    /// Seeds are derived per *physical* point (distance, p, x): every
    /// decoder at the same point shares a seed and therefore decodes
    /// identical syndrome samples, so decoder comparisons are paired and
    /// sampling noise cancels.
    ///
    /// # Panics
    ///
    /// Panics if an axis is empty, if a CNOTs-per-round axis is given for a
    /// non-CNOT scenario, or if a [`Scenario::Code832Memory`] grid sweeps a
    /// distance other than 2 (the block is a fixed code).
    pub fn specs(&self) -> Vec<ExperimentSpec> {
        assert!(!self.distances.is_empty(), "need at least one distance");
        assert!(!self.p_phys.is_empty(), "need at least one error rate");
        assert!(!self.decoders.is_empty(), "need at least one decoder");
        if matches!(self.scenario, Scenario::Code832Memory { .. }) {
            assert!(
                self.distances.iter().all(|&d| d == 2),
                "code832_memory is a fixed [[8,3,2]] block: the distance axis must be [2]"
            );
        }
        if !self.cnots_per_round.is_empty() {
            assert!(
                matches!(
                    self.scenario,
                    Scenario::TransversalCnot { .. } | Scenario::DeepCnot { .. }
                ),
                "cnots_per_round axis requires a CNOT scenario (transversal or deep)"
            );
        }
        let xs: Vec<Option<f64>> = if self.cnots_per_round.is_empty() {
            vec![None]
        } else {
            self.cnots_per_round.iter().copied().map(Some).collect()
        };
        let mut specs = Vec::new();
        let mut point_index = 0u64;
        for &d in &self.distances {
            for &p in &self.p_phys {
                for &x in &xs {
                    let seed = crate::engine::derive_seed(self.seed, point_index);
                    point_index += 1;
                    for &decoder in &self.decoders {
                        let mut scenario = self.scenario;
                        if let Some(x) = x {
                            match &mut scenario {
                                Scenario::TransversalCnot {
                                    cnots_per_round, ..
                                }
                                | Scenario::DeepCnot {
                                    cnots_per_round, ..
                                } => *cnots_per_round = x,
                                _ => unreachable!("axis validated above"),
                            }
                        }
                        let mut name = format!("{}/d{d}/p{p}", self.name);
                        if let Some(x) = x {
                            name.push_str(&format!("/x{x}"));
                        }
                        name.push_str(&format!("/{}", decoder.label()));
                        specs.push(ExperimentSpec {
                            name,
                            scenario,
                            distance: d,
                            basis: self.basis,
                            noise: NoiseModel::uniform(p),
                            decoder,
                            sampler: self.sampler,
                            streaming: self.streaming,
                            shots: self.shots,
                            seed,
                            mc: self.mc.clone(),
                        });
                    }
                }
            }
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_resolution() {
        assert_eq!(Rounds::Fixed(7).resolve(11), 7);
        assert_eq!(Rounds::TimesDistance(3).resolve(5), 15);
    }

    #[test]
    #[should_panic(expected = "at least one SE round")]
    fn zero_rounds_rejected() {
        Rounds::Fixed(0).resolve(3);
    }

    #[test]
    fn decoder_labels_are_stable() {
        assert_eq!(DecoderChoice::UnionFind.label(), "union_find");
        assert_eq!(
            DecoderChoice::Windowed {
                commit: 2,
                buffer: 3
            }
            .label(),
            "windowed_2+3"
        );
    }

    #[test]
    fn grid_expands_cartesian_product_in_order() {
        let grid = SweepGrid::new(
            "g",
            Scenario::TransversalCnot {
                patches: 2,
                depth: 4,
                cnots_per_round: 1.0,
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![1e-3])
        .with_cnots_per_round(vec![0.5, 2.0])
        .with_decoders(vec![DecoderChoice::UnionFind, DecoderChoice::Matching]);
        let specs = grid.specs();
        assert_eq!(specs.len(), 8, "2 distances x 1 p x 2 xs x 2 decoders");
        assert_eq!(specs[0].name, "g/d3/p0.001/x0.5/union_find");
        assert_eq!(specs[1].name, "g/d3/p0.001/x0.5/matching");
        assert_eq!(specs[7].name, "g/d5/p0.001/x2/matching");
        match specs[2].scenario {
            Scenario::TransversalCnot {
                cnots_per_round, ..
            } => assert_eq!(cnots_per_round, 2.0),
            _ => unreachable!(),
        }
        // Per-point seeds are reproducible; decoders at the same physical
        // point share a seed (paired comparison), distinct points differ.
        let again = grid.specs();
        for (a, b) in specs.iter().zip(&again) {
            assert_eq!(a.seed, b.seed);
        }
        assert_eq!(specs[0].seed, specs[1].seed, "same point, two decoders");
        assert_ne!(specs[0].seed, specs[2].seed, "different x");
        assert_ne!(specs[0].seed, specs[4].seed, "different distance");
    }

    #[test]
    fn deep_cnot_scenario_shape() {
        let s = Scenario::DeepCnot {
            patches: 2,
            rounds: Rounds::TimesDistance(20),
            cnots_per_round: 1.0,
        };
        assert_eq!(s.label(), "deep_cnot");
        assert_eq!(s.detectors_per_layer(3), Some(16));
        assert_eq!(s.detectors_per_layer(5), Some(48));
        assert_eq!(
            Scenario::Memory {
                rounds: Rounds::Fixed(2)
            }
            .detectors_per_layer(3),
            Some(8)
        );
        assert_eq!(
            Scenario::GhzFanout { targets: 2 }.detectors_per_layer(3),
            None
        );
    }

    #[test]
    fn streaming_toggle_propagates_to_specs() {
        let grid = SweepGrid::new(
            "g",
            Scenario::Memory {
                rounds: Rounds::TimesDistance(20),
            },
        )
        .with_decoders(vec![DecoderChoice::Windowed {
            commit: 2,
            buffer: 2,
        }])
        .with_streaming(true);
        let specs = grid.specs();
        assert!(specs.iter().all(|s| s.streaming));
        assert!(
            !ExperimentSpec::new(
                "m",
                Scenario::Memory {
                    rounds: Rounds::Fixed(1)
                },
                3
            )
            .streaming
        );
    }

    #[test]
    #[should_panic(expected = "CNOT scenario")]
    fn x_axis_rejected_for_memory() {
        SweepGrid::new(
            "g",
            Scenario::Memory {
                rounds: Rounds::Fixed(1),
            },
        )
        .with_cnots_per_round(vec![1.0])
        .specs();
    }

    #[test]
    fn new_scenario_labels_are_stable() {
        for (scenario, label) in [
            (
                Scenario::MagicFactory {
                    protocol: FactoryProtocol::Distill15,
                    rounds: Rounds::Fixed(4),
                },
                "factory_distill15",
            ),
            (
                Scenario::MagicFactory {
                    protocol: FactoryProtocol::Ccz,
                    rounds: Rounds::Fixed(4),
                },
                "factory_ccz",
            ),
            (
                Scenario::MagicFactory {
                    protocol: FactoryProtocol::Cultivation,
                    rounds: Rounds::Fixed(4),
                },
                "factory_cultivation",
            ),
            (
                Scenario::Gadget {
                    kind: GadgetKind::Adder,
                    width: 4,
                    rounds: Rounds::Fixed(4),
                },
                "gadget_adder",
            ),
            (
                Scenario::Gadget {
                    kind: GadgetKind::Lookup,
                    width: 4,
                    rounds: Rounds::Fixed(4),
                },
                "gadget_lookup",
            ),
            (
                Scenario::Gadget {
                    kind: GadgetKind::Fanout,
                    width: 3,
                    rounds: Rounds::Fixed(4),
                },
                "gadget_fanout",
            ),
            (
                Scenario::Code832Memory {
                    rounds: Rounds::Fixed(4),
                },
                "code832_memory",
            ),
        ] {
            assert_eq!(scenario.label(), label);
        }
    }

    #[test]
    fn new_scenarios_layer_uniformly() {
        let rounds = Rounds::Fixed(4);
        assert_eq!(
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Distill15,
                rounds
            }
            .detectors_per_layer(3),
            Some(15 * 8)
        );
        assert_eq!(
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds
            }
            .detectors_per_layer(5),
            Some(8 * 24)
        );
        assert_eq!(
            Scenario::Gadget {
                kind: GadgetKind::Adder,
                width: 4,
                rounds
            }
            .detectors_per_layer(3),
            Some(9 * 8),
            "adder holds 2w + 1 patches"
        );
        assert_eq!(
            Scenario::Gadget {
                kind: GadgetKind::Fanout,
                width: 3,
                rounds
            }
            .detectors_per_layer(3),
            Some(3 * 8)
        );
        assert_eq!(
            Scenario::Code832Memory { rounds }.detectors_per_layer(2),
            Some(4)
        );
        // The non-uniform scenarios still refuse a layer size.
        assert_eq!(
            Scenario::TransversalCnot {
                patches: 2,
                depth: 4,
                cnots_per_round: 1.0
            }
            .detectors_per_layer(3),
            None
        );
        assert_eq!(
            Scenario::GhzFanout { targets: 3 }.detectors_per_layer(3),
            None
        );
    }

    #[test]
    fn factory_grid_expands_and_seeds_like_any_other() {
        let grid = SweepGrid::new(
            "f",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds: Rounds::TimesDistance(2),
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![1e-3, 2e-3]);
        let specs = grid.specs();
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].name, "f/d3/p0.001/union_find");
        assert_ne!(specs[0].seed, specs[1].seed);
        assert!(specs.iter().all(|s| s.scenario.label() == "factory_ccz"));
    }

    #[test]
    #[should_panic(expected = "CNOT scenario")]
    fn x_axis_rejected_for_factory() {
        SweepGrid::new(
            "g",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Distill15,
                rounds: Rounds::Fixed(4),
            },
        )
        .with_cnots_per_round(vec![1.0])
        .specs();
    }

    #[test]
    #[should_panic(expected = "distance axis must be [2]")]
    fn code832_grid_rejects_other_distances() {
        SweepGrid::new(
            "g",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
        )
        .with_distances(vec![3])
        .specs();
    }

    #[test]
    fn code832_grid_accepts_distance_two() {
        let specs = SweepGrid::new(
            "g",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
        )
        .with_distances(vec![2])
        .specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].distance, 2);
    }
}
