//! Typed errors for the sweep orchestrator and service layers.
//!
//! PR 5's orchestrator surfaced every failure as a bare [`io::Result`],
//! which flattened semantically different situations — a full disk, a
//! corrupt cache entry, a panicking grid point, a wedged lock — into one
//! stringly error. [`OrchestratorError`] separates them so callers can
//! react per failure class: the daemon quarantines poisoned points and
//! keeps serving, a CLI prints the corrupt entry's path, a retry loop knows
//! a lock timeout is transient where a pool-build failure is not.

use crate::lock::LockError;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

/// A grid point whose engine run panicked. The point is identified both by
/// position (`index` into the submitted spec list) and by content (`key`,
/// the spec's cache key) — the latter is what quarantine lists match on, so
/// the same pathological point is refused across jobs no matter where it
/// appears in a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonedPoint {
    /// Index into the spec list the point came from.
    pub index: usize,
    /// The spec's name (for human-readable reports).
    pub name: String,
    /// The spec's content-addressed cache key (what quarantine matches on).
    pub key: String,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl fmt::Display for PoisonedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "point #{} ({}) panicked: {}",
            self.index, self.name, self.message
        )
    }
}

/// Why an orchestrated sweep (or one of its points) failed.
#[derive(Debug)]
pub enum OrchestratorError {
    /// Cache I/O failed past the bounded retry budget.
    Io {
        /// What the orchestrator was doing (e.g. "persisting cache entry").
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A cache entry failed validation (unparsable bytes, or a record whose
    /// spec echo contradicts itself). During sweeps this is self-healing
    /// (the point is recomputed); the scrubber and strict validators
    /// surface it.
    CorruptEntry {
        /// The offending entry file.
        path: PathBuf,
        /// What validation tripped on.
        detail: String,
    },
    /// A grid point's engine run panicked and panic isolation was off, so
    /// the job fails as a whole (the process survives either way).
    Poisoned(PoisonedPoint),
    /// An advisory cache lock stayed held past the bounded wait.
    LockTimeout {
        /// The contended lock file.
        path: PathBuf,
        /// How long the acquisition waited.
        waited: Duration,
    },
    /// The point-parallel worker pool could not be built (a bad
    /// thread-count configuration fails the job, not the process).
    PoolBuild {
        /// The requested point-thread count.
        requested: usize,
        /// The pool builder's error.
        detail: String,
    },
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::Io { context, source } => write!(f, "{context}: {source}"),
            OrchestratorError::CorruptEntry { path, detail } => {
                write!(f, "corrupt cache entry {}: {detail}", path.display())
            }
            OrchestratorError::Poisoned(p) => write!(f, "poisoned {p}"),
            OrchestratorError::LockTimeout { path, waited } => write!(
                f,
                "cache lock {} still held after {waited:?}",
                path.display()
            ),
            OrchestratorError::PoolBuild { requested, detail } => write!(
                f,
                "building the sweep point pool ({requested} threads) failed: {detail}"
            ),
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for OrchestratorError {
    fn from(source: io::Error) -> Self {
        OrchestratorError::Io {
            context: "cache I/O".into(),
            source,
        }
    }
}

impl From<raa_decode::mc::McError> for OrchestratorError {
    fn from(e: raa_decode::mc::McError) -> Self {
        match e {
            raa_decode::mc::McError::PoolBuild { requested, detail } => {
                OrchestratorError::PoolBuild { requested, detail }
            }
        }
    }
}

impl From<LockError> for OrchestratorError {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Timeout { path, waited } => OrchestratorError::LockTimeout { path, waited },
            LockError::Io { path, source } => OrchestratorError::Io {
                context: format!("cache lock I/O on {}", path.display()),
                source,
            },
        }
    }
}

impl OrchestratorError {
    /// Attaches a human-readable context to an [`io::Error`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        OrchestratorError::Io {
            context: context.into(),
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let poisoned = PoisonedPoint {
            index: 3,
            name: "g/d3".into(),
            key: "ab".repeat(16),
            message: "boom".into(),
        };
        let cases: Vec<(OrchestratorError, &str)> = vec![
            (
                OrchestratorError::io("writing entry", io::Error::other("x")),
                "writing entry",
            ),
            (
                OrchestratorError::CorruptEntry {
                    path: "/c/e.json".into(),
                    detail: "bad json".into(),
                },
                "corrupt cache entry",
            ),
            (OrchestratorError::Poisoned(poisoned.clone()), "panicked"),
            (
                OrchestratorError::LockTimeout {
                    path: "/c/e.lock".into(),
                    waited: Duration::from_millis(10),
                },
                "still held",
            ),
            (
                OrchestratorError::PoolBuild {
                    requested: 7,
                    detail: "nope".into(),
                },
                "point pool",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
        assert!(poisoned.to_string().contains("point #3"));
    }

    #[test]
    fn lock_error_converts_by_class() {
        let timeout = LockError::Timeout {
            path: "/x.lock".into(),
            waited: Duration::from_secs(1),
        };
        assert!(matches!(
            OrchestratorError::from(timeout),
            OrchestratorError::LockTimeout { .. }
        ));
        let io_err = LockError::Io {
            path: "/x.lock".into(),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(matches!(
            OrchestratorError::from(io_err),
            OrchestratorError::Io { .. }
        ));
    }
}
