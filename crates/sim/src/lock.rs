//! Advisory file locking and bounded retry/backoff for the sweep cache.
//!
//! The record cache already writes atomically (temp file + rename), so
//! readers can never observe a torn entry. What atomic renames alone do not
//! give is *single-writer discipline*: two orchestrators (or a daemon
//! worker and the background scrubber) racing on one entry would both pay
//! for the same Monte-Carlo sampling, and a scrubber must never quarantine
//! or evict an entry another process is mid-way through (re)writing.
//!
//! [`FileLock`] implements the portable std-only discipline: a lock is an
//! `O_EXCL`-created sidecar file (`<key>.lock`) holding the owner's pid.
//! Acquisition retries with exponential backoff ([`Backoff`]) up to a
//! bounded wait, and locks whose mtime is older than a staleness threshold
//! are broken — a crashed or SIGKILLed holder cannot wedge the cache
//! forever. The lock is advisory by design: a holder crash, an NFS quirk or
//! an impatient contender can at worst cause duplicated work, never a
//! corrupt entry, because the rename underneath stays atomic.
//!
//! # Example
//!
//! ```
//! use raa_sim::lock::{Backoff, FileLock, LockOptions};
//!
//! let dir = std::env::temp_dir().join(format!("raa-lock-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("entry.lock");
//!
//! // Single-writer discipline around a cache entry write:
//! let lock = FileLock::acquire(&path, &LockOptions::default()).unwrap();
//! // ... temp-write + rename the entry here ...
//! lock.release().unwrap();
//!
//! // Bounded retry with exponential backoff for transient I/O:
//! let text = raa_sim::lock::retry_io(&Backoff::default(), || {
//!     std::fs::read_to_string(&path).map(|s| s.len()).or(Ok(0))
//! })
//! .unwrap();
//! assert_eq!(text, 0);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// A bounded exponential-backoff schedule: `attempts` tries, sleeping
/// `base * 2^i` (capped at `cap`) between consecutive tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (>= 1).
    pub attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            attempts: 5,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
        }
    }
}

impl Backoff {
    /// The delay to sleep after failed attempt `attempt` (0-based), or
    /// `None` once the budget is exhausted.
    pub fn delay_after(&self, attempt: u32) -> Option<Duration> {
        if attempt + 1 >= self.attempts {
            return None;
        }
        let factor = 1u32 << attempt.min(16);
        Some((self.base * factor).min(self.cap))
    }
}

/// Runs `op` under a bounded retry/backoff schedule, returning the first
/// success or the *last* error once the attempt budget is spent. Built for
/// transient cache I/O contention (e.g. a rename racing a scrubber on a
/// network filesystem); the op must be idempotent.
pub fn retry_io<T>(backoff: &Backoff, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => match backoff.delay_after(attempt) {
                Some(delay) => {
                    std::thread::sleep(delay);
                    attempt += 1;
                }
                None => return Err(e),
            },
        }
    }
}

/// How long an acquisition waits, how it backs off, and when a competing
/// lock is considered abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOptions {
    /// Total time to keep retrying before giving up with
    /// [`LockError::Timeout`].
    pub wait: Duration,
    /// Backoff schedule between acquisition attempts (its `attempts` field
    /// is ignored here — `wait` bounds the loop).
    pub backoff: Backoff,
    /// A lock file whose mtime is older than this is treated as abandoned
    /// by a dead process and broken. Keep it comfortably above the longest
    /// critical section (a cache-entry write, not a whole sweep).
    pub stale_after: Duration,
}

impl Default for LockOptions {
    fn default() -> Self {
        Self {
            wait: Duration::from_secs(10),
            backoff: Backoff::default(),
            stale_after: Duration::from_secs(60),
        }
    }
}

impl LockOptions {
    /// Options that fail fast: a single immediate attempt, no waiting.
    pub fn try_once() -> Self {
        Self {
            wait: Duration::ZERO,
            ..Self::default()
        }
    }
}

/// Why a lock could not be acquired.
#[derive(Debug)]
pub enum LockError {
    /// The lock stayed held (and fresh) for the whole bounded wait.
    Timeout {
        /// The contended lock file.
        path: PathBuf,
        /// How long the acquisition waited.
        waited: Duration,
    },
    /// Filesystem-level failure creating or inspecting the lock file.
    Io {
        /// The lock file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout { path, waited } => {
                write!(f, "lock {} still held after {:?}", path.display(), waited)
            }
            LockError::Io { path, source } => {
                write!(f, "lock I/O on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LockError::Io { source, .. } => Some(source),
            LockError::Timeout { .. } => None,
        }
    }
}

/// An acquired advisory lock; released (the lock file unlinked) on drop, or
/// explicitly via [`FileLock::release`]. Dropping during an unwind releases
/// too, so a panicking critical section cannot leave a fresh lock behind.
#[derive(Debug)]
pub struct FileLock {
    path: PathBuf,
    released: bool,
}

impl FileLock {
    /// Acquires the lock at `path`, retrying with exponential backoff for
    /// up to `opts.wait` and breaking locks older than `opts.stale_after`.
    ///
    /// # Errors
    ///
    /// [`LockError::Timeout`] when the lock stays held past the bounded
    /// wait; [`LockError::Io`] on filesystem failure.
    pub fn acquire(path: impl Into<PathBuf>, opts: &LockOptions) -> Result<Self, LockError> {
        let path = path.into();
        let start = Instant::now();
        let mut attempt = 0u32;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => {
                    use io::Write;
                    // Ownership breadcrumb for humans debugging a wedged
                    // cache; correctness never depends on the contents.
                    let _ = writeln!(&file, "pid {}", std::process::id());
                    return Ok(Self {
                        path,
                        released: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&path, opts.stale_after) {
                        // Break it and retry immediately. Racing breakers
                        // are fine: remove is idempotent (NotFound ignored)
                        // and create_new above still admits exactly one
                        // winner.
                        match fs::remove_file(&path) {
                            Ok(()) => continue,
                            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                            Err(source) => return Err(LockError::Io { path, source }),
                        }
                    }
                }
                Err(source) => return Err(LockError::Io { path, source }),
            }
            let waited = start.elapsed();
            if waited >= opts.wait {
                return Err(LockError::Timeout { path, waited });
            }
            let delay = opts
                .backoff
                .delay_after(attempt)
                .unwrap_or(opts.backoff.cap)
                .min(opts.wait.saturating_sub(waited));
            std::thread::sleep(delay.max(Duration::from_millis(1)));
            attempt = attempt.saturating_add(1);
        }
    }

    /// The lock file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Releases the lock, reporting unlink failures (drop would swallow
    /// them).
    pub fn release(mut self) -> io::Result<()> {
        self.released = true;
        match fs::remove_file(&self.path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        if !self.released {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Whether the lock file at `path` is older than `stale_after`. Missing
/// files and unreadable metadata count as *not* stale — the acquisition
/// loop will re-race `create_new` instead of destroying evidence.
fn lock_is_stale(path: &Path, stale_after: Duration) -> bool {
    let Ok(meta) = fs::metadata(path) else {
        return false;
    };
    let Ok(modified) = meta.modified() else {
        return false;
    };
    SystemTime::now()
        .duration_since(modified)
        .map(|age| age > stale_after)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "raa-sim-lock-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn acquire_release_cycle() {
        let tmp = TempDir::new("cycle");
        let path = tmp.0.join("x.lock");
        let lock = FileLock::acquire(&path, &LockOptions::default()).unwrap();
        assert!(path.exists());
        lock.release().unwrap();
        assert!(!path.exists());
        // Reacquirable after release, and drop releases too.
        let lock = FileLock::acquire(&path, &LockOptions::default()).unwrap();
        drop(lock);
        assert!(!path.exists());
    }

    #[test]
    fn held_lock_times_out_fast_contender() {
        let tmp = TempDir::new("timeout");
        let path = tmp.0.join("x.lock");
        let _held = FileLock::acquire(&path, &LockOptions::default()).unwrap();
        let opts = LockOptions {
            wait: Duration::from_millis(30),
            stale_after: Duration::from_secs(60),
            ..LockOptions::default()
        };
        match FileLock::acquire(&path, &opts) {
            Err(LockError::Timeout { waited, .. }) => {
                assert!(waited >= Duration::from_millis(30))
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn contending_threads_serialize_through_the_lock() {
        let tmp = TempDir::new("contend");
        let path = tmp.0.join("x.lock");
        let in_section = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (path, in_section, max_seen) =
                    (path.clone(), in_section.clone(), max_seen.clone());
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let lock = FileLock::acquire(
                            &path,
                            &LockOptions {
                                wait: Duration::from_secs(30),
                                ..LockOptions::default()
                            },
                        )
                        .unwrap();
                        let n = in_section.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(n, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                        in_section.fetch_sub(1, Ordering::SeqCst);
                        lock.release().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(max_seen.load(Ordering::SeqCst), 1, "mutual exclusion");
    }

    #[test]
    fn stale_lock_from_dead_process_is_broken() {
        let tmp = TempDir::new("stale");
        let path = tmp.0.join("x.lock");
        fs::write(&path, "pid 999999\n").unwrap();
        std::thread::sleep(Duration::from_millis(15));
        let opts = LockOptions {
            wait: Duration::from_millis(200),
            stale_after: Duration::from_millis(10),
            ..LockOptions::default()
        };
        let lock = FileLock::acquire(&path, &opts).expect("stale lock must break");
        lock.release().unwrap();
    }

    #[test]
    fn panicking_critical_section_releases_via_drop() {
        let tmp = TempDir::new("panic");
        let path = tmp.0.join("x.lock");
        let path2 = path.clone();
        let result = std::panic::catch_unwind(move || {
            let _lock = FileLock::acquire(&path2, &LockOptions::default()).unwrap();
            panic!("mid-section");
        });
        assert!(result.is_err());
        assert!(!path.exists(), "unwind must release the lock");
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let b = Backoff {
            attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(25),
        };
        assert_eq!(b.delay_after(0), Some(Duration::from_millis(10)));
        assert_eq!(b.delay_after(1), Some(Duration::from_millis(20)));
        assert_eq!(b.delay_after(2), Some(Duration::from_millis(25)), "capped");
        assert_eq!(b.delay_after(3), Some(Duration::from_millis(25)));
        assert_eq!(b.delay_after(4), None, "budget spent");
    }

    #[test]
    fn retry_io_retries_transient_failures_then_succeeds() {
        let calls = AtomicUsize::new(0);
        let out = retry_io(
            &Backoff {
                attempts: 4,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(2),
            },
            || {
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(io::Error::other("transient"))
                } else {
                    Ok(7)
                }
            },
        )
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        // Exhausted budget surfaces the last error.
        let err = retry_io::<()>(
            &Backoff {
                attempts: 2,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(1),
            },
            || Err(io::Error::other("persistent")),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "persistent");
    }
}
