//! The experiment engine: spec → circuit → DEM → decoder → statistics.
//!
//! [`run`] is a pure function of its [`ExperimentSpec`]: the spec seed
//! drives both circuit construction (random CNOT directions in the
//! transversal scenario) and the Monte-Carlo decode streams through
//! independent derived streams, and decoding goes through the
//! deterministically-sharded pipeline of [`raa_decode::mc`], so the result
//! is bit-identical for any thread count or batch size.

use crate::record::ExperimentRecord;
use crate::spec::{DecoderChoice, ExperimentSpec, SamplerChoice, Scenario, ShotBudget, SweepGrid};
use raa_decode::mc::{self, CircuitSampler, DecodeStats, McError, Sampler};
use raa_decode::{
    BpUnionFindDecoder, Decoder, DecodingGraph, MatchingDecoder, UniformLayers, UnionFindDecoder,
    WindowedDecoder,
};
use raa_stabsim::{Circuit, DemSampler, DetectorErrorModel, StreamingDemSampler};
use raa_surface::{
    Code832MemoryExperiment, GhzFanoutExperiment, MemoryExperiment, ScheduledCnotExperiment,
    TransversalCnotExperiment,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Stream tag for circuit construction randomness.
const CIRCUIT_STREAM: u64 = 0xC1;
/// Stream tag for the Monte-Carlo decode seed.
const DECODE_STREAM: u64 = 0xDEC0;

/// Derives an independent seed for a stream or grid point from a base
/// seed, via the shared SplitMix64-style [`raa_decode::mc::mix_seed`] (the
/// same construction as the per-batch decode streams).
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    mc::mix_seed(seed, stream)
}

/// Builds the noisy circuit a spec describes (deterministic in the spec).
pub fn build_circuit(spec: &ExperimentSpec) -> Circuit {
    match spec.scenario {
        Scenario::Memory { rounds } => MemoryExperiment {
            distance: spec.distance,
            rounds: rounds.resolve(spec.distance),
            basis: spec.basis,
            noise: spec.noise,
        }
        .build(),
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, CIRCUIT_STREAM));
            TransversalCnotExperiment {
                distance: spec.distance,
                patches,
                depth,
                cnots_per_round,
                basis: spec.basis,
                noise: spec.noise,
            }
            .build(&mut rng)
        }
        Scenario::GhzFanout { targets } => GhzFanoutExperiment {
            distance: spec.distance,
            targets,
            noise: spec.noise,
        }
        .build(),
        Scenario::DeepCnot { .. } => {
            let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, CIRCUIT_STREAM));
            deep_cnot_experiment(spec).build(&mut rng)
        }
        Scenario::MagicFactory { .. } | Scenario::Gadget { .. } => {
            scheduled_experiment(spec).build()
        }
        Scenario::Code832Memory { rounds } => {
            assert_eq!(
                spec.distance, 2,
                "code832_memory is a fixed [[8,3,2]] block: the spec distance must be 2"
            );
            Code832MemoryExperiment {
                rounds: rounds.resolve(spec.distance),
                noise: spec.noise,
            }
            .build()
        }
    }
}

/// The [`ScheduledCnotExperiment`] behind a factory or gadget spec: the
/// protocol's (or gadget's) cycled CNOT layer schedule, one layer per SE
/// round, at the spec's distance, basis and noise.
fn scheduled_experiment(spec: &ExperimentSpec) -> ScheduledCnotExperiment {
    let (patches, schedule, rounds) = match spec.scenario {
        Scenario::MagicFactory { protocol, rounds } => {
            (protocol.patches(), protocol.schedule(), rounds)
        }
        Scenario::Gadget {
            kind,
            width,
            rounds,
        } => (kind.patches(width), kind.schedule(width), rounds),
        _ => unreachable!("only called for factory/gadget specs"),
    };
    ScheduledCnotExperiment {
        distance: spec.distance,
        patches,
        schedule,
        rounds: rounds.resolve(spec.distance),
        basis: spec.basis,
        noise: spec.noise,
    }
}

/// The [`TransversalCnotExperiment`] behind a [`Scenario::DeepCnot`] spec:
/// the round count is the knob, so the CNOT depth is derived as the largest
/// depth whose schedule (one SE round after initialization plus
/// `⌈depth / x⌉` more) emits **at most** `rounds` SE rounds — exactly
/// `rounds` whenever `(rounds − 1) · x` is an integer, never more.
///
/// # Panics
///
/// Panics if the resolved round count is below 2 (no room for a gate).
fn deep_cnot_experiment(spec: &ExperimentSpec) -> TransversalCnotExperiment {
    let Scenario::DeepCnot {
        patches,
        rounds,
        cnots_per_round,
    } = spec.scenario
    else {
        unreachable!("only called for deep-CNOT specs")
    };
    let total_rounds = rounds.resolve(spec.distance);
    assert!(
        total_rounds >= 2,
        "deep-CNOT needs at least two SE rounds, got {total_rounds}"
    );
    let rounds_for = |depth: usize| 1 + (depth as f64 / cnots_per_round).ceil() as usize;
    // Start one above the float floor (guarding rounding dirt in the
    // product), then step down until the schedule fits the round budget.
    let mut depth = (((total_rounds - 1) as f64) * cnots_per_round).floor() as usize + 1;
    while depth > 1 && rounds_for(depth) > total_rounds {
        depth -= 1;
    }
    TransversalCnotExperiment {
        distance: spec.distance,
        patches,
        depth,
        cnots_per_round,
        basis: spec.basis,
        noise: spec.noise,
    }
}

fn spend_budget<S: Sampler, D: Decoder + Sync>(
    sampler: &S,
    decoder: &D,
    spec: &ExperimentSpec,
    seed: u64,
) -> Result<DecodeStats, McError> {
    match spec.shots {
        ShotBudget::Fixed(shots) => {
            mc::logical_error_rate_sampled(sampler, decoder, shots, seed, &spec.mc)
        }
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => mc::logical_error_rate_until_sampled(
            sampler,
            decoder,
            max_shots,
            target_failures,
            seed,
            &spec.mc,
        ),
    }
}

/// Runs the spec's shot budget through its chosen sampling path. The DEM
/// path compiles the engine's already-extracted `dem` (no second
/// extraction); the circuit path re-simulates gate by gate.
fn decode_budget<D: Decoder + Sync>(
    circuit: &Circuit,
    dem: &DetectorErrorModel,
    decoder: &D,
    spec: &ExperimentSpec,
    seed: u64,
) -> Result<DecodeStats, McError> {
    match spec.sampler {
        SamplerChoice::Dem => spend_budget(&DemSampler::new(dem), decoder, spec, seed),
        SamplerChoice::Circuit => spend_budget(&CircuitSampler::new(circuit), decoder, spec, seed),
    }
}

/// Runs the spec's shot budget through the streaming pipeline: time-sliced
/// sampling feeding per-shot windowed decode sessions, with resident
/// syndrome memory bounded by the decoding window instead of the circuit
/// depth.
fn decode_budget_streamed(
    sampler: &StreamingDemSampler,
    decoder: &WindowedDecoder<UniformLayers>,
    spec: &ExperimentSpec,
    seed: u64,
) -> Result<DecodeStats, McError> {
    match spec.shots {
        ShotBudget::Fixed(shots) => {
            mc::logical_error_rate_streamed(sampler, decoder, shots, seed, &spec.mc)
        }
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => mc::logical_error_rate_until_streamed(
            sampler,
            decoder,
            max_shots,
            target_failures,
            seed,
            &spec.mc,
        ),
    }
}

/// Wall-clock split of one engine run. Never part of the record (records
/// are deterministic; wall time is not).
#[derive(Debug, Clone, Copy)]
pub struct RunTiming {
    /// Circuit construction, DEM extraction, graph decomposition and
    /// decoder construction.
    pub setup_seconds: f64,
    /// Sampling + Monte-Carlo decoding only — the number to use for decoder
    /// throughput comparisons.
    pub decode_seconds: f64,
}

/// Runs one spec end to end: build → DEM extraction → graphlike
/// decomposition → decoder construction → parallel Monte-Carlo decoding →
/// result record.
///
/// # Panics
///
/// Panics if [`DecoderChoice::Windowed`] is requested for a scenario
/// without uniform time layering (anything but memory or deep-CNOT), if
/// `streaming` is set without a windowed decoder, without the DEM sampler,
/// on an unlayered scenario, or with a degenerate window geometry (zero
/// buffer, or a window covering the whole circuit — rejected via
/// [`raa_decode::WindowError`]), or if the decode thread pool cannot be
/// built (see [`try_run`] for the fallible form).
pub fn run(spec: &ExperimentSpec) -> ExperimentRecord {
    run_timed(spec).0
}

/// Like [`run`], but also reports the setup/decode wall-clock split.
///
/// # Panics
///
/// As [`run`]; see [`try_run_timed`] for the fallible form.
pub fn run_timed(spec: &ExperimentSpec) -> (ExperimentRecord, RunTiming) {
    try_run_timed(spec).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`run`]: infrastructure failures (the decode thread
/// pool failing to build) surface as [`McError`] instead of a panic.
/// Spec-shape violations (windowed/streaming constraints) still panic —
/// they are caller bugs, not runtime conditions.
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] when the spec's [`raa_decode::McConfig`]
/// requests a dedicated thread pool and building it fails.
pub fn try_run(spec: &ExperimentSpec) -> Result<ExperimentRecord, McError> {
    Ok(try_run_timed(spec)?.0)
}

/// Fallible form of [`run_timed`]; see [`try_run`] for the error contract.
///
/// # Errors
///
/// Returns [`McError::PoolBuild`] when the spec's [`raa_decode::McConfig`]
/// requests a dedicated thread pool and building it fails.
pub fn try_run_timed(spec: &ExperimentSpec) -> Result<(ExperimentRecord, RunTiming), McError> {
    // raa-audit: allow(nondet-time): the wall-clock split is reported beside the record in RunTiming and never enters a record, fingerprint, or memo.
    let start = Instant::now();
    let circuit = build_circuit(spec);
    let dem = DetectorErrorModel::from_circuit(&circuit);
    let (graph, arbitrary) = DecodingGraph::from_dem_decomposed(&dem);
    let decode_seed = derive_seed(spec.seed, DECODE_STREAM);
    assert!(
        !spec.streaming || matches!(spec.decoder, DecoderChoice::Windowed { .. }),
        "streaming decoding requires the windowed decoder"
    );
    let timed = |decode: &dyn Fn() -> Result<DecodeStats, McError>| {
        // raa-audit: allow(nondet-time): decode_seconds lands in RunTiming, not in the ExperimentRecord.
        let t0 = Instant::now();
        let stats = decode()?;
        Ok::<_, McError>((stats, t0.elapsed().as_secs_f64()))
    };
    let (stats, decode_seconds) = match spec.decoder {
        DecoderChoice::UnionFind => {
            let decoder = UnionFindDecoder::new(graph);
            timed(&|| decode_budget(&circuit, &dem, &decoder, spec, decode_seed))
        }
        DecoderChoice::Matching => {
            let decoder = MatchingDecoder::new(graph);
            timed(&|| decode_budget(&circuit, &dem, &decoder, spec, decode_seed))
        }
        DecoderChoice::BpUnionFind => {
            let decoder = BpUnionFindDecoder::new(&dem);
            timed(&|| decode_budget(&circuit, &dem, &decoder, spec, decode_seed))
        }
        DecoderChoice::Windowed { commit, buffer } => {
            let detectors_per_layer = spec.scenario.detectors_per_layer(spec.distance).expect(
                "windowed decoding requires a uniformly layered scenario \
                 (memory, deep-CNOT, factory/gadget skeleton or code832)",
            );
            let layers = UniformLayers {
                detectors_per_layer,
            };
            if spec.streaming {
                assert!(
                    matches!(spec.sampler, SamplerChoice::Dem),
                    "streaming decoding samples the time-sliced DEM; set the DEM sampler"
                );
                // Streaming promises O(window) resident state, which a
                // degenerate geometry (no advance, no look-ahead, or a
                // window that swallows the circuit) silently breaks — the
                // validating constructor turns that into a typed error.
                let decoder = WindowedDecoder::try_new(graph, layers, commit, buffer)
                    .unwrap_or_else(|e| panic!("streaming windowed decode rejected: {e}"));
                let sampler = StreamingDemSampler::new(&dem, detectors_per_layer);
                timed(&|| decode_budget_streamed(&sampler, &decoder, spec, decode_seed))
            } else {
                // The batch path stays permissive: convergence sweeps
                // legitimately drive buffer 0 and global-window points.
                let decoder = WindowedDecoder::new(graph, layers, commit, buffer);
                timed(&|| decode_budget(&circuit, &dem, &decoder, spec, decode_seed))
            }
        }
    }?;
    let timing = RunTiming {
        setup_seconds: start.elapsed().as_secs_f64() - decode_seconds,
        decode_seconds,
    };
    let (patches, cnots, se_rounds, cnots_per_round) = match spec.scenario {
        Scenario::Memory { rounds } => (1, 0, rounds.resolve(spec.distance), None),
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => {
            // The builder owns the round schedule; ask it rather than
            // re-deriving the formula here.
            let exp = TransversalCnotExperiment {
                distance: spec.distance,
                patches,
                depth,
                cnots_per_round,
                basis: spec.basis,
                noise: spec.noise,
            };
            (
                patches,
                depth,
                exp.expected_se_rounds(),
                Some(cnots_per_round),
            )
        }
        Scenario::GhzFanout { targets } => {
            let exp = GhzFanoutExperiment {
                distance: spec.distance,
                targets,
                noise: spec.noise,
            };
            (exp.patches(), exp.cnots(), exp.se_rounds(), None)
        }
        Scenario::DeepCnot {
            patches,
            cnots_per_round,
            ..
        } => {
            let exp = deep_cnot_experiment(spec);
            (
                patches,
                exp.depth,
                exp.expected_se_rounds(),
                Some(cnots_per_round),
            )
        }
        Scenario::MagicFactory { .. } | Scenario::Gadget { .. } => {
            let exp = scheduled_experiment(spec);
            (exp.patches, exp.cnots(), exp.rounds, None)
        }
        Scenario::Code832Memory { rounds } => (1, 0, rounds.resolve(spec.distance), None),
    };
    let record = ExperimentRecord {
        name: spec.name.clone(),
        scenario: spec.scenario.label().into(),
        distance: spec.distance,
        basis: spec.basis,
        patches,
        cnots,
        se_rounds,
        cnots_per_round,
        noise: spec.noise,
        decoder: spec.decoder.label(),
        sampler: spec.sampler.label().into(),
        streaming: spec.streaming,
        seed: spec.seed,
        num_detectors: circuit.num_detectors(),
        num_dem_errors: dem.len(),
        arbitrary_decompositions: arbitrary,
        shots: stats.shots,
        failures: stats.failures,
    };
    Ok((record, timing))
}

/// Runs every point of a sweep grid in its deterministic expansion order.
///
/// Each point's decoding is already sharded across threads by the
/// [`raa_decode::mc`] pipeline, so points run serially (bounding peak
/// memory to one circuit + one decoder at a time) without leaving cores
/// idle.
pub fn run_sweep(grid: &SweepGrid) -> Vec<ExperimentRecord> {
    grid.specs().iter().map(run).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Rounds;
    use raa_decode::McConfig;

    fn memory_spec() -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(
            "test/memory",
            Scenario::Memory {
                rounds: Rounds::Fixed(2),
            },
            3,
        );
        spec.noise = raa_surface::NoiseModel::uniform(3e-3);
        spec.shots = ShotBudget::Fixed(2_000);
        spec.seed = 7;
        spec
    }

    #[test]
    fn memory_record_accounting() {
        let r = run(&memory_spec());
        assert_eq!(r.scenario, "memory");
        assert_eq!(r.shots, 2_000);
        assert_eq!(r.patches, 1);
        assert_eq!(r.cnots, 0);
        assert_eq!(r.se_rounds, 2);
        assert!(r.num_detectors > 0);
        assert!(r.num_dem_errors > 0);
        assert!(r.logical_error_rate() < 0.1);
        assert!(r.error_per_cnot().is_none());
    }

    #[test]
    fn try_run_matches_run() {
        let spec = memory_spec();
        let (record, timing) = try_run_timed(&spec).expect("ambient pool cannot fail");
        assert_eq!(record.to_json(), run(&spec).to_json());
        assert!(timing.decode_seconds >= 0.0);
        assert!(timing.setup_seconds >= 0.0);
    }

    #[test]
    fn transversal_record_accounting() {
        let mut spec = ExperimentSpec::new(
            "test/cnot",
            Scenario::TransversalCnot {
                patches: 2,
                depth: 4,
                cnots_per_round: 2.0,
            },
            3,
        );
        spec.noise = raa_surface::NoiseModel::uniform(2e-3);
        spec.shots = ShotBudget::Fixed(1_000);
        let r = run(&spec);
        assert_eq!(r.cnots, 4);
        assert_eq!(r.se_rounds, 3);
        assert_eq!(r.patches, 2);
        assert_eq!(r.cnots_per_round, Some(2.0));
        assert!(r.error_per_cnot().is_some());
    }

    #[test]
    fn ghz_record_accounting() {
        let mut spec = ExperimentSpec::new("test/ghz", Scenario::GhzFanout { targets: 3 }, 3);
        spec.noise = raa_surface::NoiseModel::uniform(1e-3);
        spec.shots = ShotBudget::Fixed(500);
        let r = run(&spec);
        assert_eq!(r.patches, 5);
        assert_eq!(r.cnots, 4);
        assert!(r.logical_error_rate() < 0.1);
    }

    #[test]
    fn factory_record_accounting_and_uniform_layers() {
        let mut spec = ExperimentSpec::new(
            "test/factory",
            Scenario::MagicFactory {
                protocol: crate::FactoryProtocol::Ccz,
                rounds: Rounds::Fixed(3),
            },
            3,
        );
        spec.shots = ShotBudget::Fixed(500);
        let circuit = build_circuit(&spec);
        let dpl = spec.scenario.detectors_per_layer(3).unwrap();
        assert_eq!(dpl, 64);
        assert_eq!(circuit.num_detectors(), 3 * dpl);
        let r = run(&spec);
        assert_eq!(r.scenario, "factory_ccz");
        assert_eq!(r.patches, 8);
        assert_eq!(r.se_rounds, 3);
        assert_eq!(r.cnots, 8, "two cycled cube layers of four CNOTs");
        assert_eq!(r.cnots_per_round, None);
        assert!(r.num_dem_errors > 0);
    }

    #[test]
    fn gadget_record_accounting_and_uniform_layers() {
        let mut spec = ExperimentSpec::new(
            "test/gadget",
            Scenario::Gadget {
                kind: crate::GadgetKind::Adder,
                width: 2,
                rounds: Rounds::Fixed(4),
            },
            3,
        );
        spec.shots = ShotBudget::Fixed(500);
        let circuit = build_circuit(&spec);
        let dpl = spec.scenario.detectors_per_layer(3).unwrap();
        assert_eq!(dpl, 5 * 8, "2w + 1 patches");
        assert_eq!(circuit.num_detectors(), 4 * dpl);
        let r = run(&spec);
        assert_eq!(r.scenario, "gadget_adder");
        assert_eq!(r.patches, 5);
        assert_eq!(r.se_rounds, 4);
        assert_eq!(r.cnots, 6, "three cycled MAJ/UMA layers of two CNOTs");
        assert_eq!(r.cnots_per_round, None);
    }

    #[test]
    fn code832_record_accounting_and_uniform_layers() {
        let mut spec = ExperimentSpec::new(
            "test/832",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
            2,
        );
        spec.shots = ShotBudget::Fixed(2_000);
        let circuit = build_circuit(&spec);
        assert_eq!(circuit.num_detectors(), 20, "four per round plus final");
        assert_eq!(circuit.num_detectors() % 4, 0);
        let r = run(&spec);
        assert_eq!(r.scenario, "code832_memory");
        assert_eq!(r.patches, 1);
        assert_eq!(r.cnots, 0);
        assert_eq!(r.se_rounds, 4);
        assert!(r.num_dem_errors > 0);
    }

    #[test]
    #[should_panic(expected = "distance must be 2")]
    fn code832_rejects_wrong_distance() {
        build_circuit(&ExperimentSpec::new(
            "bad",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(2),
            },
            3,
        ));
    }

    #[test]
    fn until_failures_budget_stops_early() {
        let mut spec = memory_spec();
        spec.noise = raa_surface::NoiseModel::uniform(1e-2);
        spec.shots = ShotBudget::UntilFailures {
            max_shots: 1_000_000,
            target_failures: 5,
        };
        let r = run(&spec);
        assert!(r.failures >= 5);
        assert!(r.shots < 1_000_000);
    }

    #[test]
    fn identical_spec_is_bit_identical_across_thread_counts() {
        let spec = memory_spec();
        let base = run(&ExperimentSpec {
            mc: McConfig::default().with_threads(1),
            ..spec.clone()
        });
        for threads in [2usize, 4] {
            let multi = run(&ExperimentSpec {
                mc: McConfig::default().with_threads(threads),
                ..spec.clone()
            });
            assert_eq!(base.to_json(), multi.to_json(), "threads = {threads}");
        }
    }

    #[test]
    fn all_decoders_run_on_memory() {
        for decoder in [
            DecoderChoice::UnionFind,
            DecoderChoice::Matching,
            DecoderChoice::BpUnionFind,
            DecoderChoice::Windowed {
                commit: 2,
                buffer: 2,
            },
        ] {
            let mut spec = memory_spec();
            spec.shots = ShotBudget::Fixed(500);
            spec.decoder = decoder;
            let r = run(&spec);
            assert_eq!(r.shots, 500, "{:?}", decoder);
            assert!(r.logical_error_rate() < 0.2, "{:?}", decoder);
        }
    }

    #[test]
    #[should_panic(expected = "uniformly layered scenario")]
    fn windowed_rejected_for_transversal() {
        let mut spec = ExperimentSpec::new(
            "bad",
            Scenario::TransversalCnot {
                patches: 2,
                depth: 2,
                cnots_per_round: 1.0,
            },
            3,
        );
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 2,
        };
        run(&spec);
    }

    #[test]
    fn deep_cnot_round_accounting_and_uniform_layers() {
        let mut spec = ExperimentSpec::new(
            "test/deep",
            Scenario::DeepCnot {
                patches: 2,
                rounds: Rounds::Fixed(7),
                cnots_per_round: 2.0,
            },
            3,
        );
        spec.noise = raa_surface::NoiseModel::uniform(2e-3);
        spec.shots = ShotBudget::Fixed(500);
        let circuit = build_circuit(&spec);
        let dpl = spec.scenario.detectors_per_layer(3).unwrap();
        assert_eq!(dpl, 16);
        // The round knob is honoured and the detectors layer uniformly.
        assert_eq!(circuit.num_detectors() % dpl, 0);
        assert_eq!(circuit.num_detectors() / dpl, 7);
        let r = run(&spec);
        assert_eq!(r.scenario, "deep_cnot");
        assert_eq!(r.se_rounds, 7);
        assert_eq!(r.cnots, 12, "depth = (rounds-1) * x");
        assert_eq!(r.cnots_per_round, Some(2.0));
        assert!(r.error_per_cnot().is_some());
    }

    #[test]
    fn deep_cnot_fractional_x_never_exceeds_round_budget() {
        // The depth derivation must respect the round knob even when
        // (rounds-1) * x is fractional: at most `rounds` SE rounds,
        // exactly `rounds` when the product is clean.
        for (rounds, x, want_rounds) in [
            (4usize, 0.7, 4usize),
            (2, 1.5, 2),
            // x = 0.5 reaches only odd round counts (1 + 2 per gate): an
            // even budget lands one short, never over.
            (60, 0.5, 59),
            (61, 0.5, 61),
            (7, 2.0, 7),
        ] {
            let mut spec = ExperimentSpec::new(
                "test/deep-frac",
                Scenario::DeepCnot {
                    patches: 2,
                    rounds: Rounds::Fixed(rounds),
                    cnots_per_round: x,
                },
                3,
            );
            spec.noise = raa_surface::NoiseModel::uniform(1e-3);
            let circuit = build_circuit(&spec);
            let layers = circuit.num_detectors() / spec.scenario.detectors_per_layer(3).unwrap();
            assert!(layers <= rounds, "rounds={rounds} x={x}: emitted {layers}");
            assert_eq!(layers, want_rounds, "rounds={rounds} x={x}");
        }
    }

    #[test]
    fn streaming_spec_runs_and_is_thread_deterministic() {
        let mut spec = ExperimentSpec::new(
            "test/streaming",
            Scenario::Memory {
                rounds: Rounds::Fixed(12),
            },
            3,
        );
        spec.noise = raa_surface::NoiseModel::uniform(4e-3);
        spec.shots = ShotBudget::Fixed(1_500);
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 3,
        };
        spec.streaming = true;
        spec.seed = 0x5EED;
        let base = run(&ExperimentSpec {
            mc: McConfig::default().with_threads(1),
            ..spec.clone()
        });
        assert!(base.to_json().contains("\"streaming\":true"));
        assert_eq!(base.shots, 1_500);
        for threads in [2usize, 8] {
            let multi = run(&ExperimentSpec {
                mc: McConfig::default().with_threads(threads),
                ..spec.clone()
            });
            assert_eq!(base.to_json(), multi.to_json(), "threads = {threads}");
        }
    }

    #[test]
    fn streaming_deep_cnot_runs() {
        let mut spec = ExperimentSpec::new(
            "test/deep-streaming",
            Scenario::DeepCnot {
                patches: 2,
                rounds: Rounds::TimesDistance(4),
                cnots_per_round: 1.0,
            },
            3,
        );
        spec.noise = raa_surface::NoiseModel::uniform(2e-3);
        spec.shots = ShotBudget::Fixed(400);
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 4,
        };
        spec.streaming = true;
        let r = run(&spec);
        assert_eq!(r.shots, 400);
        assert_eq!(r.se_rounds, 12);
        // 11 transversal CNOTs at d = 3: the shot-level rate is dominated
        // by the gate count (the per-CNOT rate is what the paper plots).
        assert!(r.logical_error_rate() < 0.3);
        assert!(r.error_per_cnot().unwrap() < 0.05);
    }

    #[test]
    #[should_panic(expected = "requires the windowed decoder")]
    fn streaming_rejected_without_windowed_decoder() {
        let mut spec = memory_spec();
        spec.streaming = true;
        run(&spec);
    }

    #[test]
    #[should_panic(expected = "streaming windowed decode rejected")]
    fn streaming_rejected_with_zero_buffer() {
        let mut spec = memory_spec();
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 0,
        };
        spec.streaming = true;
        run(&spec);
    }

    #[test]
    #[should_panic(expected = "streaming windowed decode rejected")]
    fn streaming_rejected_with_global_window() {
        let mut spec = memory_spec();
        // Way past the circuit's layer count: a "windowed" decode that
        // would actually hold every layer resident.
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 10_000,
        };
        spec.streaming = true;
        run(&spec);
    }

    #[test]
    #[should_panic(expected = "set the DEM sampler")]
    fn streaming_rejected_with_circuit_sampler() {
        let mut spec = memory_spec();
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 2,
        };
        spec.sampler = SamplerChoice::Circuit;
        spec.streaming = true;
        run(&spec);
    }

    #[test]
    fn derived_seeds_are_spread() {
        let a = derive_seed(0, 0);
        let b = derive_seed(0, 1);
        let c = derive_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
