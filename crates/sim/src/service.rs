//! The `raa-sweepd` service core: a shared worker pool serving sweep /
//! calibrate / warm-cache-query jobs over the JSON-lines codec of
//! [`crate::jobs`], built to degrade gracefully instead of crashing.
//!
//! [`SweepService`] owns the pool and a cached [`Orchestrator`]; jobs
//! fan their grid points into one shared queue, so many concurrent
//! clients share the machine fairly instead of each spawning its own
//! pool. Every fault class is contained:
//!
//! - a **panicking point** is caught per point ([`Orchestrator::run_point`]
//!   runs the engine under `catch_unwind`), reported in the job's
//!   `poisoned` list, and entered into a quarantine keyed by the spec's
//!   content-addressed cache key — the same pathological point is refused
//!   on sight in later jobs, and the daemon never dies;
//! - a **slow or stuck job** hits the per-job timeout: the client gets a
//!   clean error, the job is abandoned, and its still-queued points are
//!   shed instead of burning the pool;
//! - a **draining daemon** (SIGTERM or a wire `shutdown` request) lets
//!   in-flight points finish and persist, sheds everything still queued,
//!   and answers new jobs with a clean `shed` response;
//! - a **vanished client** (killed connection) costs nothing: the work
//!   keeps running to completion and persists in the cache, so the retry
//!   is a warm hit;
//! - a **panic while a lock is held** cannot cascade: every Mutex/Condvar
//!   acquisition here is poison-tolerant
//!   (`unwrap_or_else(PoisonError::into_inner)`) — the per-point
//!   `catch_unwind` containment keeps the protected state consistent at
//!   panic boundaries, so poisoning carries no extra information and must
//!   not take the daemon down with a second panic.
//!
//! [`serve`] runs the TCP front end (one JSON line in, one out, per-
//! connection reader threads); [`ServiceClient`] is the matching client
//! used by `raa-cal --` and the load generator.

use crate::calibrate::{fit_calibration, CalibrationConfig};
use crate::error::PoisonedPoint;
use crate::jobs::{QuarantinedPoint, Request, Response, ServiceStatus};
use crate::orchestrator::{
    spec_cache_key, CacheLookup, Orchestrator, PointOutcome, ScrubOptions, ScrubReport,
};
use crate::record::ExperimentRecord;
use crate::spec::ExperimentSpec;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// How the poll loops sleep between checks (accept loop, drain waits).
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Read timeout on connection sockets, so reader threads notice a drain
/// instead of blocking in `read` forever.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Everything a [`SweepService`] is configured by.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Content-addressed record cache; `None` serves every job fresh
    /// (warm queries then always miss).
    pub cache_dir: Option<PathBuf>,
    /// Worker threads in the shared point pool; `0` uses all cores.
    pub workers: usize,
    /// Per-job wall-clock budget: a job not finished by then fails with a
    /// clean error and its queued points are shed.
    pub job_timeout: Duration,
    /// Knobs of cache scrub passes (wire `scrub` requests and the
    /// periodic pass alike).
    pub scrub: ScrubOptions,
    /// Run a background scrub pass this often; `None` scrubs only on
    /// request.
    pub scrub_interval: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_dir: None,
            workers: 0,
            job_timeout: Duration::from_secs(300),
            scrub: ScrubOptions::default(),
            scrub_interval: None,
        }
    }
}

/// The outcome of one grid point of a job.
#[derive(Debug, Clone)]
pub enum PointResult {
    /// The point produced (or replayed) its record.
    Record {
        /// The record.
        record: ExperimentRecord,
        /// Whether it was freshly sampled (vs replayed from the cache).
        fresh: bool,
        /// Whether a corrupt cache entry was found and overwritten.
        replaced_corrupt: bool,
    },
    /// The point's engine run panicked (now, or in an earlier job — the
    /// quarantine refuses known-poisonous points on sight).
    Poisoned {
        /// The spec's record name.
        name: String,
        /// The spec's content-addressed cache key.
        key: String,
        /// The panic message.
        message: String,
    },
    /// The point failed with a typed orchestrator error (cache I/O past
    /// the retry budget).
    Failed {
        /// The error text.
        message: String,
    },
    /// The point never ran: its job was abandoned (timeout) or the daemon
    /// drained while it was still queued.
    Shed,
}

struct JobProgress {
    results: Vec<Option<PointResult>>,
    remaining: usize,
}

/// Shared completion state of one submitted job.
struct JobState {
    progress: Mutex<JobProgress>,
    done: Condvar,
    abandoned: AtomicBool,
}

impl JobState {
    fn complete(&self, index: usize, result: PointResult) -> bool {
        let mut progress = self.progress.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(progress.results[index].is_none(), "point completed twice");
        progress.results[index] = Some(result);
        progress.remaining -= 1;
        let done = progress.remaining == 0;
        if done {
            self.done.notify_all();
        }
        done
    }
}

/// A handle on a submitted job: wait for its per-point results.
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    /// Blocks until every point completed, or until `timeout`: then the
    /// job is marked abandoned — its still-queued points are shed by the
    /// workers — and `None` is returned.
    pub fn wait(&self, timeout: Duration) -> Option<Vec<PointResult>> {
        let deadline = Instant::now() + timeout;
        let mut progress = self
            .state
            .progress
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while progress.remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                self.state.abandoned.store(true, Ordering::Relaxed);
                return None;
            }
            progress = self
                .state
                .done
                .wait_timeout(progress, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        Some(
            progress
                .results
                .iter()
                // raa-audit: allow(panic-path): remaining == 0 means every slot was filled by complete(); a violated invariant is a bug worth failing this waiter loudly, and it can only panic the requesting connection thread, never a pool worker.
                .map(|slot| slot.clone().expect("remaining == 0"))
                .collect(),
        )
    }
}

struct Task {
    job: Arc<JobState>,
    index: usize,
    spec: ExperimentSpec,
}

#[derive(Default)]
struct Counters {
    jobs_completed: AtomicU64,
    points_completed: AtomicU64,
    cache_hits: AtomicU64,
    fresh_points: AtomicU64,
    fresh_shots: AtomicU64,
    corrupt_replaced: AtomicU64,
    shed_points: AtomicU64,
}

struct Inner {
    orch: Orchestrator,
    workers: usize,
    job_timeout: Duration,
    scrub_opts: ScrubOptions,
    scrub_every: Option<Duration>,
    queue: Mutex<VecDeque<Task>>,
    queue_cv: Condvar,
    /// Workers exit once set and the queue is empty.
    stop: AtomicBool,
    /// New jobs are shed once set; queued points were shed at drain time.
    draining: AtomicBool,
    /// Poisoned-point quarantine: cache key → (name, panic message).
    quarantine: Mutex<BTreeMap<String, (String, String)>>,
    counters: Counters,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Inner {
    fn run_task(&self, task: Task) {
        if task.job.abandoned.load(Ordering::Relaxed) {
            self.counters.shed_points.fetch_add(1, Ordering::Relaxed);
            self.finish_point(&task, PointResult::Shed);
            return;
        }
        let key = spec_cache_key(&task.spec);
        let quarantined = self
            .quarantine
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned();
        let result = if let Some((name, message)) = quarantined {
            PointResult::Poisoned {
                name,
                key,
                message: format!("refused: quarantined after earlier panic: {message}"),
            }
        } else {
            match self.orch.run_point(task.index, &task.spec, true) {
                Ok(PointOutcome::Cached(record)) => {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    PointResult::Record {
                        record,
                        fresh: false,
                        replaced_corrupt: false,
                    }
                }
                Ok(PointOutcome::Fresh {
                    record,
                    replaced_corrupt,
                }) => {
                    self.counters.fresh_points.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .fresh_shots
                        .fetch_add(record.shots as u64, Ordering::Relaxed);
                    if replaced_corrupt {
                        self.counters
                            .corrupt_replaced
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    PointResult::Record {
                        record,
                        fresh: true,
                        replaced_corrupt,
                    }
                }
                Ok(PointOutcome::Poisoned(p)) => {
                    self.quarantine
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(p.key.clone(), (p.name.clone(), p.message.clone()));
                    PointResult::Poisoned {
                        name: p.name,
                        key: p.key,
                        message: p.message,
                    }
                }
                Err(e) => PointResult::Failed {
                    message: e.to_string(),
                },
            }
        };
        self.finish_point(&task, result);
    }

    fn finish_point(&self, task: &Task, result: PointResult) {
        self.counters
            .points_completed
            .fetch_add(1, Ordering::Relaxed);
        if task.job.complete(task.index, result) {
            self.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The daemon core: a shared worker pool + cached orchestrator +
/// quarantine, independent of any transport. Clones share the same
/// service.
#[derive(Clone)]
pub struct SweepService {
    inner: Arc<Inner>,
}

impl SweepService {
    /// Starts the worker pool.
    ///
    /// # Errors
    ///
    /// Only opening the cache directory can fail.
    pub fn start(config: ServiceConfig) -> io::Result<SweepService> {
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(4, usize::from)
        } else {
            config.workers
        };
        // Each worker runs whole points single-threaded (determinism makes
        // that free); panic isolation is per point via run_point.
        let mut orch = Orchestrator::new()
            .with_point_threads(1)
            .with_panic_isolation(true);
        if let Some(dir) = &config.cache_dir {
            orch = orch.with_cache_dir(dir)?;
        }
        let inner = Arc::new(Inner {
            orch,
            workers,
            job_timeout: config.job_timeout,
            scrub_opts: config.scrub,
            scrub_every: config.scrub_interval,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            quarantine: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker = Arc::clone(&inner);
            let handle = thread::Builder::new()
                .name(format!("raa-sweepd-worker-{i}"))
                .spawn(move || loop {
                    let task = {
                        let mut queue = worker.queue.lock().unwrap_or_else(PoisonError::into_inner);
                        loop {
                            if let Some(task) = queue.pop_front() {
                                break Some(task);
                            }
                            if worker.stop.load(Ordering::Relaxed) {
                                break None;
                            }
                            queue = worker
                                .queue_cv
                                .wait(queue)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                    };
                    match task {
                        Some(task) => worker.run_task(task),
                        None => return,
                    }
                })?;
            handles.push(handle);
        }
        *inner.handles.lock().unwrap_or_else(PoisonError::into_inner) = handles;
        Ok(SweepService { inner })
    }

    /// Whether the service is draining (new jobs are shed).
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::Relaxed)
    }

    /// Enters drain mode: new jobs are refused, every still-queued point
    /// is shed with a clean result, in-flight points finish (and persist).
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::Relaxed);
        let shed: Vec<Task> = {
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            queue.drain(..).collect()
        };
        for task in shed {
            self.inner
                .counters
                .shed_points
                .fetch_add(1, Ordering::Relaxed);
            self.inner.finish_point(&task, PointResult::Shed);
        }
        self.inner.queue_cv.notify_all();
    }

    /// Drains, stops the workers once the queue is empty, and joins them —
    /// every in-flight point has finished and persisted when this returns.
    pub fn shutdown(&self) {
        self.drain();
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
        let handles: Vec<_> = self
            .inner
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Submits one job of grid points onto the shared pool; `None` when
    /// the service is draining (the caller answers `shed`).
    pub fn submit(&self, specs: Vec<ExperimentSpec>) -> Option<JobHandle> {
        let n = specs.len();
        let state = Arc::new(JobState {
            progress: Mutex::new(JobProgress {
                results: vec![None; n],
                remaining: n,
            }),
            done: Condvar::new(),
            abandoned: AtomicBool::new(false),
        });
        {
            // Checked under the queue lock so a concurrent drain either
            // sees these tasks (and sheds them) or we see the flag.
            let mut queue = self
                .inner
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if self.is_draining() {
                return None;
            }
            for (index, spec) in specs.into_iter().enumerate() {
                queue.push_back(Task {
                    job: Arc::clone(&state),
                    index,
                    spec,
                });
            }
        }
        self.inner.queue_cv.notify_all();
        Some(JobHandle { state })
    }

    /// One cache scrub pass with the service's configured options.
    ///
    /// # Errors
    ///
    /// An error string when no cache is attached or the cache directory
    /// cannot be scanned.
    pub fn scrub_pass(&self) -> Result<ScrubReport, String> {
        let cache = self
            .inner
            .orch
            .cache()
            .ok_or("no cache attached: nothing to scrub")?;
        cache
            .scrub(&self.inner.scrub_opts)
            .map_err(|e| e.to_string())
    }

    /// The current health/counters snapshot.
    pub fn status(&self) -> ServiceStatus {
        let c = &self.inner.counters;
        ServiceStatus {
            draining: self.is_draining(),
            workers: self.inner.workers,
            jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
            points_completed: c.points_completed.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            fresh_points: c.fresh_points.load(Ordering::Relaxed),
            fresh_shots: c.fresh_shots.load(Ordering::Relaxed),
            corrupt_replaced: c.corrupt_replaced.load(Ordering::Relaxed),
            shed_points: c.shed_points.load(Ordering::Relaxed),
            quarantined: self
                .inner
                .quarantine
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(key, (name, message))| QuarantinedPoint {
                    key: key.clone(),
                    name: name.clone(),
                    message: message.clone(),
                })
                .collect(),
        }
    }

    /// Serves one request to completion — the single dispatch point shared
    /// by the TCP front end and in-process callers. Never panics; every
    /// failure is a typed `error`/`shed` response.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Sweep { id, specs } => self.handle_sweep(id, specs),
            Request::Query { id, specs } => self.handle_query(id, &specs),
            Request::Calibrate { id, config } => self.handle_calibrate(id, config),
            Request::Status { id } => Response::Status {
                id,
                status: self.status(),
            },
            Request::Scrub { id } => match self.scrub_pass() {
                Ok(report) => Response::Scrub { id, report },
                Err(message) => Response::Error { id, message },
            },
            Request::Shutdown { id } => {
                self.drain();
                Response::Draining { id }
            }
        }
    }

    fn handle_sweep(&self, id: String, specs: Vec<ExperimentSpec>) -> Response {
        let Some(job) = self.submit(specs) else {
            return Response::Shed {
                id,
                message: "daemon draining: job not accepted".into(),
            };
        };
        let Some(results) = job.wait(self.inner.job_timeout) else {
            return Response::Error {
                id,
                message: format!(
                    "job exceeded its {:?} timeout; queued points shed",
                    self.inner.job_timeout
                ),
            };
        };
        let mut fresh_points = 0usize;
        let mut cached_points = 0usize;
        let mut fresh_shots = 0usize;
        let mut corrupt_replaced = 0usize;
        let mut poisoned = Vec::new();
        let mut records = Vec::with_capacity(results.len());
        let mut failure = None;
        for (index, result) in results.into_iter().enumerate() {
            match result {
                PointResult::Record {
                    record,
                    fresh,
                    replaced_corrupt,
                } => {
                    if fresh {
                        fresh_points += 1;
                        fresh_shots += record.shots;
                        corrupt_replaced += usize::from(replaced_corrupt);
                    } else {
                        cached_points += 1;
                    }
                    records.push(Some(record));
                }
                PointResult::Poisoned { name, key, message } => {
                    poisoned.push(PoisonedPoint {
                        index,
                        name,
                        key,
                        message,
                    });
                    records.push(None);
                }
                PointResult::Failed { message } => {
                    failure.get_or_insert(format!("point #{index}: {message}"));
                    records.push(None);
                }
                PointResult::Shed => records.push(None),
            }
        }
        match failure {
            // A typed failure (I/O past the retry budget) fails the job as
            // a whole; poisoned/shed points do not.
            Some(message) => Response::Error { id, message },
            None => Response::Sweep {
                id,
                fresh_points,
                cached_points,
                fresh_shots,
                corrupt_replaced,
                poisoned,
                records,
            },
        }
    }

    /// Warm-cache queries never sample and never queue: they are answered
    /// inline from the cache (misses stay `null`).
    fn handle_query(&self, id: String, specs: &[ExperimentSpec]) -> Response {
        let mut hits = 0;
        let mut misses = 0;
        let records = specs
            .iter()
            .map(|spec| {
                match self
                    .inner
                    .orch
                    .cache()
                    .map_or(CacheLookup::Miss, |cache| cache.lookup(spec))
                {
                    CacheLookup::Hit(record) => {
                        hits += 1;
                        self.inner
                            .counters
                            .cache_hits
                            .fetch_add(1, Ordering::Relaxed);
                        Some(record)
                    }
                    CacheLookup::Miss | CacheLookup::Corrupt(_) => {
                        misses += 1;
                        None
                    }
                }
            })
            .collect();
        Response::Query {
            id,
            hits,
            misses,
            records,
        }
    }

    fn handle_calibrate(&self, id: String, config: CalibrationConfig) -> Response {
        // The error side is boxed: a `Response` is wire-sized, not
        // error-sized, and would bloat the happy path's `Result`.
        type GridOutcome = Result<(Vec<ExperimentRecord>, usize, usize, usize), Box<Response>>;
        let run_grid = |specs: Vec<ExperimentSpec>| -> GridOutcome {
            let job = self.submit(specs).ok_or_else(|| {
                Box::new(Response::Shed {
                    id: id.clone(),
                    message: "daemon draining: job not accepted".into(),
                })
            })?;
            let results = job.wait(self.inner.job_timeout).ok_or_else(|| {
                Box::new(Response::Error {
                    id: id.clone(),
                    message: format!(
                        "calibration exceeded its {:?} timeout",
                        self.inner.job_timeout
                    ),
                })
            })?;
            let mut records = Vec::with_capacity(results.len());
            let (mut fresh, mut cached, mut shots) = (0, 0, 0);
            for (index, result) in results.into_iter().enumerate() {
                match result {
                    PointResult::Record {
                        record, fresh: f, ..
                    } => {
                        if f {
                            fresh += 1;
                            shots += record.shots;
                        } else {
                            cached += 1;
                        }
                        records.push(record);
                    }
                    // A calibration cannot tolerate holes: the fit needs
                    // every grid point.
                    PointResult::Poisoned { name, message, .. } => {
                        return Err(Box::new(Response::Error {
                            id: id.clone(),
                            message: format!("calibration point {name:?} poisoned: {message}"),
                        }))
                    }
                    PointResult::Failed { message } => {
                        return Err(Box::new(Response::Error {
                            id: id.clone(),
                            message: format!("calibration point #{index} failed: {message}"),
                        }))
                    }
                    PointResult::Shed => {
                        return Err(Box::new(Response::Shed {
                            id: id.clone(),
                            message: "daemon drained mid-calibration".into(),
                        }))
                    }
                }
            }
            Ok((records, fresh, cached, shots))
        };
        let (memory_records, m_fresh, m_cached, m_shots) =
            match run_grid(config.memory_grid().specs()) {
                Ok(out) => out,
                Err(response) => return *response,
            };
        let (cnot_records, c_fresh, c_cached, c_shots) = match run_grid(config.cnot_grid().specs())
        {
            Ok(out) => out,
            Err(response) => return *response,
        };
        match fit_calibration(
            &config,
            memory_records,
            cnot_records,
            m_fresh + c_fresh,
            m_cached + c_cached,
            m_shots + c_shots,
        ) {
            Ok(calibration) => Response::Calibrate { id, calibration },
            Err(e) => Response::Error {
                id,
                message: e.to_string(),
            },
        }
    }
}

/// Runs the TCP front end until `shutdown` is raised (SIGTERM handler) or
/// a wire `shutdown` request drains the service: accepts connections,
/// spawns one reader thread per connection, then drains — in-flight
/// points finish and persist before this returns.
///
/// # Errors
///
/// Only listener configuration errors; per-connection failures are
/// contained in their threads.
pub fn serve(
    listener: TcpListener,
    service: &SweepService,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut connections = Vec::new();
    let mut last_scrub = Instant::now();
    loop {
        if shutdown.load(Ordering::Relaxed) && !service.is_draining() {
            service.drain();
        }
        if service.is_draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_service = service.clone();
                connections.push(thread::spawn(move || {
                    handle_connection(stream, conn_service)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        if let Some(interval) = service.inner.scrub_every {
            if last_scrub.elapsed() >= interval {
                let _ = service.scrub_pass();
                last_scrub = Instant::now();
            }
        }
    }
    // Graceful drain: wait for the reader threads (they exit on their read
    // timeout once draining), then stop the workers (joining them implies
    // every in-flight point finished and persisted).
    for connection in connections {
        let _ = connection.join();
    }
    service.shutdown();
    Ok(())
}

fn handle_connection(stream: TcpStream, service: SweepService) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {
                let response = if line.trim().is_empty() {
                    line.clear();
                    continue;
                } else {
                    match Request::from_line(&line) {
                        Ok(request) => service.handle(request),
                        // A malformed line answers with an error and keeps
                        // the connection: one bad request must not cost the
                        // client its session.
                        Err(e) => Response::Error {
                            id: String::new(),
                            message: format!("malformed request: {e}"),
                        },
                    }
                };
                line.clear();
                let mut out = response.to_line();
                out.push('\n');
                if writer
                    .write_all(out.as_bytes())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // The client vanished mid-job (the killed-connection
                    // fault): the results are already persisted in the
                    // cache, so the retry will be a warm hit. Just hang up.
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: `line` keeps any partial bytes already
                // read; a drain ends the session.
                if service.is_draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// A blocking JSON-lines client of `raa-sweepd`, one request/response at a
/// time over one TCP connection.
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServiceClient {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Connection establishment only.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            reader,
            writer,
            next_id: 0,
        })
    }

    fn fresh_id(&mut self, kind: &str) -> String {
        self.next_id += 1;
        format!("{kind}-{}-{}", std::process::id(), self.next_id)
    }

    /// Sends one request and blocks for its response line.
    ///
    /// # Errors
    ///
    /// Transport failures, or `InvalidData` when the response line does
    /// not decode.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response_line = String::new();
        if self.reader.read_line(&mut response_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        Response::from_line(&response_line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Runs a sweep job (cache-first, sampling misses).
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn sweep(&mut self, specs: &[ExperimentSpec]) -> io::Result<Response> {
        let id = self.fresh_id("sweep");
        self.request(&Request::Sweep {
            id,
            specs: specs.to_vec(),
        })
    }

    /// Runs a warm-cache query (never samples).
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn query(&mut self, specs: &[ExperimentSpec]) -> io::Result<Response> {
        let id = self.fresh_id("query");
        self.request(&Request::Query {
            id,
            specs: specs.to_vec(),
        })
    }

    /// Runs the full calibration chain on the daemon.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn calibrate(&mut self, config: &CalibrationConfig) -> io::Result<Response> {
        let id = self.fresh_id("cal");
        self.request(&Request::Calibrate {
            id,
            config: config.clone(),
        })
    }

    /// Fetches the daemon's health/counters snapshot.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn status(&mut self) -> io::Result<Response> {
        let id = self.fresh_id("status");
        self.request(&Request::Status { id })
    }

    /// Triggers one cache scrub pass.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn scrub(&mut self) -> io::Result<Response> {
        let id = self.fresh_id("scrub");
        self.request(&Request::Scrub { id })
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`ServiceClient::request`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        let id = self.fresh_id("shutdown");
        self.request(&Request::Shutdown { id })
    }
}
