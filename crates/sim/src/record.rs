//! Experiment result records with deterministic JSON serialization.
//!
//! A record is the full, self-describing outcome of one engine run: the
//! spec echo (scenario, geometry, noise, decoder, seed), the circuit/DEM
//! shape and the decode statistics. Serialization is hand-rolled (the build
//! has no serde) with a fixed key order and shortest-round-trip float
//! formatting, so for a given spec the JSON is **byte-identical across
//! runs, platforms and thread counts** — the property the engine's
//! determinism tests pin. [`ExperimentRecord::from_json`] parses the same
//! format back losslessly (`from_json ∘ to_json = id`, proptest-pinned),
//! which is what lets the sweep orchestrator's on-disk cache replay
//! records byte-for-byte.

use raa_surface::experiments::per_unit_rate;
use raa_surface::{Basis, NoiseModel};

/// The result of running one [`crate::ExperimentSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Spec name.
    pub name: String,
    /// Scenario label ("memory", "transversal_cnot", "ghz_fanout").
    pub scenario: String,
    /// Code distance.
    pub distance: u32,
    /// Logical basis protected.
    pub basis: Basis,
    /// Number of logical patches.
    pub patches: usize,
    /// Transversal CNOTs in the circuit (0 for memory).
    pub cnots: usize,
    /// Syndrome-extraction rounds executed.
    pub se_rounds: usize,
    /// CNOTs per SE round (the paper's `x`), when the scenario has one.
    pub cnots_per_round: Option<f64>,
    /// Circuit-level noise strengths.
    pub noise: NoiseModel,
    /// Decoder label.
    pub decoder: String,
    /// Sampling-path label ("dem", "circuit").
    pub sampler: String,
    /// Whether the Monte-Carlo decode streamed one time layer at a time
    /// (bounded-memory windowed pipeline) instead of materializing whole
    /// batches.
    pub streaming: bool,
    /// Spec seed.
    pub seed: u64,
    /// Detectors in the circuit.
    pub num_detectors: usize,
    /// Error mechanisms in the extracted DEM.
    pub num_dem_errors: usize,
    /// Hyperedges needing arbitrary pairing during graphlike decomposition.
    pub arbitrary_decompositions: usize,
    /// Shots decoded.
    pub shots: usize,
    /// Shots where the decoder mispredicted the observable mask.
    pub failures: usize,
}

impl ExperimentRecord {
    /// The logical error rate estimate (failures / shots).
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Binomial standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.logical_error_rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Logical error rate per logical qubit per SE round, assuming
    /// independent additive errors.
    pub fn error_per_qubit_round(&self) -> f64 {
        per_unit_rate(
            self.logical_error_rate(),
            (self.patches * self.se_rounds) as f64,
        )
    }

    /// Logical error rate per transversal CNOT, when the circuit has any.
    pub fn error_per_cnot(&self) -> Option<f64> {
        (self.cnots > 0).then(|| per_unit_rate(self.logical_error_rate(), self.cnots as f64))
    }

    /// Serializes the record to one line of JSON with a fixed key order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        json_str(&mut s, "name", &self.name);
        json_str(&mut s, "scenario", &self.scenario);
        json_num(&mut s, "distance", self.distance as f64);
        json_str(
            &mut s,
            "basis",
            match self.basis {
                Basis::Z => "Z",
                Basis::X => "X",
            },
        );
        json_num(&mut s, "patches", self.patches as f64);
        json_num(&mut s, "cnots", self.cnots as f64);
        json_num(&mut s, "se_rounds", self.se_rounds as f64);
        json_opt(&mut s, "cnots_per_round", self.cnots_per_round);
        json_num(&mut s, "p2", self.noise.p2);
        json_num(&mut s, "p_idle", self.noise.p_idle);
        json_num(&mut s, "p_prep", self.noise.p_prep);
        json_num(&mut s, "p_meas", self.noise.p_meas);
        json_str(&mut s, "decoder", &self.decoder);
        json_str(&mut s, "sampler", &self.sampler);
        json_bool(&mut s, "streaming", self.streaming);
        // u64 seeds overflow JSON's interoperable double range: keep as text.
        json_str(&mut s, "seed", &self.seed.to_string());
        json_num(&mut s, "num_detectors", self.num_detectors as f64);
        json_num(&mut s, "num_dem_errors", self.num_dem_errors as f64);
        json_num(
            &mut s,
            "arbitrary_decompositions",
            self.arbitrary_decompositions as f64,
        );
        json_num(&mut s, "shots", self.shots as f64);
        json_num(&mut s, "failures", self.failures as f64);
        json_num(&mut s, "logical_error_rate", self.logical_error_rate());
        json_num(&mut s, "standard_error", self.standard_error());
        json_num(
            &mut s,
            "error_per_qubit_round",
            self.error_per_qubit_round(),
        );
        json_opt(&mut s, "error_per_cnot", self.error_per_cnot());
        s.pop(); // trailing comma
        s.push('}');
        s
    }
}

impl ExperimentRecord {
    /// Parses a record from the JSON produced by [`ExperimentRecord::to_json`].
    ///
    /// The parser accepts any flat JSON object (keys in any order, unknown
    /// keys ignored — derived rates like `logical_error_rate` are
    /// recomputed, not read back). Because `to_json` uses shortest
    /// round-trip float formatting and text-encodes the `seed` (u64 values
    /// overflow JSON's interoperable double range), the composition
    /// `from_json ∘ to_json` is the identity, field for field and therefore
    /// byte for byte on re-serialization.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: malformed JSON, a
    /// missing required field, or a field value of the wrong type/range
    /// (e.g. a fractional `shots`, a seed that is not a `u64`, an unknown
    /// `basis` letter).
    pub fn from_json(s: &str) -> Result<Self, String> {
        let fields = parse_flat_object(s)?;
        let get = |key: &str| -> Result<&JsonValue, String> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field \"{key}\""))
        };
        let get_str = |key: &str| -> Result<String, String> {
            match get(key)? {
                JsonValue::Str(v) => Ok(v.clone()),
                other => Err(format!("field \"{key}\": expected string, got {other:?}")),
            }
        };
        let get_f64 = |key: &str| -> Result<f64, String> {
            match get(key)? {
                JsonValue::Num(v) => Ok(*v),
                other => Err(format!("field \"{key}\": expected number, got {other:?}")),
            }
        };
        let get_usize = |key: &str| -> Result<usize, String> {
            let v = get_f64(key)?;
            if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                Ok(v as usize)
            } else {
                Err(format!(
                    "field \"{key}\": expected non-negative integer, got {v}"
                ))
            }
        };
        let get_bool = |key: &str| -> Result<bool, String> {
            match get(key)? {
                JsonValue::Bool(v) => Ok(*v),
                other => Err(format!("field \"{key}\": expected bool, got {other:?}")),
            }
        };
        let get_opt_f64 = |key: &str| -> Result<Option<f64>, String> {
            match get(key)? {
                JsonValue::Num(v) => Ok(Some(*v)),
                JsonValue::Null => Ok(None),
                other => Err(format!(
                    "field \"{key}\": expected number or null, got {other:?}"
                )),
            }
        };
        let basis = match get_str("basis")?.as_str() {
            "Z" => Basis::Z,
            "X" => Basis::X,
            other => return Err(format!("field \"basis\": unknown basis {other:?}")),
        };
        let seed_text = get_str("seed")?;
        let seed: u64 = seed_text
            .parse()
            .map_err(|_| format!("field \"seed\": not a u64: {seed_text:?}"))?;
        let distance = u32::try_from(get_usize("distance")?)
            .map_err(|_| "field \"distance\": exceeds u32".to_string())?;
        Ok(ExperimentRecord {
            name: get_str("name")?,
            scenario: get_str("scenario")?,
            distance,
            basis,
            patches: get_usize("patches")?,
            cnots: get_usize("cnots")?,
            se_rounds: get_usize("se_rounds")?,
            cnots_per_round: get_opt_f64("cnots_per_round")?,
            noise: NoiseModel {
                p2: get_f64("p2")?,
                p_idle: get_f64("p_idle")?,
                p_prep: get_f64("p_prep")?,
                p_meas: get_f64("p_meas")?,
            },
            decoder: get_str("decoder")?,
            sampler: get_str("sampler")?,
            streaming: get_bool("streaming")?,
            seed,
            num_detectors: get_usize("num_detectors")?,
            num_dem_errors: get_usize("num_dem_errors")?,
            arbitrary_decompositions: get_usize("arbitrary_decompositions")?,
            shots: get_usize("shots")?,
            failures: get_usize("failures")?,
        })
    }
}

/// Serializes records as newline-delimited JSON (one record per line).
pub fn to_json_lines(records: &[ExperimentRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

fn json_key(s: &mut String, key: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn json_str(s: &mut String, key: &str, value: &str) {
    json_key(s, key);
    s.push('"');
    for ch in value.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push_str("\",");
}

fn json_bool(s: &mut String, key: &str, value: bool) {
    json_key(s, key);
    s.push_str(if value { "true" } else { "false" });
    s.push(',');
}

fn json_num(s: &mut String, key: &str, value: f64) {
    json_key(s, key);
    if value.is_finite() {
        // Shortest round-trip formatting: deterministic and lossless.
        s.push_str(&format!("{value}"));
    } else {
        s.push_str("null");
    }
    s.push(',');
}

fn json_opt(s: &mut String, key: &str, value: Option<f64>) {
    match value {
        Some(v) => json_num(s, key, v),
        None => {
            json_key(s, key);
            s.push_str("null,");
        }
    }
}

/// Parses newline-delimited JSON records ([`to_json_lines`] output); blank
/// lines are skipped. Fails on the first malformed record, identifying its
/// line number.
pub fn parse_json_lines(text: &str) -> Result<Vec<ExperimentRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            ExperimentRecord::from_json(line).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// One value of a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parses a single flat JSON object (no nesting — the record format) into
/// its key/value pairs in document order.
fn parse_flat_object(s: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes after object at offset {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected literal {word:?} at offset {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number {text:?}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("malformed \\u escape {hex:?}"))?;
                        self.pos += 4;
                        // The writer only emits \u for control characters
                        // (< 0x20), so surrogate pairs never occur here.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("unknown escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid — find the char at this byte position.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                    let _ = b;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record() -> ExperimentRecord {
        ExperimentRecord {
            name: "t/d3".into(),
            scenario: "memory".into(),
            distance: 3,
            basis: Basis::Z,
            patches: 1,
            cnots: 0,
            se_rounds: 6,
            cnots_per_round: None,
            noise: NoiseModel::uniform(1e-3),
            decoder: "union_find".into(),
            sampler: "dem".into(),
            streaming: false,
            seed: u64::MAX,
            num_detectors: 24,
            num_dem_errors: 100,
            arbitrary_decompositions: 0,
            shots: 10_000,
            failures: 25,
        }
    }

    #[test]
    fn derived_rates() {
        let r = record();
        assert!((r.logical_error_rate() - 0.0025).abs() < 1e-12);
        assert!(r.standard_error() > 0.0);
        assert!(r.error_per_qubit_round() > 0.0);
        assert!(r.error_per_qubit_round() < r.logical_error_rate());
        assert_eq!(r.error_per_cnot(), None);
        let mut with_cnots = record();
        with_cnots.cnots = 8;
        assert!(with_cnots.error_per_cnot().unwrap() > 0.0);
    }

    #[test]
    fn json_shape() {
        let j = record().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"name\":\"t/d3\""));
        assert!(j.contains("\"cnots_per_round\":null"));
        assert!(j.contains("\"sampler\":\"dem\""));
        assert!(j.contains("\"streaming\":false"));
        let mut streamed = record();
        streamed.streaming = true;
        assert!(streamed.to_json().contains("\"streaming\":true"));
        assert!(j.contains("\"seed\":\"18446744073709551615\""));
        assert!(j.contains("\"p2\":0.001"));
        assert!(j.contains("\"failures\":25"));
        assert!(!j.contains(",}"), "no trailing comma: {j}");
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = record();
        r.name = "a\"b\\c\nd".into();
        let j = r.to_json();
        assert!(j.contains(r#""name":"a\"b\\c\nd""#), "{j}");
    }

    #[test]
    fn json_lines_one_per_record() {
        let lines = to_json_lines(&[record(), record()]);
        assert_eq!(lines.lines().count(), 2);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn zero_shot_record_is_safe() {
        let mut r = record();
        r.shots = 0;
        r.failures = 0;
        assert_eq!(r.logical_error_rate(), 0.0);
        assert_eq!(r.standard_error(), 0.0);
        assert!(r.to_json().contains("\"logical_error_rate\":0"));
    }

    #[test]
    fn from_json_round_trips_sample_record() {
        let r = record();
        let parsed = ExperimentRecord::from_json(&r.to_json()).expect("well-formed");
        assert_eq!(parsed, r);
        // And the bytes themselves survive a second serialization.
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn from_json_round_trips_tricky_fields() {
        let mut r = record();
        // The fields most likely to lose information in a JSON trip: a u64
        // seed beyond 2^53 (text-encoded), a present cnots_per_round, a
        // name needing escapes, an X basis and the streaming flag.
        r.seed = u64::MAX - 1;
        r.cnots = 8;
        r.cnots_per_round = Some(1.25);
        r.name = "a\"b\\c\nd\té\u{1}".into();
        r.basis = Basis::X;
        r.streaming = true;
        let parsed = ExperimentRecord::from_json(&r.to_json()).expect("well-formed");
        assert_eq!(parsed, r);
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn from_json_accepts_unknown_keys_and_any_order() {
        let j = r#"{"shots":10,"failures":1,"name":"n","scenario":"memory","distance":3,
            "basis":"Z","patches":1,"cnots":0,"se_rounds":2,"cnots_per_round":null,
            "p2":0.001,"p_idle":0.001,"p_prep":0.001,"p_meas":0.001,
            "decoder":"union_find","sampler":"dem","streaming":false,"seed":"7",
            "num_detectors":8,"num_dem_errors":40,"arbitrary_decompositions":0,
            "future_field":"ignored","logical_error_rate":0.1}"#
            .replace('\n', "");
        let r = ExperimentRecord::from_json(&j).expect("unknown keys are fine");
        assert_eq!(r.shots, 10);
        assert_eq!(r.seed, 7);
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        let good = record().to_json();
        assert!(ExperimentRecord::from_json("").is_err());
        assert!(ExperimentRecord::from_json("[]").is_err());
        assert!(
            ExperimentRecord::from_json(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        assert!(
            ExperimentRecord::from_json(&format!("{good}x")).is_err(),
            "trailing bytes"
        );
        let missing = good.replace("\"shots\":10000,", "");
        assert!(ExperimentRecord::from_json(&missing)
            .unwrap_err()
            .contains("shots"));
        let bad_seed = good.replace(
            "\"seed\":\"18446744073709551615\"",
            "\"seed\":\"not-a-number\"",
        );
        assert!(ExperimentRecord::from_json(&bad_seed)
            .unwrap_err()
            .contains("seed"));
        let bad_basis = good.replace("\"basis\":\"Z\"", "\"basis\":\"Y\"");
        assert!(ExperimentRecord::from_json(&bad_basis)
            .unwrap_err()
            .contains("basis"));
        let fractional = good.replace("\"shots\":10000", "\"shots\":10000.5");
        assert!(ExperimentRecord::from_json(&fractional)
            .unwrap_err()
            .contains("shots"));
    }

    #[test]
    fn parse_json_lines_round_trips_and_reports_line_numbers() {
        let records = vec![record(), record()];
        let text = to_json_lines(&records);
        assert_eq!(parse_json_lines(&text).expect("well-formed"), records);
        let broken = format!("{}\nnot json\n", records[0].to_json());
        assert!(parse_json_lines(&broken).unwrap_err().starts_with("line 2"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `from_json ∘ to_json = id` over randomized records, including
        /// escape-heavy names, u64 seeds, optional fields and arbitrary
        /// shortest-round-trip floats.
        #[test]
        fn json_round_trip_is_identity(
            name_bytes in collection::vec(0u8..100, 0..12),
            seed in any::<u64>(),
            geometry in (3u32..40, 1usize..6, 0usize..200, 1usize..400),
            noise in (0.0f64..0.1, 0.0f64..0.1, 0.0f64..0.1, 0.0f64..0.1),
            x_and_flags in (0.05f64..8.0, any::<bool>(), any::<bool>(), any::<bool>()),
            counts in (0usize..100_000, 0u32..1_000, 0usize..5_000, 0usize..10_000),
            scenario_idx in 0usize..11,
        ) {
            let name: String = name_bytes
                .iter()
                .map(|&b| match b {
                    0..=94 => (32 + b) as char, // printable ASCII incl. " and \
                    95 => '\n',
                    96 => '\t',
                    97 => '\r',
                    98 => '\u{1}', // control char ->  escape
                    _ => 'λ',      // multi-byte UTF-8
                })
                .collect();
            let (x, has_x, streaming, basis_x) = x_and_flags;
            let (shots, failure_frac, detectors, dem_errors) = counts;
            // Every label the engine emits, including the factory/gadget
            // skeletons and the [[8,3,2]] block.
            let scenario = [
                "memory", "transversal_cnot", "ghz_fanout", "deep_cnot",
                "factory_distill15", "factory_ccz", "factory_cultivation",
                "gadget_adder", "gadget_lookup", "gadget_fanout",
                "code832_memory",
            ][scenario_idx];
            let record = ExperimentRecord {
                name,
                scenario: scenario.into(),
                distance: geometry.0,
                basis: if basis_x { Basis::X } else { Basis::Z },
                patches: geometry.1,
                cnots: geometry.2,
                se_rounds: geometry.3,
                cnots_per_round: has_x.then_some(x),
                noise: NoiseModel {
                    p2: noise.0,
                    p_idle: noise.1,
                    p_prep: noise.2,
                    p_meas: noise.3,
                },
                decoder: "windowed_2+3".into(),
                sampler: "dem".into(),
                streaming,
                seed,
                num_detectors: detectors,
                num_dem_errors: dem_errors,
                arbitrary_decompositions: 0,
                shots,
                failures: shots * failure_frac as usize / 1_000,
            };
            let json = record.to_json();
            let parsed = ExperimentRecord::from_json(&json).expect("own output parses");
            prop_assert_eq!(&parsed, &record, "json: {}", json);
            prop_assert_eq!(parsed.to_json(), json);
        }
    }
}
