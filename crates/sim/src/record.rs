//! Experiment result records with deterministic JSON serialization.
//!
//! A record is the full, self-describing outcome of one engine run: the
//! spec echo (scenario, geometry, noise, decoder, seed), the circuit/DEM
//! shape and the decode statistics. Serialization is hand-rolled (the build
//! has no serde) with a fixed key order and shortest-round-trip float
//! formatting, so for a given spec the JSON is **byte-identical across
//! runs, platforms and thread counts** — the property the engine's
//! determinism tests pin.

use raa_surface::experiments::per_unit_rate;
use raa_surface::{Basis, NoiseModel};

/// The result of running one [`crate::ExperimentSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Spec name.
    pub name: String,
    /// Scenario label ("memory", "transversal_cnot", "ghz_fanout").
    pub scenario: String,
    /// Code distance.
    pub distance: u32,
    /// Logical basis protected.
    pub basis: Basis,
    /// Number of logical patches.
    pub patches: usize,
    /// Transversal CNOTs in the circuit (0 for memory).
    pub cnots: usize,
    /// Syndrome-extraction rounds executed.
    pub se_rounds: usize,
    /// CNOTs per SE round (the paper's `x`), when the scenario has one.
    pub cnots_per_round: Option<f64>,
    /// Circuit-level noise strengths.
    pub noise: NoiseModel,
    /// Decoder label.
    pub decoder: String,
    /// Sampling-path label ("dem", "circuit").
    pub sampler: String,
    /// Whether the Monte-Carlo decode streamed one time layer at a time
    /// (bounded-memory windowed pipeline) instead of materializing whole
    /// batches.
    pub streaming: bool,
    /// Spec seed.
    pub seed: u64,
    /// Detectors in the circuit.
    pub num_detectors: usize,
    /// Error mechanisms in the extracted DEM.
    pub num_dem_errors: usize,
    /// Hyperedges needing arbitrary pairing during graphlike decomposition.
    pub arbitrary_decompositions: usize,
    /// Shots decoded.
    pub shots: usize,
    /// Shots where the decoder mispredicted the observable mask.
    pub failures: usize,
}

impl ExperimentRecord {
    /// The logical error rate estimate (failures / shots).
    pub fn logical_error_rate(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.failures as f64 / self.shots as f64
        }
    }

    /// Binomial standard error of the estimate.
    pub fn standard_error(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        let p = self.logical_error_rate();
        (p * (1.0 - p) / self.shots as f64).sqrt()
    }

    /// Logical error rate per logical qubit per SE round, assuming
    /// independent additive errors.
    pub fn error_per_qubit_round(&self) -> f64 {
        per_unit_rate(
            self.logical_error_rate(),
            (self.patches * self.se_rounds) as f64,
        )
    }

    /// Logical error rate per transversal CNOT, when the circuit has any.
    pub fn error_per_cnot(&self) -> Option<f64> {
        (self.cnots > 0).then(|| per_unit_rate(self.logical_error_rate(), self.cnots as f64))
    }

    /// Serializes the record to one line of JSON with a fixed key order.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        json_str(&mut s, "name", &self.name);
        json_str(&mut s, "scenario", &self.scenario);
        json_num(&mut s, "distance", self.distance as f64);
        json_str(
            &mut s,
            "basis",
            match self.basis {
                Basis::Z => "Z",
                Basis::X => "X",
            },
        );
        json_num(&mut s, "patches", self.patches as f64);
        json_num(&mut s, "cnots", self.cnots as f64);
        json_num(&mut s, "se_rounds", self.se_rounds as f64);
        json_opt(&mut s, "cnots_per_round", self.cnots_per_round);
        json_num(&mut s, "p2", self.noise.p2);
        json_num(&mut s, "p_idle", self.noise.p_idle);
        json_num(&mut s, "p_prep", self.noise.p_prep);
        json_num(&mut s, "p_meas", self.noise.p_meas);
        json_str(&mut s, "decoder", &self.decoder);
        json_str(&mut s, "sampler", &self.sampler);
        json_bool(&mut s, "streaming", self.streaming);
        // u64 seeds overflow JSON's interoperable double range: keep as text.
        json_str(&mut s, "seed", &self.seed.to_string());
        json_num(&mut s, "num_detectors", self.num_detectors as f64);
        json_num(&mut s, "num_dem_errors", self.num_dem_errors as f64);
        json_num(
            &mut s,
            "arbitrary_decompositions",
            self.arbitrary_decompositions as f64,
        );
        json_num(&mut s, "shots", self.shots as f64);
        json_num(&mut s, "failures", self.failures as f64);
        json_num(&mut s, "logical_error_rate", self.logical_error_rate());
        json_num(&mut s, "standard_error", self.standard_error());
        json_num(
            &mut s,
            "error_per_qubit_round",
            self.error_per_qubit_round(),
        );
        json_opt(&mut s, "error_per_cnot", self.error_per_cnot());
        s.pop(); // trailing comma
        s.push('}');
        s
    }
}

/// Serializes records as newline-delimited JSON (one record per line).
pub fn to_json_lines(records: &[ExperimentRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

fn json_key(s: &mut String, key: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\":");
}

fn json_str(s: &mut String, key: &str, value: &str) {
    json_key(s, key);
    s.push('"');
    for ch in value.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push_str("\",");
}

fn json_bool(s: &mut String, key: &str, value: bool) {
    json_key(s, key);
    s.push_str(if value { "true" } else { "false" });
    s.push(',');
}

fn json_num(s: &mut String, key: &str, value: f64) {
    json_key(s, key);
    if value.is_finite() {
        // Shortest round-trip formatting: deterministic and lossless.
        s.push_str(&format!("{value}"));
    } else {
        s.push_str("null");
    }
    s.push(',');
}

fn json_opt(s: &mut String, key: &str, value: Option<f64>) {
    match value {
        Some(v) => json_num(s, key, v),
        None => {
            json_key(s, key);
            s.push_str("null,");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ExperimentRecord {
        ExperimentRecord {
            name: "t/d3".into(),
            scenario: "memory".into(),
            distance: 3,
            basis: Basis::Z,
            patches: 1,
            cnots: 0,
            se_rounds: 6,
            cnots_per_round: None,
            noise: NoiseModel::uniform(1e-3),
            decoder: "union_find".into(),
            sampler: "dem".into(),
            streaming: false,
            seed: u64::MAX,
            num_detectors: 24,
            num_dem_errors: 100,
            arbitrary_decompositions: 0,
            shots: 10_000,
            failures: 25,
        }
    }

    #[test]
    fn derived_rates() {
        let r = record();
        assert!((r.logical_error_rate() - 0.0025).abs() < 1e-12);
        assert!(r.standard_error() > 0.0);
        assert!(r.error_per_qubit_round() > 0.0);
        assert!(r.error_per_qubit_round() < r.logical_error_rate());
        assert_eq!(r.error_per_cnot(), None);
        let mut with_cnots = record();
        with_cnots.cnots = 8;
        assert!(with_cnots.error_per_cnot().unwrap() > 0.0);
    }

    #[test]
    fn json_shape() {
        let j = record().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"name\":\"t/d3\""));
        assert!(j.contains("\"cnots_per_round\":null"));
        assert!(j.contains("\"sampler\":\"dem\""));
        assert!(j.contains("\"streaming\":false"));
        let mut streamed = record();
        streamed.streaming = true;
        assert!(streamed.to_json().contains("\"streaming\":true"));
        assert!(j.contains("\"seed\":\"18446744073709551615\""));
        assert!(j.contains("\"p2\":0.001"));
        assert!(j.contains("\"failures\":25"));
        assert!(!j.contains(",}"), "no trailing comma: {j}");
    }

    #[test]
    fn json_escapes_strings() {
        let mut r = record();
        r.name = "a\"b\\c\nd".into();
        let j = r.to_json();
        assert!(j.contains(r#""name":"a\"b\\c\nd""#), "{j}");
    }

    #[test]
    fn json_lines_one_per_record() {
        let lines = to_json_lines(&[record(), record()]);
        assert_eq!(lines.lines().count(), 2);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn zero_shot_record_is_safe() {
        let mut r = record();
        r.shots = 0;
        r.failures = 0;
        assert_eq!(r.logical_error_rate(), 0.0);
        assert_eq!(r.standard_error(), 0.0);
        assert!(r.to_json().contains("\"logical_error_rate\":0"));
    }
}
