//! `raa-sim` — the declarative circuit-level experiment engine for the
//! transversal-architecture reproduction.
//!
//! The paper's logical-error model (its Eq. 4) and the memory/transversal
//! figures are calibrated against circuit-level stabilizer simulations.
//! This crate closes that loop as a reusable pipeline instead of per-figure
//! scripts: an [`ExperimentSpec`] pins down the code family, distance,
//! noise, decoder, sampler, shot budget and seed, and [`run`] executes
//! surface-code circuit construction → detector-error-model extraction →
//! bit-packed sampling (by default straight from the compiled DEM, never
//! re-simulating the circuit; gate-level Pauli-frame re-simulation via
//! [`SamplerChoice::Circuit`]) → the parallel allocation-free decode
//! pipeline of [`raa_decode::mc`] → a JSON-serializable
//! [`ExperimentRecord`].
//!
//! Determinism is the load-bearing guarantee: the spec seed drives circuit
//! construction and the per-batch Monte-Carlo streams through independent
//! derived streams, so a spec's record (including its JSON bytes) is
//! identical for any thread count or batch size. [`SweepGrid`] expands
//! cartesian products (distances × error rates × CNOTs-per-round ×
//! decoders) into specs with per-point derived seeds, and [`analysis`]
//! fits the resulting records to Eq. (4) via [`raa_core::fit`].
//!
//! Determinism also makes sweeps cacheable by content: the
//! [`Orchestrator`] runs grid points in parallel over an on-disk record
//! cache keyed by each point's semantic fingerprint (resume interrupted
//! sweeps, replay repeated ones byte-for-byte without sampling), and
//! [`calibrate`] closes the paper's sim → model → estimate loop — sweeps →
//! (α, Λ) fit → [`raa_core::ErrorModelParams`] anchored at the sweep's own
//! `p_phys` (`p_thres = Λ·p_phys`), ready for the `shor` optimizer.
//!
//! Deep circuits (memory at `rounds ≥ 20·d`, or the repeated-CNOT
//! [`Scenario::DeepCnot`] workload) stream: with `spec.streaming = true`
//! and a windowed decoder, sampling and decoding proceed one detector time
//! layer at a time through the time-sliced pipeline of
//! [`raa_decode::mc::logical_error_rate_streamed`], keeping resident
//! syndrome memory bounded by the decoding window instead of the circuit
//! depth — same determinism guarantees, `"streaming":true` in the record.
//!
//! # Example: a seeded memory experiment
//!
//! ```
//! use raa_sim::{run, ExperimentSpec, NoiseModel, Rounds, Scenario, ShotBudget};
//!
//! let mut spec = ExperimentSpec::new(
//!     "demo/memory",
//!     Scenario::Memory { rounds: Rounds::Fixed(2) },
//!     3,
//! );
//! spec.noise = NoiseModel::uniform(2e-3);
//! spec.shots = ShotBudget::Fixed(512);
//! spec.seed = 42;
//!
//! let record = run(&spec);
//! assert_eq!(record.shots, 512);
//! assert!(record.logical_error_rate() < 0.1);
//! // Same spec, same bytes — regardless of how many threads decode it.
//! assert_eq!(run(&spec).to_json(), record.to_json());
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod calibrate;
pub mod engine;
pub mod error;
pub mod jobs;
pub mod lock;
pub mod orchestrator;
pub mod record;
pub mod service;
pub mod spec;

pub use calibrate::{calibrate, fit_calibration, Calibration, CalibrationConfig, CalibrationError};
pub use engine::{build_circuit, derive_seed, run, run_sweep, run_timed, RunTiming};
pub use error::{OrchestratorError, PoisonedPoint};
pub use lock::{Backoff, FileLock, LockError, LockOptions};
pub use orchestrator::{
    spec_cache_key, spec_fingerprint, CacheLookup, Orchestrator, PointOutcome, ScrubOptions,
    ScrubReport, SweepCache, SweepReport,
};
pub use record::{parse_json_lines, to_json_lines, ExperimentRecord};
pub use service::{ServiceClient, ServiceConfig, SweepService};
pub use spec::{
    DecoderChoice, ExperimentSpec, Rounds, SamplerChoice, Scenario, ShotBudget, SweepGrid,
};

// Convenience re-exports so spec literals need no extra imports.
pub use raa_decode::McConfig;
pub use raa_factory::FactoryProtocol;
pub use raa_gadgets::GadgetKind;
pub use raa_surface::{Basis, NoiseModel};
