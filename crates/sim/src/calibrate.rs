//! The simulation → model → estimate calibration loop (paper §III.4 + §IV).
//!
//! The paper's headline resource estimates plug the Eq. (4) logical-error
//! model — fitted against circuit-level simulations — into the architecture
//! optimizer. [`calibrate`] runs that chain's simulation half end to end:
//! a memory sweep (the `x → 0` anchor for the suppression base Λ) and a
//! transversal-CNOT sweep (the (α, Λ) joint fit) are executed through the
//! cached, resumable [`Orchestrator`], the records are fitted via
//! [`crate::analysis`], and the result is converted into
//! [`ErrorModelParams`] anchored at the **sweep's own physical error rate**
//! (`p_thres = Λ·p_phys`, Eq. 2) — not the paper's assumed 1% threshold.
//!
//! Feeding the result into a resource estimate is one call on the `shor`
//! side (`TransversalArchitecture::calibrated` re-anchors the calibrated
//! threshold at the hardware noise rate); the `raa-cal` binary and the
//! `factoring_calibrated` example wire the whole chain together.
//!
//! # Example
//!
//! ```no_run
//! use raa_sim::CalibrationConfig;
//!
//! let mut cfg = CalibrationConfig::default();
//! cfg.cache_dir = Some("target/raa-cal-cache".into());
//! let cal = raa_sim::calibrate(&cfg).unwrap();
//! println!(
//!     "alpha = {:.3}, Lambda = {:.2}, p_thres = {:.4} ({} fresh shots)",
//!     cal.fit.alpha, cal.fit.lambda, cal.params.p_thres, cal.fresh_shots
//! );
//! ```

use crate::analysis;
use crate::error::OrchestratorError;
use crate::orchestrator::Orchestrator;
use crate::record::ExperimentRecord;
use crate::spec::{Rounds, Scenario, ShotBudget, SweepGrid};
use raa_core::fit::FitResult;
use raa_core::ErrorModelParams;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything a calibration run depends on. The defaults reproduce the
/// repo's pinned calibration sweep: union–find decoding at an elevated
/// `p_phys = 4×10⁻³` (the substitution rule — the paper's operating point
/// needs ≥10⁸ shots per point), d ∈ {3, 5}, and the Fig. 6a CNOTs-per-round
/// axis, so the default run is deterministic down to the failure counts.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Uniform physical error rate both sweeps run at.
    pub p_phys: f64,
    /// Code distances (both sweeps).
    pub distances: Vec<u32>,
    /// CNOTs-per-round axis of the transversal sweep (the paper's `x`).
    pub cnots_per_round: Vec<f64>,
    /// Shots per memory point.
    pub memory_shots: usize,
    /// Shots per transversal-CNOT point.
    pub cnot_shots: usize,
    /// Memory SE rounds as a multiple of the distance.
    pub memory_rounds_factor: usize,
    /// Transversal CNOTs per circuit in the gate sweep.
    pub cnot_depth: usize,
    /// Eq. (4) prefactor held fixed during the fit.
    pub c: f64,
    /// Memory-sweep grid seed.
    pub memory_seed: u64,
    /// CNOT-sweep grid seed.
    pub cnot_seed: u64,
    /// Content-addressed record cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Concurrent grid points (see [`Orchestrator::with_point_threads`]).
    pub point_threads: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            p_phys: 4e-3,
            distances: vec![3, 5],
            cnots_per_round: vec![0.5, 1.0, 2.0, 4.0],
            memory_shots: 20_000,
            cnot_shots: 6_000,
            memory_rounds_factor: 3,
            cnot_depth: 16,
            c: 0.1,
            memory_seed: 0x6B,
            cnot_seed: 0x6A,
            cache_dir: None,
            point_threads: 0,
        }
    }
}

impl CalibrationConfig {
    /// The memory sweep this config describes (the Λ anchor).
    pub fn memory_grid(&self) -> SweepGrid {
        SweepGrid::new(
            "cal/memory",
            Scenario::Memory {
                rounds: Rounds::TimesDistance(self.memory_rounds_factor),
            },
        )
        .with_distances(self.distances.clone())
        .with_p_phys(vec![self.p_phys])
        .with_shots(ShotBudget::Fixed(self.memory_shots))
        .with_seed(self.memory_seed)
    }

    /// The transversal-CNOT sweep this config describes (the (α, Λ) fit).
    pub fn cnot_grid(&self) -> SweepGrid {
        SweepGrid::new(
            "cal/cnot",
            Scenario::TransversalCnot {
                patches: 2,
                depth: self.cnot_depth,
                cnots_per_round: 1.0,
            },
        )
        .with_distances(self.distances.clone())
        .with_p_phys(vec![self.p_phys])
        .with_cnots_per_round(self.cnots_per_round.clone())
        .with_shots(ShotBudget::Fixed(self.cnot_shots))
        .with_seed(self.cnot_seed)
    }

    /// The orchestrator this config runs on.
    pub fn orchestrator(&self) -> io::Result<Orchestrator> {
        let orch = Orchestrator::new().with_point_threads(self.point_threads);
        match &self.cache_dir {
            Some(dir) => orch.with_cache_dir(dir),
            None => Ok(orch),
        }
    }
}

/// Why a calibration run could not produce model parameters.
#[derive(Debug)]
pub enum CalibrationError {
    /// One of the two sweeps failed (cache I/O, a poisoned point, …) —
    /// see [`OrchestratorError`] for the failure classes.
    Sweep(OrchestratorError),
    /// The transversal-CNOT records could not support the (α, Λ) fit
    /// (too few usable points — everything saturated, zero failures, or a
    /// single `(x, d)` coordinate). Raise the shot budget or the noise.
    UnfittableCnotSweep,
    /// The fit converged but found no suppression (Λ ≤ 1): the sweep ran
    /// at or above the decoder's threshold, so Eq. (2) cannot anchor a
    /// `p_thres` from it.
    NoSuppression {
        /// The fitted (non-)suppression base.
        lambda: f64,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::Sweep(e) => write!(f, "calibration sweep failed: {e}"),
            CalibrationError::UnfittableCnotSweep => write!(
                f,
                "transversal-CNOT sweep has too few usable points for the Eq. (4) fit \
                 (raise the shot budget or the physical error rate)"
            ),
            CalibrationError::NoSuppression { lambda } => write!(
                f,
                "fitted Lambda = {lambda} <= 1: the sweep ran at or above threshold, \
                 no p_thres can be anchored (lower the physical error rate)"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrationError::Sweep(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OrchestratorError> for CalibrationError {
    fn from(e: OrchestratorError) -> Self {
        CalibrationError::Sweep(e)
    }
}

impl From<io::Error> for CalibrationError {
    fn from(e: io::Error) -> Self {
        CalibrationError::Sweep(OrchestratorError::io("opening the record cache", e))
    }
}

/// The result of a calibration run: the fit, the derived model parameters,
/// the raw records and the cache accounting.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The joint (α, Λ) fit of Eq. (4) to the transversal-CNOT records.
    pub fit: FitResult,
    /// The independent memory-sweep estimate of Λ (the `x → 0` anchor),
    /// when the memory records support one.
    pub lambda_memory: Option<f64>,
    /// Model parameters anchored at the sweep's `p_phys`
    /// (`p_thres = Λ·p_phys`). Re-anchor at a hardware rate with
    /// [`Calibration::params_at`].
    pub params: ErrorModelParams,
    /// Memory-sweep records (grid order).
    pub memory_records: Vec<ExperimentRecord>,
    /// Transversal-CNOT-sweep records (grid order).
    pub cnot_records: Vec<ExperimentRecord>,
    /// Grid points actually simulated this run (both sweeps).
    pub fresh_points: usize,
    /// Grid points replayed from the cache (both sweeps).
    pub cached_points: usize,
    /// Monte-Carlo shots actually sampled this run — 0 on a fully warm
    /// cache.
    pub fresh_shots: usize,
}

impl Calibration {
    /// The calibrated parameters re-anchored at a hardware physical error
    /// rate: keeps the simulation-fitted `p_thres` and `α`, replaces
    /// `p_phys` — the form the architecture estimator consumes.
    ///
    /// # Panics
    ///
    /// Panics if `p_phys` is not inside `(0, p_thres)` (the hardware would
    /// be at or above the calibrated threshold).
    pub fn params_at(&self, p_phys: f64) -> ErrorModelParams {
        self.params.with_p_phys(p_phys)
    }
}

/// Runs the full calibration: memory + transversal-CNOT sweeps through the
/// cached orchestrator, fits (α, Λ), and anchors [`ErrorModelParams`] at
/// the sweep's actual `p_phys`.
///
/// # Errors
///
/// [`CalibrationError::Sweep`] when either sweep fails (cache I/O past the
/// retry budget, a poisoned point, a worker-pool misconfiguration);
/// [`CalibrationError::UnfittableCnotSweep`] /
/// [`CalibrationError::NoSuppression`] when the records cannot support the
/// fit (see [`crate::analysis::fit_eq4`]).
pub fn calibrate(cfg: &CalibrationConfig) -> Result<Calibration, CalibrationError> {
    let orch = cfg.orchestrator()?;
    let memory = orch.run(&cfg.memory_grid())?;
    let cnot = orch.run(&cfg.cnot_grid())?;
    fit_calibration(
        cfg,
        memory.records,
        cnot.records,
        memory.fresh_points + cnot.fresh_points,
        memory.cached_points + cnot.cached_points,
        memory.fresh_shots + cnot.fresh_shots,
    )
}

/// The fitting half of [`calibrate`], decoupled from how the records were
/// produced: the `raa-sweepd` service runs the two sweeps through its own
/// shared worker pool and hands the records here, so the daemon and the
/// in-process path share one fit (and one set of error conditions).
///
/// # Errors
///
/// [`CalibrationError::UnfittableCnotSweep`] /
/// [`CalibrationError::NoSuppression`] as for [`calibrate`].
pub fn fit_calibration(
    cfg: &CalibrationConfig,
    memory_records: Vec<ExperimentRecord>,
    cnot_records: Vec<ExperimentRecord>,
    fresh_points: usize,
    cached_points: usize,
    fresh_shots: usize,
) -> Result<Calibration, CalibrationError> {
    let fit =
        analysis::fit_eq4(&cnot_records, cfg.c).ok_or(CalibrationError::UnfittableCnotSweep)?;
    if fit.lambda <= 1.0 {
        return Err(CalibrationError::NoSuppression { lambda: fit.lambda });
    }
    let params = fit.to_params(cfg.p_phys);
    let lambda_memory = analysis::memory_lambda(&memory_records);

    Ok(Calibration {
        fit,
        lambda_memory,
        params,
        memory_records,
        cnot_records,
        fresh_points,
        cached_points,
        fresh_shots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::Path;

    fn tiny_config(cache_dir: Option<&Path>) -> CalibrationConfig {
        CalibrationConfig {
            memory_shots: 1_500,
            cnot_shots: 1_000,
            cache_dir: cache_dir.map(Into::into),
            ..CalibrationConfig::default()
        }
    }

    #[test]
    fn tiny_calibration_fits_and_anchors_threshold_at_sweep_noise() {
        let cal = calibrate(&tiny_config(None)).expect("fittable");
        assert!(cal.fit.lambda > 1.0, "Lambda = {}", cal.fit.lambda);
        assert!(cal.fit.alpha > 0.0, "alpha = {}", cal.fit.alpha);
        assert_eq!(cal.params.p_phys, 4e-3);
        assert!((cal.params.p_thres - cal.fit.lambda * 4e-3).abs() < 1e-15);
        let lambda_mem = cal.lambda_memory.expect("two distances");
        // Joint fit and memory anchor must agree on the suppression scale.
        assert!(
            (0.4..2.5).contains(&(cal.fit.lambda / lambda_mem)),
            "joint {} vs memory {lambda_mem}",
            cal.fit.lambda
        );
        assert_eq!(cal.cached_points, 0);
        assert_eq!(cal.fresh_points, 2 + 8);
        assert_eq!(cal.fresh_shots, 2 * 1_500 + 8 * 1_000);
        // Re-anchoring at hardware noise keeps the calibrated threshold.
        let hw = cal.params_at(1e-3);
        assert_eq!(hw.p_thres, cal.params.p_thres);
        assert!(hw.lambda() > cal.fit.lambda);
    }

    #[test]
    fn warm_calibration_is_free_and_identical() {
        let dir = std::env::temp_dir().join(format!("raa-cal-warm-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cfg = tiny_config(Some(&dir));
        let cold = calibrate(&cfg).expect("fittable");
        assert!(cold.fresh_shots > 0);
        let warm = calibrate(&cfg).expect("fittable");
        assert_eq!(warm.fresh_shots, 0);
        assert_eq!(warm.fresh_points, 0);
        assert_eq!(warm.cached_points, cold.fresh_points);
        assert_eq!(warm.fit, cold.fit);
        for (a, b) in cold
            .memory_records
            .iter()
            .chain(&cold.cnot_records)
            .zip(warm.memory_records.iter().chain(&warm.cnot_records))
        {
            assert_eq!(a.to_json(), b.to_json());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hopeless_statistics_return_unfittable_not_nan() {
        let cfg = CalibrationConfig {
            p_phys: 1e-4,
            memory_shots: 8,
            cnot_shots: 8,
            ..CalibrationConfig::default()
        };
        match calibrate(&cfg) {
            Err(CalibrationError::UnfittableCnotSweep) => {}
            other => panic!("expected UnfittableCnotSweep, got {other:?}"),
        }
    }
}
