//! Fitting engine records to the paper's logical-error model (Eq. 4).
//!
//! These helpers bridge [`ExperimentRecord`]s and [`raa_core::fit`]: a
//! transversal-CNOT sweep yields per-CNOT error points for the (α, Λ) fit,
//! and a memory sweep over distances yields the suppression base Λ directly
//! from the per-round error slope.

use crate::record::ExperimentRecord;
use raa_core::fit::{fit_cnot_model, CnotErrorPoint, FitResult};

/// Per-CNOT (and per-round) error rates above which a point is dropped from
/// fits (the model only holds well below saturation; same cut as the
/// paper's figures).
pub const MAX_FITTABLE_RATE: f64 = 0.4;

/// Extracts the Eq. (4) fit points from transversal-CNOT records: one point
/// per record with a measured per-CNOT error in `(0, 0.4)`.
pub fn cnot_points(records: &[ExperimentRecord]) -> Vec<CnotErrorPoint> {
    records
        .iter()
        .filter(|r| r.scenario == "transversal_cnot")
        .filter_map(|r| {
            let x = r.cnots_per_round?;
            let e = r.error_per_cnot()?;
            (e > 0.0 && e < MAX_FITTABLE_RATE).then_some(CnotErrorPoint {
                x,
                distance: r.distance,
                error_per_cnot: e,
            })
        })
        .collect()
}

/// Fits (α, Λ) of Eq. (4) to the transversal-CNOT records with the
/// prefactor `c` held fixed. Returns `None` with fewer than two usable
/// points, or when the usable points cannot support the two-parameter fit
/// (e.g. every record saturated above [`MAX_FITTABLE_RATE`], produced zero
/// failures, or collapsed onto a single `(x, d)` coordinate — see
/// [`raa_core::fit::fit_cnot_model`]).
pub fn fit_eq4(records: &[ExperimentRecord], c: f64) -> Option<FitResult> {
    let points = cnot_points(records);
    if points.len() < 2 {
        return None;
    }
    fit_cnot_model(&points, c)
}

/// Estimates the suppression base Λ from memory records across distances:
/// least-squares slope of `ln(p_round)` against `(d + 1)/2` (the Eq. 4
/// exponent), so `Λ = exp(−slope)`. Returns `None` without at least two
/// distinct distances carrying a usable rate — nonzero, finite and below
/// [`MAX_FITTABLE_RATE`] (saturated points carry no slope information and
/// would drag the fit toward Λ = 1).
pub fn memory_lambda(records: &[ExperimentRecord]) -> Option<f64> {
    let points: Vec<(f64, f64)> = records
        .iter()
        .filter(|r| r.scenario == "memory")
        .filter_map(|r| {
            let rate = r.error_per_qubit_round();
            (rate.is_finite() && rate > 0.0 && rate < MAX_FITTABLE_RATE)
                .then(|| (f64::from(r.distance + 1) / 2.0, rate.ln()))
        })
        .collect();
    let distinct = {
        let mut ds: Vec<u64> = points.iter().map(|&(t, _)| t.to_bits()).collect();
        ds.sort_unstable();
        ds.dedup();
        ds.len()
    };
    if distinct < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mean_t = points.iter().map(|&(t, _)| t).sum::<f64>() / n;
    let mean_y = points.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let cov: f64 = points
        .iter()
        .map(|&(t, y)| (t - mean_t) * (y - mean_y))
        .sum();
    let var: f64 = points.iter().map(|&(t, _)| (t - mean_t).powi(2)).sum();
    let lambda = (-cov / var).exp();
    lambda.is_finite().then_some(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_surface::{Basis, NoiseModel};

    fn record(
        scenario: &str,
        d: u32,
        x: Option<f64>,
        shots: usize,
        failures: usize,
    ) -> ExperimentRecord {
        ExperimentRecord {
            name: format!("{scenario}/d{d}"),
            scenario: scenario.into(),
            distance: d,
            basis: Basis::Z,
            patches: if scenario == "memory" { 1 } else { 2 },
            cnots: if scenario == "memory" { 0 } else { 8 },
            se_rounds: 3 * d as usize,
            cnots_per_round: x,
            noise: NoiseModel::uniform(4e-3),
            decoder: "union_find".into(),
            sampler: "dem".into(),
            streaming: false,
            seed: 1,
            num_detectors: 10,
            num_dem_errors: 10,
            arbitrary_decompositions: 0,
            shots,
            failures,
        }
    }

    #[test]
    fn cnot_points_filter_scenario_and_range() {
        let records = vec![
            record("transversal_cnot", 3, Some(1.0), 1000, 100),
            record("transversal_cnot", 3, Some(2.0), 1000, 0), // zero rate: dropped
            record("transversal_cnot", 3, Some(0.5), 1000, 999), // saturated: dropped
            record("memory", 3, None, 1000, 50),               // wrong scenario
        ];
        let points = cnot_points(&records);
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].x, 1.0);
    }

    #[test]
    fn fit_needs_two_points() {
        let one = vec![record("transversal_cnot", 3, Some(1.0), 1000, 100)];
        assert!(fit_eq4(&one, 0.1).is_none());
        let two = vec![
            record("transversal_cnot", 3, Some(1.0), 1000, 100),
            record("transversal_cnot", 5, Some(1.0), 1000, 40),
        ];
        let fit = fit_eq4(&two, 0.1).expect("two usable points");
        assert!(fit.alpha > 0.0 && fit.lambda > 1.0);
    }

    #[test]
    fn memory_lambda_recovers_known_suppression() {
        // Synthesize per-round rates that fall by exactly 4× per unit of
        // (d+1)/2: Λ must come out as 4.
        let mut records = Vec::new();
        for (d, rate) in [(3u32, 4e-2f64), (5, 1e-2), (7, 2.5e-3)] {
            let se_rounds = 3 * d as usize;
            let p_shot = 1.0 - (1.0 - rate).powi(se_rounds as i32);
            let shots = 1_000_000usize;
            let failures = (p_shot * shots as f64).round() as usize;
            records.push(record("memory", d, None, shots, failures));
        }
        let lambda = memory_lambda(&records).expect("three distances");
        assert!((lambda - 4.0).abs() < 0.05, "lambda = {lambda}");
    }

    #[test]
    fn memory_lambda_needs_two_distances() {
        let records = vec![
            record("memory", 3, None, 1000, 10),
            record("memory", 3, None, 1000, 12),
        ];
        assert!(memory_lambda(&records).is_none());
        assert!(memory_lambda(&[]).is_none());
    }

    #[test]
    fn memory_lambda_rejects_saturated_and_zero_rate_records() {
        // Every shot failing pushes the per-round rate to saturation: no
        // usable slope, so the estimator must decline rather than report a
        // Λ ≈ 1 artifact.
        let saturated = vec![
            record("memory", 3, None, 1000, 1000),
            record("memory", 5, None, 1000, 1000),
        ];
        assert!(memory_lambda(&saturated).is_none());
        // Zero failures everywhere: likewise no information.
        let silent = vec![
            record("memory", 3, None, 1000, 0),
            record("memory", 5, None, 1000, 0),
        ];
        assert!(memory_lambda(&silent).is_none());
        // One saturated distance must not poison a fit that still has two
        // usable distances.
        let mixed = vec![
            record("memory", 3, None, 1000, 1000),
            record("memory", 5, None, 1000, 100),
            record("memory", 7, None, 1000, 25),
        ];
        let lambda = memory_lambda(&mixed).expect("two usable distances");
        assert!(lambda > 1.0, "lambda = {lambda}");
    }

    #[test]
    fn fit_eq4_declines_degenerate_sweeps() {
        // All records at one (x, d): survives the point filter but cannot
        // identify two parameters.
        let replicated = vec![
            record("transversal_cnot", 3, Some(1.0), 1000, 100),
            record("transversal_cnot", 3, Some(1.0), 1000, 110),
            record("transversal_cnot", 3, Some(1.0), 1000, 90),
        ];
        assert!(fit_eq4(&replicated, 0.1).is_none());
        // Everything saturated above MAX_FITTABLE_RATE: zero usable points.
        let saturated = vec![
            record("transversal_cnot", 3, Some(1.0), 1000, 999),
            record("transversal_cnot", 5, Some(2.0), 1000, 998),
        ];
        assert!(fit_eq4(&saturated, 0.1).is_none());
        // Zero failures everywhere: likewise.
        let silent = vec![
            record("transversal_cnot", 3, Some(1.0), 1000, 0),
            record("transversal_cnot", 5, Some(2.0), 1000, 0),
        ];
        assert!(fit_eq4(&silent, 0.1).is_none());
    }
}
