//! Resumable, fault-tolerant sweep orchestration over a content-addressed
//! record cache.
//!
//! Running a [`SweepGrid`] is a pure function of its specs (the engine's
//! determinism guarantee), which makes every grid point cacheable by
//! content: the cache key is a deterministic hash of the point's complete
//! *semantic* spec — scenario (with rounds/depth/patches), distance, basis,
//! noise, decoder, sampler, streaming flag, shot budget and seed — and
//! deliberately excludes the execution parameters in
//! [`ExperimentSpec::mc`], which are guaranteed not to change the record.
//!
//! The [`Orchestrator`] runs grid points in parallel across the same
//! worker-pool machinery the Monte-Carlo pipeline uses, consulting the
//! cache before sampling a single shot: a hit replays the stored JSON
//! record byte-for-byte (via [`ExperimentRecord::from_json`]); a miss runs
//! the engine and persists the record atomically (temp file + rename), so
//! an interrupted sweep resumes from its completed points and a repeated
//! sweep is free. The [`SweepReport`] says exactly how much fresh sampling
//! a run performed — the number CI pins to zero on a warm cache.
//!
//! # Fault tolerance
//!
//! The orchestrator is the substrate of the `raa-sweepd` service, so every
//! per-point failure class is contained instead of taking down the run:
//!
//! - **Panic isolation** — each point's engine run executes under
//!   `catch_unwind`; with [`Orchestrator::with_panic_isolation`] a
//!   panicking point becomes a [`PoisonedPoint`] entry in the report while
//!   every other point completes (without isolation it fails the job as a
//!   typed [`OrchestratorError::Poisoned`] — never the process).
//! - **Single-writer lock discipline** — cold points take an advisory
//!   per-entry file lock (see [`crate::lock`]) *before* sampling, so
//!   concurrent orchestrators sharing a cache dir serialize on each entry:
//!   the loser of the race re-checks the cache after the lock and replays
//!   the winner's record instead of re-sampling. The lock is advisory —
//!   a bounded wait that times out falls back to sampling (results are
//!   deterministic, so duplicated work is waste, never corruption).
//! - **Bounded retry** — cache writes retry transient I/O failures with
//!   exponential backoff ([`crate::lock::retry_io`]) before surfacing a
//!   typed [`OrchestratorError::Io`].
//! - **Integrity scrubbing** — [`SweepCache::scrub`] re-validates every
//!   entry's spec echo, moves corrupt entries to a `quarantine/` subdir,
//!   removes stale temp/lock files left by killed processes, and
//!   LRU-evicts over a size budget, all under the same per-entry locks.
//!
//! # Example
//!
//! ```
//! use raa_sim::{Orchestrator, Rounds, Scenario, ShotBudget, SweepGrid};
//!
//! let grid = SweepGrid::new(
//!     "demo",
//!     Scenario::Memory { rounds: Rounds::Fixed(2) },
//! )
//! .with_distances(vec![3])
//! .with_shots(ShotBudget::Fixed(256));
//!
//! let dir = std::env::temp_dir().join(format!("raa-orch-doc-{}", std::process::id()));
//! let orch = Orchestrator::new().with_cache_dir(&dir).unwrap();
//! let cold = orch.run(&grid).unwrap();
//! assert_eq!(cold.fresh_points, 1);
//!
//! // Warm: same records, zero Monte-Carlo sampling.
//! let warm = orch.run(&grid).unwrap();
//! assert_eq!(warm.fresh_shots, 0);
//! assert_eq!(warm.records, cold.records);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::engine;
use crate::error::{OrchestratorError, PoisonedPoint};
use crate::lock::{retry_io, Backoff, FileLock, LockError, LockOptions};
use crate::record::ExperimentRecord;
use crate::spec::{DecoderChoice, ExperimentSpec, Rounds, Scenario, ShotBudget, SweepGrid};
use raa_decode::WindowError;
use rayon::prelude::*;
use std::cell::Cell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;
use std::time::{Duration, SystemTime};

/// Version tag mixed into every fingerprint: bump when the engine's
/// sampling/decoding streams change behaviour, and every stale cache entry
/// misses instead of replaying records from the old pipeline.
const FINGERPRINT_VERSION: u32 = 1;

fn rounds_fingerprint(rounds: Rounds) -> String {
    match rounds {
        Rounds::Fixed(n) => format!("fixed:{n}"),
        Rounds::TimesDistance(k) => format!("xd:{k}"),
    }
}

fn scenario_fingerprint(scenario: &Scenario) -> String {
    match *scenario {
        Scenario::Memory { rounds } => {
            format!("memory(rounds={})", rounds_fingerprint(rounds))
        }
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => format!("transversal_cnot(patches={patches},depth={depth},x={cnots_per_round})"),
        Scenario::GhzFanout { targets } => format!("ghz_fanout(targets={targets})"),
        Scenario::DeepCnot {
            patches,
            rounds,
            cnots_per_round,
        } => format!(
            "deep_cnot(patches={patches},rounds={},x={cnots_per_round})",
            rounds_fingerprint(rounds)
        ),
        // The protocol/kind is already part of the per-variant label.
        Scenario::MagicFactory { rounds, .. } => format!(
            "{}(rounds={})",
            scenario.label(),
            rounds_fingerprint(rounds)
        ),
        Scenario::Gadget { width, rounds, .. } => format!(
            "{}(width={width},rounds={})",
            scenario.label(),
            rounds_fingerprint(rounds)
        ),
        Scenario::Code832Memory { rounds } => {
            format!("code832_memory(rounds={})", rounds_fingerprint(rounds))
        }
    }
}

fn budget_fingerprint(budget: ShotBudget) -> String {
    match budget {
        ShotBudget::Fixed(shots) => format!("fixed:{shots}"),
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => format!("until:{max_shots}:{target_failures}"),
    }
}

/// The canonical, human-readable description of everything that determines
/// a spec's record — and nothing that doesn't (the `mc` execution
/// parameters are excluded by the engine's determinism contract). Equal
/// fingerprints ⇔ byte-identical records. Floats use Rust's shortest
/// round-trip formatting, so the string is platform-stable.
pub fn spec_fingerprint(spec: &ExperimentSpec) -> String {
    format!(
        "v{FINGERPRINT_VERSION};name={};scenario={};d={};basis={:?};\
         p2={};p_idle={};p_prep={};p_meas={};decoder={};sampler={};\
         streaming={};shots={};seed={}",
        spec.name,
        scenario_fingerprint(&spec.scenario),
        spec.distance,
        spec.basis,
        spec.noise.p2,
        spec.noise.p_idle,
        spec.noise.p_prep,
        spec.noise.p_meas,
        spec.decoder.label(),
        spec.sampler.label(),
        spec.streaming,
        budget_fingerprint(spec.shots),
        spec.seed,
    )
}

/// FNV-1a over `bytes` from the given offset basis, finished with a
/// SplitMix64-style avalanche so nearby fingerprints spread over the full
/// key space.
fn hash64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The content-addressed cache key of a spec: 128 bits of fingerprint hash
/// as 32 hex characters (two independent 64-bit passes, so accidental
/// collisions are out of reach for any realistic sweep census).
pub fn spec_cache_key(spec: &ExperimentSpec) -> String {
    let fp = spec_fingerprint(spec);
    let a = hash64(fp.as_bytes(), 0xCBF2_9CE4_8422_2325);
    let b = hash64(fp.as_bytes(), 0x6C62_272E_07BB_0142);
    format!("{a:016x}{b:016x}")
}

/// What consulting the cache for a spec found.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// A validated record whose spec echo matches.
    Hit(ExperimentRecord),
    /// No entry on disk.
    Miss,
    /// An entry exists but fails validation (torn write, hand-edit, hash
    /// collision). Sweeps self-heal by recomputing and overwriting; the
    /// scrubber quarantines.
    Corrupt(String),
}

/// On-disk record cache: one `<key>.json` file per grid point, each holding
/// exactly the record's deterministic JSON line. Sidecar `<key>.lock` files
/// carry the advisory single-writer discipline; the `quarantine/` subdir
/// collects entries the scrubber pulled out of service.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a spec.
    pub fn entry_path(&self, spec: &ExperimentSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec_cache_key(spec)))
    }

    /// The advisory lock path guarding a spec's entry.
    pub fn lock_path(&self, spec: &ExperimentSpec) -> PathBuf {
        self.dir.join(format!("{}.lock", spec_cache_key(spec)))
    }

    /// Where the scrubber moves corrupt entries.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Acquires the advisory single-writer lock for a spec's entry,
    /// failing with a typed [`OrchestratorError::LockTimeout`] when the
    /// bounded wait is exhausted.
    pub fn exclusive(
        &self,
        spec: &ExperimentSpec,
        opts: &LockOptions,
    ) -> Result<FileLock, OrchestratorError> {
        FileLock::acquire(self.lock_path(spec), opts).map_err(OrchestratorError::from)
    }

    /// Consults the cache for `spec`, distinguishing a clean miss from a
    /// corrupt entry (both of which sweeps treat as recomputable).
    pub fn lookup(&self, spec: &ExperimentSpec) -> CacheLookup {
        let path = self.entry_path(spec);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLookup::Miss,
            Err(e) => return CacheLookup::Corrupt(format!("unreadable: {e}")),
        };
        let record = match ExperimentRecord::from_json(text.trim_end()) {
            Ok(record) => record,
            Err(e) => return CacheLookup::Corrupt(format!("unparsable: {e}")),
        };
        if record_matches_spec(&record, spec) {
            CacheLookup::Hit(record)
        } else {
            CacheLookup::Corrupt("spec echo does not match the addressing spec".into())
        }
    }

    /// Loads the cached record for `spec`, or `None` on a miss. Unreadable,
    /// unparsable or mismatched entries (a hash collision, a truncated
    /// write from a killed process, a hand-edited file) are treated as
    /// misses — the orchestrator re-runs the point and overwrites them.
    pub fn load(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        match self.lookup(spec) {
            CacheLookup::Hit(record) => Some(record),
            CacheLookup::Miss | CacheLookup::Corrupt(_) => None,
        }
    }

    /// Persists `record` as the entry for `spec`, atomically: the bytes land
    /// under a temporary name and are renamed into place, so concurrent
    /// writers (parallel points, or two processes sharing a cache) can never
    /// expose a torn entry. Callers wanting single-writer discipline hold
    /// [`SweepCache::exclusive`] across the call.
    pub fn store(&self, spec: &ExperimentSpec, record: &ExperimentRecord) -> io::Result<()> {
        // Distinct temp names even for identical specs racing in one
        // parallel run (pid alone would collide and fail the loser's
        // rename).
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let final_path = self.entry_path(spec);
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{}",
            spec_cache_key(spec),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut json = record.to_json();
        json.push('\n');
        fs::write(&tmp_path, json)?;
        fs::rename(&tmp_path, final_path)
    }

    /// Validates one entry file standalone (no addressing spec): the bytes
    /// must parse as a record and the record's own echo must be internally
    /// consistent. This is the scrubber's test for quarantining.
    ///
    /// # Errors
    ///
    /// [`OrchestratorError::CorruptEntry`] describing what failed;
    /// [`OrchestratorError::Io`] when the file cannot be read at all.
    pub fn validate_entry(path: &Path) -> Result<ExperimentRecord, OrchestratorError> {
        let text = fs::read_to_string(path).map_err(|e| {
            OrchestratorError::io(format!("reading cache entry {}", path.display()), e)
        })?;
        let corrupt = |detail: String| OrchestratorError::CorruptEntry {
            path: path.to_path_buf(),
            detail,
        };
        let record = ExperimentRecord::from_json(text.trim_end())
            .map_err(|e| corrupt(format!("unparsable: {e}")))?;
        if record.failures > record.shots {
            return Err(corrupt(format!(
                "echo inconsistent: {} failures out of {} shots",
                record.failures, record.shots
            )));
        }
        if !matches!(
            record.scenario.as_str(),
            "memory" | "transversal_cnot" | "ghz_fanout" | "deep_cnot"
        ) {
            return Err(corrupt(format!("unknown scenario {:?}", record.scenario)));
        }
        Ok(record)
    }

    /// One integrity pass over the cache: re-validates every entry's spec
    /// echo (corrupt entries move to `quarantine/`), removes stale temp and
    /// lock files abandoned by killed processes, and LRU-evicts the
    /// oldest-touched valid entries while the cache exceeds
    /// `opts.size_budget`. Every destructive step happens under the
    /// entry's advisory lock; entries whose lock stays contended are
    /// skipped (counted in [`ScrubReport::skipped_locked`]) rather than
    /// raced.
    ///
    /// # Errors
    ///
    /// [`OrchestratorError::Io`] when the cache directory itself cannot be
    /// scanned; per-entry problems are reported, not raised.
    pub fn scrub(&self, opts: &ScrubOptions) -> Result<ScrubReport, OrchestratorError> {
        let mut report = ScrubReport::default();
        let mut entries: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        let now = SystemTime::now();
        let dir_iter = fs::read_dir(&self.dir).map_err(|e| {
            OrchestratorError::io(format!("scanning cache dir {}", self.dir.display()), e)
        })?;
        for dirent in dir_iter {
            let Ok(dirent) = dirent else { continue };
            let path = dirent.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Ok(meta) = dirent.metadata() else {
                continue;
            };
            if !meta.is_file() {
                continue;
            }
            let age = |t: io::Result<SystemTime>| {
                t.ok()
                    .and_then(|m| now.duration_since(m).ok())
                    .unwrap_or(Duration::ZERO)
            };
            if name.contains(".tmp.") {
                if age(meta.modified()) > opts.stale_tmp_after && fs::remove_file(&path).is_ok() {
                    report.stale_tmps_removed += 1;
                }
                continue;
            }
            if name.ends_with(".lock") {
                if age(meta.modified()) > opts.stale_lock_after && fs::remove_file(&path).is_ok() {
                    report.stale_locks_removed += 1;
                }
                continue;
            }
            if !name.ends_with(".json") {
                continue;
            }
            report.scanned += 1;
            match Self::validate_entry(&path) {
                Ok(_) => {
                    let mtime = meta.modified().unwrap_or(now);
                    entries.push((path, meta.len(), mtime));
                }
                Err(_) => match self.quarantine_entry(&path, opts) {
                    Ok(true) => report.quarantined += 1,
                    Ok(false) => report.healthy += 1, // healed under our feet
                    Err(QuarantineSkip::Locked) => report.skipped_locked += 1,
                    Err(QuarantineSkip::Io) => {}
                },
            }
        }
        // LRU eviction over the size budget: oldest mtime first.
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        let budget = opts.size_budget.unwrap_or(u64::MAX);
        let mut kept = Vec::with_capacity(entries.len());
        for (path, len, _) in entries {
            if total > budget {
                match self.with_entry_lock(&path, opts, |p| fs::remove_file(p)) {
                    Ok(()) => {
                        report.evicted += 1;
                        total -= len;
                        continue;
                    }
                    Err(QuarantineSkip::Locked) => report.skipped_locked += 1,
                    Err(QuarantineSkip::Io) => {}
                }
            }
            kept.push(len);
        }
        report.healthy += kept.len();
        report.bytes_after = kept.iter().sum();
        Ok(report)
    }

    /// Moves a (re-confirmed) corrupt entry into `quarantine/` under its
    /// entry lock. Returns `Ok(false)` when a concurrent writer healed the
    /// entry between detection and the lock.
    fn quarantine_entry(&self, path: &Path, opts: &ScrubOptions) -> Result<bool, QuarantineSkip> {
        self.with_entry_lock(path, opts, |p| {
            if Self::validate_entry(p).is_ok() {
                return Ok(false);
            }
            let qdir = self.quarantine_dir();
            fs::create_dir_all(&qdir)?;
            let Some(name) = p.file_name() else {
                // Entry paths are built as `<dir>/<hex key>.json`; a
                // nameless path cannot be one of ours — leave it alone.
                return Ok(false);
            };
            fs::rename(p, qdir.join(name))?;
            Ok(true)
        })
    }

    /// Runs `op` on `path` while holding the entry's advisory lock.
    fn with_entry_lock<T>(
        &self,
        path: &Path,
        opts: &ScrubOptions,
        op: impl FnOnce(&Path) -> io::Result<T>,
    ) -> Result<T, QuarantineSkip> {
        let lock_path = path.with_extension("lock");
        let lock = match FileLock::acquire(&lock_path, &opts.lock) {
            Ok(lock) => lock,
            Err(LockError::Timeout { .. }) => return Err(QuarantineSkip::Locked),
            Err(LockError::Io { .. }) => return Err(QuarantineSkip::Io),
        };
        let out = op(path).map_err(|_| QuarantineSkip::Io);
        let _ = lock.release();
        out
    }
}

/// Why the scrubber left an entry alone.
enum QuarantineSkip {
    Locked,
    Io,
}

/// Knobs of one [`SweepCache::scrub`] pass.
#[derive(Debug, Clone, Copy)]
pub struct ScrubOptions {
    /// Evict oldest-touched entries while the cache exceeds this many
    /// bytes; `None` disables eviction.
    pub size_budget: Option<u64>,
    /// Temp files older than this are orphans of killed writers.
    pub stale_tmp_after: Duration,
    /// Lock files older than this are abandoned by dead processes.
    pub stale_lock_after: Duration,
    /// Per-entry lock acquisition for destructive steps (short wait — a
    /// contended entry is simply skipped this pass).
    pub lock: LockOptions,
}

impl Default for ScrubOptions {
    fn default() -> Self {
        Self {
            size_budget: None,
            stale_tmp_after: Duration::from_secs(3_600),
            stale_lock_after: Duration::from_secs(120),
            lock: LockOptions {
                wait: Duration::from_millis(250),
                ..LockOptions::default()
            },
        }
    }
}

/// What one scrub pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entry files examined.
    pub scanned: usize,
    /// Entries that validated (or healed mid-pass) and survived eviction.
    pub healthy: usize,
    /// Corrupt entries moved to `quarantine/`.
    pub quarantined: usize,
    /// Valid entries LRU-evicted over the size budget.
    pub evicted: usize,
    /// Orphaned temp files removed.
    pub stale_tmps_removed: usize,
    /// Abandoned lock files removed.
    pub stale_locks_removed: usize,
    /// Entries skipped because their lock stayed contended.
    pub skipped_locked: usize,
    /// Bytes of valid entries remaining after the pass.
    pub bytes_after: u64,
}

/// Checks the loaded record's spec echo against the spec that addressed it:
/// the guard that turns hash collisions and stale entries into cache misses
/// instead of silently wrong results.
fn record_matches_spec(record: &ExperimentRecord, spec: &ExperimentSpec) -> bool {
    let budget_ok = match spec.shots {
        ShotBudget::Fixed(shots) => record.shots == shots,
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => {
            // An early-stopped record must actually have reached the
            // failure target; otherwise it must have exhausted the cap.
            record.shots <= max_shots
                && (record.failures >= target_failures || record.shots == max_shots)
        }
    };
    // The scenario label alone cannot distinguish e.g. two memory round
    // schedules, so also check the scenario parameters the record echoes.
    let scenario_ok = match spec.scenario {
        Scenario::Memory { rounds } => {
            record.patches == 1
                && record.cnots == 0
                && record.se_rounds == rounds.resolve(spec.distance)
                && record.cnots_per_round.is_none()
        }
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => {
            record.patches == patches
                && record.cnots == depth
                && record.cnots_per_round == Some(cnots_per_round)
        }
        Scenario::GhzFanout { .. } => record.cnots_per_round.is_none(),
        Scenario::DeepCnot {
            patches,
            rounds,
            cnots_per_round,
        } => {
            record.patches == patches
                && record.se_rounds <= rounds.resolve(spec.distance)
                && record.cnots_per_round == Some(cnots_per_round)
        }
        Scenario::MagicFactory { protocol, rounds } => {
            record.patches == protocol.patches()
                && record.se_rounds == rounds.resolve(spec.distance)
                && record.cnots_per_round.is_none()
        }
        Scenario::Gadget {
            kind,
            width,
            rounds,
        } => {
            record.patches == kind.patches(width)
                && record.se_rounds == rounds.resolve(spec.distance)
                && record.cnots_per_round.is_none()
        }
        Scenario::Code832Memory { rounds } => {
            record.patches == 1
                && record.cnots == 0
                && record.se_rounds == rounds.resolve(spec.distance)
                && record.cnots_per_round.is_none()
        }
    };
    budget_ok
        && scenario_ok
        && record.name == spec.name
        && record.scenario == spec.scenario.label()
        && record.distance == spec.distance
        && record.basis == spec.basis
        && record.noise == spec.noise
        && record.decoder == spec.decoder.label()
        && record.sampler == spec.sampler.label()
        && record.streaming == spec.streaming
        && record.seed == spec.seed
}

/// What a cached sweep run did: the records in grid order, plus the
/// fresh-vs-replayed accounting and the fault ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per *successful* grid point, in the grid's deterministic
    /// expansion order — identical to what [`engine::run_sweep`] would
    /// return. With panic isolation off (the default) every point is
    /// successful or the run errors, so the list always aligns with the
    /// grid; with isolation on, poisoned points are omitted here and listed
    /// in [`SweepReport::poisoned`].
    pub records: Vec<ExperimentRecord>,
    /// Points that ran through the engine this time.
    pub fresh_points: usize,
    /// Points replayed from the cache.
    pub cached_points: usize,
    /// Monte-Carlo shots actually sampled this run (0 on a fully warm
    /// cache — the property the CI smoke pins).
    pub fresh_shots: usize,
    /// Points whose engine run panicked (panic isolation only).
    pub poisoned: Vec<PoisonedPoint>,
    /// Corrupt cache entries found and overwritten by recomputation.
    pub corrupt_replaced: usize,
}

impl SweepReport {
    /// Total points in the sweep (including poisoned ones).
    pub fn total_points(&self) -> usize {
        self.fresh_points + self.cached_points + self.poisoned.len()
    }
}

/// The outcome of one grid point under the orchestrator.
#[derive(Debug, Clone)]
pub enum PointOutcome {
    /// Replayed byte-for-byte from the cache.
    Cached(ExperimentRecord),
    /// Ran through the engine (and persisted, when a cache is attached).
    Fresh {
        /// The freshly computed record.
        record: ExperimentRecord,
        /// Whether a corrupt cache entry was found and overwritten.
        replaced_corrupt: bool,
    },
    /// The engine run panicked; the panic was contained.
    Poisoned(PoisonedPoint),
}

/// Runs sweeps point-parallel over an optional [`SweepCache`], with
/// per-point panic isolation and advisory single-writer cache locking.
#[derive(Debug, Clone, Default)]
pub struct Orchestrator {
    cache: Option<SweepCache>,
    point_threads: usize,
    isolate_panics: bool,
    lock_opts: LockOptions,
    io_backoff: Backoff,
}

thread_local! {
    /// Set while a worker intentionally contains panics, so the process
    /// panic hook stays quiet about them (the poisoned-point report is the
    /// observable, not a backtrace on stderr).
    static CONTAINING_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that suppresses output for
/// panics the orchestrator is about to catch and report as poisoned
/// points; every other panic goes to the previously installed hook.
fn install_contained_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINING_PANICS.with(|c| c.get()) {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload (the `&str` / `String` cases cover every
/// `panic!` and failed `assert!` in the engine).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Orchestrator {
    /// An orchestrator with no cache, running points in parallel on all
    /// cores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a content-addressed cache rooted at `dir` (created if
    /// missing).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> io::Result<Self> {
        self.cache = Some(SweepCache::open(dir)?);
        Ok(self)
    }

    /// Sets the number of grid points run concurrently: `0` (default) uses
    /// all cores, `1` runs points serially with each point's own
    /// [`raa_decode::McConfig`] governing its inner parallelism. With two
    /// or more point workers each point's Monte-Carlo decode is forced
    /// single-threaded — the parallelism budget moves to the point axis —
    /// which cannot change any record (the engine's determinism contract).
    pub fn with_point_threads(mut self, point_threads: usize) -> Self {
        self.point_threads = point_threads;
        self
    }

    /// Turns a panicking grid point into a [`PoisonedPoint`] entry of the
    /// report instead of failing the whole run — the fault-isolation mode
    /// the `raa-sweepd` service runs in. Off by default: a panic then
    /// fails the run with [`OrchestratorError::Poisoned`] (but still never
    /// unwinds through the caller).
    pub fn with_panic_isolation(mut self, isolate: bool) -> Self {
        self.isolate_panics = isolate;
        self
    }

    /// Configures the advisory per-entry lock discipline (wait, backoff,
    /// staleness) used around cold-point sampling and cache writes.
    pub fn with_lock_options(mut self, opts: LockOptions) -> Self {
        self.lock_opts = opts;
        self
    }

    /// Configures the bounded retry schedule for transient cache-write I/O.
    pub fn with_io_backoff(mut self, backoff: Backoff) -> Self {
        self.io_backoff = backoff;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&SweepCache> {
        self.cache.as_ref()
    }

    /// Runs every point of `grid` (cartesian expansion order), consulting
    /// the cache before sampling.
    ///
    /// # Errors
    ///
    /// [`OrchestratorError::Io`] when cache I/O fails past the retry
    /// budget, [`OrchestratorError::Poisoned`] when a point panics without
    /// panic isolation, [`OrchestratorError::PoolBuild`] when the
    /// point-thread configuration cannot build a worker pool. Without a
    /// cache and with panic isolation, the run is infallible.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepReport, OrchestratorError> {
        self.run_specs(&grid.specs())
    }

    /// Runs one spec through the full per-point pipeline: cache lookup →
    /// advisory entry lock → double-checked lookup → engine run under
    /// `catch_unwind` → retried atomic persist. `single_threaded` forces
    /// the point's inner Monte-Carlo to one thread (what the point-parallel
    /// and service worker pools do; the record is identical either way).
    ///
    /// # Errors
    ///
    /// Cache I/O past the retry budget errors, as does the engine failing
    /// to build its decode thread pool (surfaced as
    /// [`OrchestratorError::PoolBuild`] via [`engine::try_run`] — a
    /// configuration fault, not a property of the point). A panicking
    /// engine run is an `Ok(PointOutcome::Poisoned(..))`, and lock-wait
    /// exhaustion falls back to (correct, duplicated) sampling.
    pub fn run_point(
        &self,
        index: usize,
        spec: &ExperimentSpec,
        single_threaded: bool,
    ) -> Result<PointOutcome, OrchestratorError> {
        // Pre-flight the graph-free part of the engine's streaming-window
        // validation (the rest needs the built circuit): a degenerate
        // geometry poisons the point here, before it takes an entry lock
        // or burns a worker on an engine panic.
        if spec.streaming {
            if let DecoderChoice::Windowed { commit, buffer } = spec.decoder {
                let degenerate = match (commit, buffer) {
                    (0, _) => Some(WindowError::ZeroCommit),
                    (_, 0) => Some(WindowError::ZeroBuffer),
                    _ => None,
                };
                if let Some(e) = degenerate {
                    return Ok(PointOutcome::Poisoned(PoisonedPoint {
                        index,
                        name: spec.name.clone(),
                        key: spec_cache_key(spec),
                        message: format!("streaming windowed decode rejected: {e}"),
                    }));
                }
            }
        }
        let mut replaced_corrupt = false;
        let mut lock = None;
        if let Some(cache) = &self.cache {
            match cache.lookup(spec) {
                CacheLookup::Hit(record) => return Ok(PointOutcome::Cached(record)),
                CacheLookup::Miss => {}
                CacheLookup::Corrupt(_) => replaced_corrupt = true,
            }
            // Single-writer discipline: take the entry lock *before*
            // sampling so a contending orchestrator waits for our record
            // instead of duplicating the work. The lock is advisory — on
            // bounded-wait exhaustion we sample anyway (liveness over
            // dedup; determinism makes the duplicate byte-identical).
            match cache.exclusive(spec, &self.lock_opts) {
                Ok(l) => {
                    // Double-check under the lock: the previous holder may
                    // have just produced this very entry.
                    if let CacheLookup::Hit(record) = cache.lookup(spec) {
                        return Ok(PointOutcome::Cached(record));
                    }
                    lock = Some(l);
                }
                Err(OrchestratorError::LockTimeout { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        install_contained_panic_hook();
        let run_engine = || {
            if single_threaded {
                // This point shares a worker pool; nesting another pool
                // would oversubscribe without changing any record.
                let mut inner = spec.clone();
                inner.mc.threads = 1;
                engine::try_run(&inner)
            } else {
                engine::try_run(spec)
            }
        };
        CONTAINING_PANICS.with(|c| c.set(true));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run_engine));
        CONTAINING_PANICS.with(|c| c.set(false));
        let record = match result {
            // A typed engine error (decode pool build) is infrastructure,
            // not a property of the point: fail the job, don't poison.
            Ok(run) => run?,
            Err(payload) => {
                return Ok(PointOutcome::Poisoned(PoisonedPoint {
                    index,
                    name: spec.name.clone(),
                    key: spec_cache_key(spec),
                    message: panic_message(payload),
                }))
            }
        };

        if let Some(cache) = &self.cache {
            retry_io(&self.io_backoff, || cache.store(spec, &record)).map_err(|e| {
                OrchestratorError::io(
                    format!(
                        "persisting cache entry {}",
                        cache.entry_path(spec).display()
                    ),
                    e,
                )
            })?;
        }
        drop(lock);
        Ok(PointOutcome::Fresh {
            record,
            replaced_corrupt,
        })
    }

    /// [`Orchestrator::run`] over an explicit spec list.
    pub fn run_specs(&self, specs: &[ExperimentSpec]) -> Result<SweepReport, OrchestratorError> {
        let point_parallel = self.point_threads != 1;
        let results: Vec<Result<PointOutcome, OrchestratorError>> = if point_parallel {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(self.point_threads)
                .build()
                .map_err(|e| OrchestratorError::PoolBuild {
                    requested: self.point_threads,
                    detail: e.to_string(),
                })?;
            pool.install(|| {
                (0..specs.len())
                    .into_par_iter()
                    .map(|i| self.run_point(i, &specs[i], true))
                    .collect()
            })
        } else {
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| self.run_point(i, spec, false))
                .collect()
        };

        let mut report = SweepReport {
            records: Vec::with_capacity(specs.len()),
            fresh_points: 0,
            cached_points: 0,
            fresh_shots: 0,
            poisoned: Vec::new(),
            corrupt_replaced: 0,
        };
        for result in results {
            match result? {
                PointOutcome::Cached(record) => {
                    report.cached_points += 1;
                    report.records.push(record);
                }
                PointOutcome::Fresh {
                    record,
                    replaced_corrupt,
                } => {
                    report.fresh_points += 1;
                    report.fresh_shots += record.shots;
                    report.corrupt_replaced += usize::from(replaced_corrupt);
                    report.records.push(record);
                }
                PointOutcome::Poisoned(poisoned) => {
                    if self.isolate_panics {
                        report.poisoned.push(poisoned);
                    } else {
                        return Err(OrchestratorError::Poisoned(poisoned));
                    }
                }
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DecoderChoice, SamplerChoice};
    use crate::{run_sweep, NoiseModel};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("raa-sim-orch-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new(
            "orch/memory",
            Scenario::Memory {
                rounds: Rounds::Fixed(2),
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![3e-3, 5e-3])
        .with_shots(ShotBudget::Fixed(512))
        .with_seed(0xA11CE)
    }

    #[test]
    fn fingerprint_separates_every_semantic_axis() {
        let base = small_grid().specs().remove(0);
        let fp = spec_fingerprint(&base);
        let variants: Vec<ExperimentSpec> = vec![
            ExperimentSpec {
                seed: base.seed + 1,
                ..base.clone()
            },
            ExperimentSpec {
                distance: 5,
                ..base.clone()
            },
            ExperimentSpec {
                noise: NoiseModel::uniform(1e-3),
                ..base.clone()
            },
            ExperimentSpec {
                decoder: DecoderChoice::Matching,
                ..base.clone()
            },
            ExperimentSpec {
                sampler: SamplerChoice::Circuit,
                ..base.clone()
            },
            ExperimentSpec {
                shots: ShotBudget::UntilFailures {
                    max_shots: 512,
                    target_failures: 8,
                },
                ..base.clone()
            },
            ExperimentSpec {
                name: "other".into(),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(spec_fingerprint(v), fp, "{v:?}");
            assert_ne!(spec_cache_key(v), spec_cache_key(&base));
        }
        // The mc execution parameters are not semantic: same key.
        let retimed = ExperimentSpec {
            mc: raa_decode::McConfig::default()
                .with_threads(7)
                .with_batch(33),
            ..base.clone()
        };
        assert_eq!(spec_fingerprint(&retimed), fp);
    }

    #[test]
    fn warm_cache_replays_bytes_and_samples_nothing() {
        let tmp = TempDir::new("warm");
        let grid = small_grid();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let cold = orch.run(&grid).unwrap();
        assert_eq!(cold.fresh_points, 4);
        assert_eq!(cold.cached_points, 0);
        assert_eq!(cold.fresh_shots, 4 * 512);

        let warm = orch.run(&grid).unwrap();
        assert_eq!(warm.fresh_points, 0);
        assert_eq!(warm.cached_points, 4);
        assert_eq!(warm.fresh_shots, 0);
        for (a, b) in cold.records.iter().zip(&warm.records) {
            assert_eq!(a.to_json(), b.to_json(), "byte-identical replay");
        }
        // And both match the plain uncached engine sweep.
        let plain = run_sweep(&grid);
        for (a, b) in plain.iter().zip(&cold.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
        // No locks or temp files survive a clean run.
        for f in fs::read_dir(&tmp.0).unwrap() {
            let name = f.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(name.ends_with(".json"), "leftover {name}");
        }
    }

    #[test]
    fn interrupted_sweep_resumes_only_missing_points() {
        let tmp = TempDir::new("resume");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        orch.run(&grid).unwrap();
        // Simulate an interruption that lost one point.
        let victim = orch.cache().unwrap().entry_path(&specs[2]);
        fs::remove_file(&victim).unwrap();
        let resumed = orch.run(&grid).unwrap();
        assert_eq!(resumed.fresh_points, 1);
        assert_eq!(resumed.cached_points, 3);
        assert_eq!(resumed.fresh_shots, 512);
        assert!(victim.exists(), "re-run point persisted again");
    }

    #[test]
    fn corrupt_or_mismatched_entries_are_recomputed() {
        let tmp = TempDir::new("corrupt");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let cold = orch.run(&grid).unwrap();
        let cache = orch.cache().unwrap();
        // Truncated JSON (torn write).
        fs::write(cache.entry_path(&specs[0]), "{\"name\":\"orch").unwrap();
        // Well-formed JSON whose spec echo belongs to a different point
        // (what a key collision would look like).
        fs::write(
            cache.entry_path(&specs[1]),
            format!("{}\n", cold.records[3].to_json()),
        )
        .unwrap();
        let healed = orch.run(&grid).unwrap();
        assert_eq!(healed.fresh_points, 2);
        assert_eq!(healed.cached_points, 2);
        assert_eq!(healed.corrupt_replaced, 2);
        for (a, b) in cold.records.iter().zip(&healed.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn stale_entry_with_same_label_but_different_scenario_params_misses() {
        let tmp = TempDir::new("stale");
        let grid = small_grid();
        let spec = grid.specs().remove(0); // Memory { rounds: Fixed(2) }
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let record = orch.run_specs(std::slice::from_ref(&spec)).unwrap().records[0].clone();
        // Same name/seed/noise/decoder and the same "memory" label, but a
        // different round schedule: the stale entry must not replay.
        let longer = ExperimentSpec {
            scenario: Scenario::Memory {
                rounds: Rounds::Fixed(3),
            },
            ..spec.clone()
        };
        let cache = orch.cache().unwrap();
        fs::write(cache.entry_path(&longer), format!("{}\n", record.to_json())).unwrap();
        assert!(
            cache.load(&longer).is_none(),
            "se_rounds mismatch must be a miss"
        );
        let healed = orch.run_specs(std::slice::from_ref(&longer)).unwrap();
        assert_eq!(healed.fresh_points, 1);
        assert_eq!(healed.records[0].se_rounds, 3);
    }

    #[test]
    fn until_failures_entry_must_justify_its_early_stop() {
        let grid = small_grid();
        let mut spec = grid.specs().remove(0);
        spec.shots = ShotBudget::UntilFailures {
            max_shots: 4_096,
            target_failures: 4,
        };
        let record = engine::run(&spec);
        assert!(record_matches_spec(&record, &spec));
        // A record that stopped early without reaching the failure target
        // cannot belong to this budget.
        let mut bogus = record.clone();
        bogus.shots = record.shots.saturating_sub(1).max(1);
        bogus.failures = 0;
        assert!(!record_matches_spec(&bogus, &spec));
    }

    #[test]
    fn duplicate_specs_in_one_parallel_run_do_not_race() {
        let tmp = TempDir::new("dup");
        let spec = small_grid().specs().remove(0);
        let duplicates = vec![spec.clone(), spec.clone(), spec.clone(), spec];
        let orch = Orchestrator::new()
            .with_point_threads(4)
            .with_cache_dir(&tmp.0)
            .unwrap();
        let report = orch.run_specs(&duplicates).unwrap();
        assert_eq!(report.records.len(), 4);
        for r in &report.records[1..] {
            assert_eq!(r.to_json(), report.records[0].to_json());
        }
        // With entry locking, at most one of the duplicates should have
        // sampled; the rest wait on the lock and replay the winner.
        assert!(report.fresh_points >= 1);
        assert_eq!(report.fresh_points + report.cached_points, 4);
    }

    #[test]
    fn point_parallelism_is_bit_deterministic() {
        let grid = small_grid();
        let serial = Orchestrator::new()
            .with_point_threads(1)
            .run(&grid)
            .unwrap();
        for threads in [0usize, 2, 8] {
            let parallel = Orchestrator::new()
                .with_point_threads(threads)
                .run(&grid)
                .unwrap();
            for (a, b) in serial.records.iter().zip(&parallel.records) {
                assert_eq!(a.to_json(), b.to_json(), "point_threads = {threads}");
            }
        }
    }

    #[test]
    fn uncached_orchestrator_reports_all_fresh() {
        let report = Orchestrator::new().run(&small_grid()).unwrap();
        assert_eq!(report.fresh_points, 4);
        assert_eq!(report.total_points(), 4);
        assert_eq!(report.fresh_shots, 4 * 512);
        assert!(report.poisoned.is_empty());
    }

    /// A spec whose engine run panics (zero SE rounds trip the
    /// `Rounds::resolve` assertion) — the fault-injection workhorse.
    fn poison_spec() -> ExperimentSpec {
        let mut spec = small_grid().specs().remove(0);
        spec.name = "orch/poison".into();
        spec.scenario = Scenario::Memory {
            rounds: Rounds::Fixed(0),
        };
        spec
    }

    #[test]
    fn degenerate_streaming_window_poisons_before_the_engine_runs() {
        let mut spec = small_grid().specs().remove(0);
        spec.name = "orch/zero-buffer-stream".into();
        spec.decoder = DecoderChoice::Windowed {
            commit: 2,
            buffer: 0,
        };
        spec.streaming = true;
        let report = Orchestrator::new()
            .with_panic_isolation(true)
            .run_specs(&[spec])
            .unwrap();
        assert_eq!(report.poisoned.len(), 1);
        assert!(
            report.poisoned[0]
                .message
                .contains("streaming windowed decode rejected"),
            "{}",
            report.poisoned[0].message
        );
        assert!(
            report.poisoned[0].message.contains("look-ahead"),
            "the typed WindowError must surface: {}",
            report.poisoned[0].message
        );
    }

    #[test]
    fn poisoned_point_fails_typed_without_isolation() {
        let mut specs = small_grid().specs();
        specs.insert(1, poison_spec());
        let err = Orchestrator::new()
            .with_point_threads(1)
            .run_specs(&specs)
            .unwrap_err();
        match err {
            OrchestratorError::Poisoned(p) => {
                assert_eq!(p.index, 1);
                assert_eq!(p.name, "orch/poison");
                assert!(p.message.contains("SE round"), "{}", p.message);
            }
            other => panic!("expected Poisoned, got {other}"),
        }
    }

    #[test]
    fn panic_isolation_quarantines_and_completes_the_rest() {
        let grid = small_grid();
        let mut specs = grid.specs();
        specs.insert(2, poison_spec());
        let report = Orchestrator::new()
            .with_panic_isolation(true)
            .run_specs(&specs)
            .unwrap();
        assert_eq!(report.poisoned.len(), 1);
        assert_eq!(report.poisoned[0].index, 2);
        assert_eq!(report.records.len(), 4, "all healthy points completed");
        assert_eq!(report.total_points(), 5);
        // The healthy records are exactly the plain sweep's.
        let plain = run_sweep(&grid);
        for (a, b) in plain.iter().zip(&report.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn scrub_quarantines_corrupt_and_clears_stale_litter() {
        let tmp = TempDir::new("scrub");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        orch.run(&grid).unwrap();
        let cache = orch.cache().unwrap();
        // A torn entry, an orphaned temp file and an abandoned lock.
        fs::write(cache.entry_path(&specs[0]), "{\"nope").unwrap();
        fs::write(tmp.0.join("deadbeef.tmp.1234.0"), "partial").unwrap();
        fs::write(tmp.0.join(format!("{}.lock", "ab".repeat(16))), "pid 1\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let opts = ScrubOptions {
            stale_tmp_after: Duration::from_millis(5),
            stale_lock_after: Duration::from_millis(5),
            ..ScrubOptions::default()
        };
        let report = cache.scrub(&opts).unwrap();
        assert_eq!(report.scanned, 4);
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.healthy, 3);
        assert_eq!(report.stale_tmps_removed, 1);
        assert_eq!(report.stale_locks_removed, 1);
        assert!(cache.quarantine_dir().exists());
        assert!(!cache.entry_path(&specs[0]).exists());
        // The quarantined point is a miss, so the next sweep heals it.
        let healed = orch.run(&grid).unwrap();
        assert_eq!(healed.fresh_points, 1);
    }

    #[test]
    fn scrub_evicts_lru_over_size_budget() {
        let tmp = TempDir::new("evict");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        orch.run(&grid).unwrap();
        let cache = orch.cache().unwrap();
        // Make one entry decisively the oldest.
        let oldest = cache.entry_path(&specs[0]);
        std::thread::sleep(Duration::from_millis(20));
        for spec in &specs[1..] {
            let record = cache.load(spec).unwrap();
            cache.store(spec, &record).unwrap(); // refresh mtime
        }
        let total: u64 = specs
            .iter()
            .map(|s| fs::metadata(cache.entry_path(s)).unwrap().len())
            .sum();
        let report = cache
            .scrub(&ScrubOptions {
                size_budget: Some(total - 1),
                ..ScrubOptions::default()
            })
            .unwrap();
        assert_eq!(report.evicted, 1);
        assert!(!oldest.exists(), "LRU entry evicted first");
        assert!(report.bytes_after < total);
        for spec in &specs[1..] {
            assert!(cache.entry_path(spec).exists());
        }
    }

    #[test]
    fn validate_entry_classifies_corruption() {
        let tmp = TempDir::new("validate");
        fs::create_dir_all(&tmp.0).unwrap();
        let spec = small_grid().specs().remove(0);
        let record = engine::run(&spec);
        let good = tmp.0.join("good.json");
        fs::write(&good, format!("{}\n", record.to_json())).unwrap();
        assert_eq!(SweepCache::validate_entry(&good).unwrap(), record);

        let torn = tmp.0.join("torn.json");
        fs::write(&torn, "{\"name\":\"x").unwrap();
        match SweepCache::validate_entry(&torn) {
            Err(OrchestratorError::CorruptEntry { detail, .. }) => {
                assert!(detail.contains("unparsable"), "{detail}")
            }
            other => panic!("expected CorruptEntry, got {other:?}"),
        }

        let mut impossible = record.clone();
        impossible.failures = impossible.shots + 1;
        let inconsistent = tmp.0.join("inconsistent.json");
        fs::write(&inconsistent, format!("{}\n", impossible.to_json())).unwrap();
        match SweepCache::validate_entry(&inconsistent) {
            Err(OrchestratorError::CorruptEntry { detail, .. }) => {
                assert!(detail.contains("failures"), "{detail}")
            }
            other => panic!("expected CorruptEntry, got {other:?}"),
        }

        match SweepCache::validate_entry(&tmp.0.join("absent.json")) {
            Err(OrchestratorError::Io { .. }) => {}
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn exclusive_lock_times_out_typed() {
        let tmp = TempDir::new("locktimeout");
        let spec = small_grid().specs().remove(0);
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let cache = orch.cache().unwrap();
        let held = cache.exclusive(&spec, &LockOptions::default()).unwrap();
        let short = LockOptions {
            wait: Duration::from_millis(20),
            ..LockOptions::default()
        };
        match cache.exclusive(&spec, &short) {
            Err(OrchestratorError::LockTimeout { path, .. }) => {
                assert_eq!(path, cache.lock_path(&spec))
            }
            other => panic!("expected LockTimeout, got {other:?}"),
        }
        held.release().unwrap();
    }

    #[test]
    fn held_entry_lock_does_not_block_correctness() {
        // A wedged (but fresh) lock from another process: the orchestrator
        // waits out its bounded patience, then samples anyway.
        let tmp = TempDir::new("lockfallback");
        let spec = small_grid().specs().remove(0);
        let orch = Orchestrator::new()
            .with_point_threads(1)
            .with_lock_options(LockOptions {
                wait: Duration::from_millis(30),
                ..LockOptions::default()
            })
            .with_cache_dir(&tmp.0)
            .unwrap();
        let cache = orch.cache().unwrap().clone();
        let _wedge = FileLock::acquire(cache.lock_path(&spec), &LockOptions::default()).unwrap();
        let report = orch.run_specs(std::slice::from_ref(&spec)).unwrap();
        assert_eq!(report.fresh_points, 1, "lock fallback sampled");
        assert_eq!(
            report.records[0].to_json(),
            engine::run(&spec).to_json(),
            "fallback record is the deterministic one"
        );
    }
}
