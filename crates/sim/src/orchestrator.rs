//! Resumable sweep orchestration over a content-addressed record cache.
//!
//! Running a [`SweepGrid`] is a pure function of its specs (the engine's
//! determinism guarantee), which makes every grid point cacheable by
//! content: the cache key is a deterministic hash of the point's complete
//! *semantic* spec — scenario (with rounds/depth/patches), distance, basis,
//! noise, decoder, sampler, streaming flag, shot budget and seed — and
//! deliberately excludes the execution parameters in
//! [`ExperimentSpec::mc`], which are guaranteed not to change the record.
//!
//! The [`Orchestrator`] runs grid points in parallel across the same
//! worker-pool machinery the Monte-Carlo pipeline uses, consulting the
//! cache before sampling a single shot: a hit replays the stored JSON
//! record byte-for-byte (via [`ExperimentRecord::from_json`]); a miss runs
//! the engine and persists the record atomically (temp file + rename), so
//! an interrupted sweep resumes from its completed points and a repeated
//! sweep is free. The [`SweepReport`] says exactly how much fresh sampling
//! a run performed — the number CI pins to zero on a warm cache.
//!
//! # Example
//!
//! ```
//! use raa_sim::{Orchestrator, Rounds, Scenario, ShotBudget, SweepGrid};
//!
//! let grid = SweepGrid::new(
//!     "demo",
//!     Scenario::Memory { rounds: Rounds::Fixed(2) },
//! )
//! .with_distances(vec![3])
//! .with_shots(ShotBudget::Fixed(256));
//!
//! let dir = std::env::temp_dir().join(format!("raa-orch-doc-{}", std::process::id()));
//! let orch = Orchestrator::new().with_cache_dir(&dir).unwrap();
//! let cold = orch.run(&grid).unwrap();
//! assert_eq!(cold.fresh_points, 1);
//!
//! // Warm: same records, zero Monte-Carlo sampling.
//! let warm = orch.run(&grid).unwrap();
//! assert_eq!(warm.fresh_shots, 0);
//! assert_eq!(warm.records, cold.records);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::engine;
use crate::record::ExperimentRecord;
use crate::spec::{ExperimentSpec, Rounds, Scenario, ShotBudget, SweepGrid};
use rayon::prelude::*;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version tag mixed into every fingerprint: bump when the engine's
/// sampling/decoding streams change behaviour, and every stale cache entry
/// misses instead of replaying records from the old pipeline.
const FINGERPRINT_VERSION: u32 = 1;

fn rounds_fingerprint(rounds: Rounds) -> String {
    match rounds {
        Rounds::Fixed(n) => format!("fixed:{n}"),
        Rounds::TimesDistance(k) => format!("xd:{k}"),
    }
}

fn scenario_fingerprint(scenario: &Scenario) -> String {
    match *scenario {
        Scenario::Memory { rounds } => {
            format!("memory(rounds={})", rounds_fingerprint(rounds))
        }
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => format!("transversal_cnot(patches={patches},depth={depth},x={cnots_per_round})"),
        Scenario::GhzFanout { targets } => format!("ghz_fanout(targets={targets})"),
        Scenario::DeepCnot {
            patches,
            rounds,
            cnots_per_round,
        } => format!(
            "deep_cnot(patches={patches},rounds={},x={cnots_per_round})",
            rounds_fingerprint(rounds)
        ),
    }
}

fn budget_fingerprint(budget: ShotBudget) -> String {
    match budget {
        ShotBudget::Fixed(shots) => format!("fixed:{shots}"),
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => format!("until:{max_shots}:{target_failures}"),
    }
}

/// The canonical, human-readable description of everything that determines
/// a spec's record — and nothing that doesn't (the `mc` execution
/// parameters are excluded by the engine's determinism contract). Equal
/// fingerprints ⇔ byte-identical records. Floats use Rust's shortest
/// round-trip formatting, so the string is platform-stable.
pub fn spec_fingerprint(spec: &ExperimentSpec) -> String {
    format!(
        "v{FINGERPRINT_VERSION};name={};scenario={};d={};basis={:?};\
         p2={};p_idle={};p_prep={};p_meas={};decoder={};sampler={};\
         streaming={};shots={};seed={}",
        spec.name,
        scenario_fingerprint(&spec.scenario),
        spec.distance,
        spec.basis,
        spec.noise.p2,
        spec.noise.p_idle,
        spec.noise.p_prep,
        spec.noise.p_meas,
        spec.decoder.label(),
        spec.sampler.label(),
        spec.streaming,
        budget_fingerprint(spec.shots),
        spec.seed,
    )
}

/// FNV-1a over `bytes` from the given offset basis, finished with a
/// SplitMix64-style avalanche so nearby fingerprints spread over the full
/// key space.
fn hash64(bytes: &[u8], offset: u64) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// The content-addressed cache key of a spec: 128 bits of fingerprint hash
/// as 32 hex characters (two independent 64-bit passes, so accidental
/// collisions are out of reach for any realistic sweep census).
pub fn spec_cache_key(spec: &ExperimentSpec) -> String {
    let fp = spec_fingerprint(spec);
    let a = hash64(fp.as_bytes(), 0xCBF2_9CE4_8422_2325);
    let b = hash64(fp.as_bytes(), 0x6C62_272E_07BB_0142);
    format!("{a:016x}{b:016x}")
}

/// On-disk record cache: one `<key>.json` file per grid point, each holding
/// exactly the record's deterministic JSON line.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
}

impl SweepCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a spec.
    pub fn entry_path(&self, spec: &ExperimentSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec_cache_key(spec)))
    }

    /// Loads the cached record for `spec`, or `None` on a miss. Unreadable,
    /// unparsable or mismatched entries (a hash collision, a truncated
    /// write from a killed process, a hand-edited file) are treated as
    /// misses — the orchestrator re-runs the point and overwrites them.
    pub fn load(&self, spec: &ExperimentSpec) -> Option<ExperimentRecord> {
        let text = fs::read_to_string(self.entry_path(spec)).ok()?;
        let record = ExperimentRecord::from_json(text.trim_end()).ok()?;
        record_matches_spec(&record, spec).then_some(record)
    }

    /// Persists `record` as the entry for `spec`, atomically: the bytes land
    /// under a temporary name and are renamed into place, so concurrent
    /// writers (parallel points, or two processes sharing a cache) can never
    /// expose a torn entry.
    pub fn store(&self, spec: &ExperimentSpec, record: &ExperimentRecord) -> io::Result<()> {
        // Distinct temp names even for identical specs racing in one
        // parallel run (pid alone would collide and fail the loser's
        // rename).
        static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let final_path = self.entry_path(spec);
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{}",
            spec_cache_key(spec),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut json = record.to_json();
        json.push('\n');
        fs::write(&tmp_path, json)?;
        fs::rename(&tmp_path, final_path)
    }
}

/// Checks the loaded record's spec echo against the spec that addressed it:
/// the guard that turns hash collisions and stale entries into cache misses
/// instead of silently wrong results.
fn record_matches_spec(record: &ExperimentRecord, spec: &ExperimentSpec) -> bool {
    let budget_ok = match spec.shots {
        ShotBudget::Fixed(shots) => record.shots == shots,
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => {
            // An early-stopped record must actually have reached the
            // failure target; otherwise it must have exhausted the cap.
            record.shots <= max_shots
                && (record.failures >= target_failures || record.shots == max_shots)
        }
    };
    // The scenario label alone cannot distinguish e.g. two memory round
    // schedules, so also check the scenario parameters the record echoes.
    let scenario_ok = match spec.scenario {
        Scenario::Memory { rounds } => {
            record.patches == 1
                && record.cnots == 0
                && record.se_rounds == rounds.resolve(spec.distance)
                && record.cnots_per_round.is_none()
        }
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => {
            record.patches == patches
                && record.cnots == depth
                && record.cnots_per_round == Some(cnots_per_round)
        }
        Scenario::GhzFanout { .. } => record.cnots_per_round.is_none(),
        Scenario::DeepCnot {
            patches,
            rounds,
            cnots_per_round,
        } => {
            record.patches == patches
                && record.se_rounds <= rounds.resolve(spec.distance)
                && record.cnots_per_round == Some(cnots_per_round)
        }
    };
    budget_ok
        && scenario_ok
        && record.name == spec.name
        && record.scenario == spec.scenario.label()
        && record.distance == spec.distance
        && record.basis == spec.basis
        && record.noise == spec.noise
        && record.decoder == spec.decoder.label()
        && record.sampler == spec.sampler.label()
        && record.streaming == spec.streaming
        && record.seed == spec.seed
}

/// What a cached sweep run did: the records in grid order, plus the
/// fresh-vs-replayed accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per grid point, in the grid's deterministic expansion
    /// order — identical to what [`engine::run_sweep`] would return.
    pub records: Vec<ExperimentRecord>,
    /// Points that ran through the engine this time.
    pub fresh_points: usize,
    /// Points replayed from the cache.
    pub cached_points: usize,
    /// Monte-Carlo shots actually sampled this run (0 on a fully warm
    /// cache — the property the CI smoke pins).
    pub fresh_shots: usize,
}

impl SweepReport {
    /// Total points in the sweep.
    pub fn total_points(&self) -> usize {
        self.fresh_points + self.cached_points
    }
}

/// Runs sweeps point-parallel over an optional [`SweepCache`].
#[derive(Debug, Clone, Default)]
pub struct Orchestrator {
    cache: Option<SweepCache>,
    point_threads: usize,
}

impl Orchestrator {
    /// An orchestrator with no cache, running points in parallel on all
    /// cores.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a content-addressed cache rooted at `dir` (created if
    /// missing).
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> io::Result<Self> {
        self.cache = Some(SweepCache::open(dir)?);
        Ok(self)
    }

    /// Sets the number of grid points run concurrently: `0` (default) uses
    /// all cores, `1` runs points serially with each point's own
    /// [`raa_decode::McConfig`] governing its inner parallelism. With two
    /// or more point workers each point's Monte-Carlo decode is forced
    /// single-threaded — the parallelism budget moves to the point axis —
    /// which cannot change any record (the engine's determinism contract).
    pub fn with_point_threads(mut self, point_threads: usize) -> Self {
        self.point_threads = point_threads;
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&SweepCache> {
        self.cache.as_ref()
    }

    /// Runs every point of `grid` (cartesian expansion order), consulting
    /// the cache before sampling.
    ///
    /// # Errors
    ///
    /// Only cache I/O can fail (creating, reading or atomically renaming
    /// entry files); without a cache the run is infallible.
    pub fn run(&self, grid: &SweepGrid) -> io::Result<SweepReport> {
        self.run_specs(&grid.specs())
    }

    /// [`Orchestrator::run`] over an explicit spec list.
    pub fn run_specs(&self, specs: &[ExperimentSpec]) -> io::Result<SweepReport> {
        let point_parallel = self.point_threads != 1;
        let run_point = |spec: &ExperimentSpec| -> io::Result<(ExperimentRecord, bool)> {
            if let Some(cache) = &self.cache {
                if let Some(record) = cache.load(spec) {
                    return Ok((record, false));
                }
            }
            let record = if point_parallel {
                // Points occupy the worker pool; nesting another pool per
                // point would oversubscribe without changing any record.
                let mut inner = spec.clone();
                inner.mc.threads = 1;
                engine::run(&inner)
            } else {
                engine::run(spec)
            };
            if let Some(cache) = &self.cache {
                cache.store(spec, &record)?;
            }
            Ok((record, true))
        };

        let results: Vec<io::Result<(ExperimentRecord, bool)>> = if point_parallel {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(self.point_threads)
                .build()
                .expect("building the sweep point pool");
            pool.install(|| {
                (0..specs.len())
                    .into_par_iter()
                    .map(|i| run_point(&specs[i]))
                    .collect()
            })
        } else {
            specs.iter().map(run_point).collect()
        };

        let mut report = SweepReport {
            records: Vec::with_capacity(specs.len()),
            fresh_points: 0,
            cached_points: 0,
            fresh_shots: 0,
        };
        for result in results {
            let (record, fresh) = result?;
            if fresh {
                report.fresh_points += 1;
                report.fresh_shots += record.shots;
            } else {
                report.cached_points += 1;
            }
            report.records.push(record);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DecoderChoice, SamplerChoice};
    use crate::{run_sweep, NoiseModel};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("raa-sim-orch-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new(
            "orch/memory",
            Scenario::Memory {
                rounds: Rounds::Fixed(2),
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![3e-3, 5e-3])
        .with_shots(ShotBudget::Fixed(512))
        .with_seed(0xA11CE)
    }

    #[test]
    fn fingerprint_separates_every_semantic_axis() {
        let base = small_grid().specs().remove(0);
        let fp = spec_fingerprint(&base);
        let variants: Vec<ExperimentSpec> = vec![
            ExperimentSpec {
                seed: base.seed + 1,
                ..base.clone()
            },
            ExperimentSpec {
                distance: 5,
                ..base.clone()
            },
            ExperimentSpec {
                noise: NoiseModel::uniform(1e-3),
                ..base.clone()
            },
            ExperimentSpec {
                decoder: DecoderChoice::Matching,
                ..base.clone()
            },
            ExperimentSpec {
                sampler: SamplerChoice::Circuit,
                ..base.clone()
            },
            ExperimentSpec {
                shots: ShotBudget::UntilFailures {
                    max_shots: 512,
                    target_failures: 8,
                },
                ..base.clone()
            },
            ExperimentSpec {
                name: "other".into(),
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(spec_fingerprint(v), fp, "{v:?}");
            assert_ne!(spec_cache_key(v), spec_cache_key(&base));
        }
        // The mc execution parameters are not semantic: same key.
        let retimed = ExperimentSpec {
            mc: raa_decode::McConfig::default()
                .with_threads(7)
                .with_batch(33),
            ..base.clone()
        };
        assert_eq!(spec_fingerprint(&retimed), fp);
    }

    #[test]
    fn warm_cache_replays_bytes_and_samples_nothing() {
        let tmp = TempDir::new("warm");
        let grid = small_grid();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let cold = orch.run(&grid).unwrap();
        assert_eq!(cold.fresh_points, 4);
        assert_eq!(cold.cached_points, 0);
        assert_eq!(cold.fresh_shots, 4 * 512);

        let warm = orch.run(&grid).unwrap();
        assert_eq!(warm.fresh_points, 0);
        assert_eq!(warm.cached_points, 4);
        assert_eq!(warm.fresh_shots, 0);
        for (a, b) in cold.records.iter().zip(&warm.records) {
            assert_eq!(a.to_json(), b.to_json(), "byte-identical replay");
        }
        // And both match the plain uncached engine sweep.
        let plain = run_sweep(&grid);
        for (a, b) in plain.iter().zip(&cold.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn interrupted_sweep_resumes_only_missing_points() {
        let tmp = TempDir::new("resume");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        orch.run(&grid).unwrap();
        // Simulate an interruption that lost one point.
        let victim = orch.cache().unwrap().entry_path(&specs[2]);
        fs::remove_file(&victim).unwrap();
        let resumed = orch.run(&grid).unwrap();
        assert_eq!(resumed.fresh_points, 1);
        assert_eq!(resumed.cached_points, 3);
        assert_eq!(resumed.fresh_shots, 512);
        assert!(victim.exists(), "re-run point persisted again");
    }

    #[test]
    fn corrupt_or_mismatched_entries_are_recomputed() {
        let tmp = TempDir::new("corrupt");
        let grid = small_grid();
        let specs = grid.specs();
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let cold = orch.run(&grid).unwrap();
        let cache = orch.cache().unwrap();
        // Truncated JSON (torn write).
        fs::write(cache.entry_path(&specs[0]), "{\"name\":\"orch").unwrap();
        // Well-formed JSON whose spec echo belongs to a different point
        // (what a key collision would look like).
        fs::write(
            cache.entry_path(&specs[1]),
            format!("{}\n", cold.records[3].to_json()),
        )
        .unwrap();
        let healed = orch.run(&grid).unwrap();
        assert_eq!(healed.fresh_points, 2);
        assert_eq!(healed.cached_points, 2);
        for (a, b) in cold.records.iter().zip(&healed.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }

    #[test]
    fn stale_entry_with_same_label_but_different_scenario_params_misses() {
        let tmp = TempDir::new("stale");
        let grid = small_grid();
        let spec = grid.specs().remove(0); // Memory { rounds: Fixed(2) }
        let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
        let record = orch.run_specs(std::slice::from_ref(&spec)).unwrap().records[0].clone();
        // Same name/seed/noise/decoder and the same "memory" label, but a
        // different round schedule: the stale entry must not replay.
        let longer = ExperimentSpec {
            scenario: Scenario::Memory {
                rounds: Rounds::Fixed(3),
            },
            ..spec.clone()
        };
        let cache = orch.cache().unwrap();
        fs::write(cache.entry_path(&longer), format!("{}\n", record.to_json())).unwrap();
        assert!(
            cache.load(&longer).is_none(),
            "se_rounds mismatch must be a miss"
        );
        let healed = orch.run_specs(std::slice::from_ref(&longer)).unwrap();
        assert_eq!(healed.fresh_points, 1);
        assert_eq!(healed.records[0].se_rounds, 3);
    }

    #[test]
    fn until_failures_entry_must_justify_its_early_stop() {
        let grid = small_grid();
        let mut spec = grid.specs().remove(0);
        spec.shots = ShotBudget::UntilFailures {
            max_shots: 4_096,
            target_failures: 4,
        };
        let record = engine::run(&spec);
        assert!(record_matches_spec(&record, &spec));
        // A record that stopped early without reaching the failure target
        // cannot belong to this budget.
        let mut bogus = record.clone();
        bogus.shots = record.shots.saturating_sub(1).max(1);
        bogus.failures = 0;
        assert!(!record_matches_spec(&bogus, &spec));
    }

    #[test]
    fn duplicate_specs_in_one_parallel_run_do_not_race() {
        let tmp = TempDir::new("dup");
        let spec = small_grid().specs().remove(0);
        let duplicates = vec![spec.clone(), spec.clone(), spec.clone(), spec];
        let orch = Orchestrator::new()
            .with_point_threads(4)
            .with_cache_dir(&tmp.0)
            .unwrap();
        let report = orch.run_specs(&duplicates).unwrap();
        assert_eq!(report.records.len(), 4);
        for r in &report.records[1..] {
            assert_eq!(r.to_json(), report.records[0].to_json());
        }
    }

    #[test]
    fn point_parallelism_is_bit_deterministic() {
        let grid = small_grid();
        let serial = Orchestrator::new()
            .with_point_threads(1)
            .run(&grid)
            .unwrap();
        for threads in [0usize, 2, 8] {
            let parallel = Orchestrator::new()
                .with_point_threads(threads)
                .run(&grid)
                .unwrap();
            for (a, b) in serial.records.iter().zip(&parallel.records) {
                assert_eq!(a.to_json(), b.to_json(), "point_threads = {threads}");
            }
        }
    }

    #[test]
    fn uncached_orchestrator_reports_all_fresh() {
        let report = Orchestrator::new().run(&small_grid()).unwrap();
        assert_eq!(report.fresh_points, 4);
        assert_eq!(report.total_points(), 4);
        assert_eq!(report.fresh_shots, 4 * 512);
    }
}
