//! The JSON-lines job codec spoken between `raa-sweepd` and its clients.
//!
//! One request per line, one response per line, over any byte stream
//! (TCP in practice). The wire format is self-contained JSON built on the
//! crate's own recursive [`Json`] value — the record format's flat parser
//! ([`crate::record`]) deliberately rejects nesting, and the workspace is
//! offline-vendored, so the codec carries its own (depth-limited) parser
//! and writer with the exact same escaping and shortest-round-trip float
//! formatting rules as the record format.
//!
//! Two transport rules keep the daemon's headline guarantees intact:
//!
//! - **Records travel as their exact JSON line**, embedded as one JSON
//!   string (escaping is lossless), so a record's bytes survive the wire
//!   unchanged and a warm `raa-sweepd` answer is byte-identical to a local
//!   sweep — the property CI pins.
//! - **Seeds travel as decimal strings** (like the record format): a `u64`
//!   seed does not fit `f64` exactly.
//!
//! A spec's `mc` execution parameters are *not* part of the wire format:
//! they cannot change any record (the engine's determinism contract), and
//! the server owns its own execution budget.
//!
//! # Example
//!
//! ```
//! use raa_sim::jobs::{Request, Response};
//! use raa_sim::{ExperimentSpec, Rounds, Scenario};
//!
//! let spec = ExperimentSpec::new(
//!     "demo",
//!     Scenario::Memory { rounds: Rounds::Fixed(2) },
//!     3,
//! );
//! let request = Request::Sweep { id: "job-1".into(), specs: vec![spec] };
//! let line = request.to_line();
//! assert!(!line.contains('\n'), "one request per line");
//! let decoded = Request::from_line(&line).unwrap();
//! assert_eq!(decoded.id(), "job-1");
//! # let _ = Response::Error { id: "job-1".into(), message: "demo".into() };
//! ```

use crate::calibrate::{Calibration, CalibrationConfig};
use crate::error::PoisonedPoint;
use crate::orchestrator::ScrubReport;
use crate::record::ExperimentRecord;
use crate::spec::{DecoderChoice, ExperimentSpec, Rounds, SamplerChoice, Scenario, ShotBudget};
use raa_core::fit::FitResult;
use raa_core::ErrorModelParams;
use raa_factory::FactoryProtocol;
use raa_gadgets::GadgetKind;
use raa_surface::{Basis, NoiseModel};

/// Deepest nesting the wire parser accepts (requests are ~3 levels deep;
/// the limit exists so hostile input cannot blow the stack).
const MAX_DEPTH: usize = 16;

/// A JSON value, recursive (unlike the record format's flat parser).
/// Object fields keep insertion order, so encoding is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (written with shortest round-trip formatting).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value (the whole input must be consumed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes to a single line (no interior newlines: every newline in
    /// a string is escaped, so one value is always one line).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// The exact escaping rules of the record format.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err("unexpected end of input".into()),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect_byte(b':')?;
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&other) => Err(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("malformed number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("malformed number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("malformed \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let Some(ch) = rest.chars().next() else {
                        return Err("invalid utf-8 in string".to_string());
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn req_field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_str(obj: &Json, key: &str) -> Result<String, String> {
    req_field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn req_f64(obj: &Json, key: &str) -> Result<f64, String> {
    req_field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn req_usize(obj: &Json, key: &str) -> Result<usize, String> {
    let v = req_f64(obj, key)?;
    if v < 0.0 || v.fract() != 0.0 || v > 2f64.powi(53) {
        return Err(format!("field {key:?} must be a non-negative integer"));
    }
    Ok(v as usize)
}

fn req_bool(obj: &Json, key: &str) -> Result<bool, String> {
    req_field(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} must be a boolean"))
}

fn req_u64_str(obj: &Json, key: &str) -> Result<u64, String> {
    req_str(obj, key)?
        .parse()
        .map_err(|_| format!("field {key:?} must be a decimal u64 string"))
}

fn req_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], String> {
    req_field(obj, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))
}

fn num(v: f64) -> Json {
    Json::Num(v)
}

fn unum(v: usize) -> Json {
    Json::Num(v as f64)
}

fn s(v: impl Into<String>) -> Json {
    Json::Str(v.into())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

// ---------------------------------------------------------------------------
// Spec codec
// ---------------------------------------------------------------------------

fn rounds_to_wire(rounds: Rounds) -> String {
    match rounds {
        Rounds::Fixed(n) => format!("fixed:{n}"),
        Rounds::TimesDistance(k) => format!("xd:{k}"),
    }
}

fn rounds_from_wire(text: &str) -> Result<Rounds, String> {
    let parse = |v: &str| v.parse().map_err(|_| format!("malformed rounds {text:?}"));
    if let Some(n) = text.strip_prefix("fixed:") {
        Ok(Rounds::Fixed(parse(n)?))
    } else if let Some(k) = text.strip_prefix("xd:") {
        Ok(Rounds::TimesDistance(parse(k)?))
    } else {
        Err(format!("malformed rounds {text:?}"))
    }
}

fn shots_to_wire(shots: ShotBudget) -> String {
    match shots {
        ShotBudget::Fixed(n) => format!("fixed:{n}"),
        ShotBudget::UntilFailures {
            max_shots,
            target_failures,
        } => format!("until:{max_shots}:{target_failures}"),
    }
}

fn shots_from_wire(text: &str) -> Result<ShotBudget, String> {
    let bad = || format!("malformed shot budget {text:?}");
    if let Some(n) = text.strip_prefix("fixed:") {
        return Ok(ShotBudget::Fixed(n.parse().map_err(|_| bad())?));
    }
    if let Some(rest) = text.strip_prefix("until:") {
        let (max, target) = rest.split_once(':').ok_or_else(bad)?;
        return Ok(ShotBudget::UntilFailures {
            max_shots: max.parse().map_err(|_| bad())?,
            target_failures: target.parse().map_err(|_| bad())?,
        });
    }
    Err(bad())
}

fn decoder_from_label(label: &str) -> Result<DecoderChoice, String> {
    match label {
        "union_find" => Ok(DecoderChoice::UnionFind),
        "matching" => Ok(DecoderChoice::Matching),
        "bp_union_find" => Ok(DecoderChoice::BpUnionFind),
        other => {
            let bad = || format!("unknown decoder {other:?}");
            let spec = other.strip_prefix("windowed_").ok_or_else(bad)?;
            let (commit, buffer) = spec.split_once('+').ok_or_else(bad)?;
            Ok(DecoderChoice::Windowed {
                commit: commit.parse().map_err(|_| bad())?,
                buffer: buffer.parse().map_err(|_| bad())?,
            })
        }
    }
}

fn sampler_from_label(label: &str) -> Result<SamplerChoice, String> {
    match label {
        "dem" => Ok(SamplerChoice::Dem),
        "circuit" => Ok(SamplerChoice::Circuit),
        other => Err(format!("unknown sampler {other:?}")),
    }
}

fn basis_to_wire(basis: Basis) -> &'static str {
    match basis {
        Basis::Z => "Z",
        Basis::X => "X",
    }
}

fn basis_from_wire(text: &str) -> Result<Basis, String> {
    match text {
        "Z" => Ok(Basis::Z),
        "X" => Ok(Basis::X),
        other => Err(format!("unknown basis {other:?}")),
    }
}

/// Encodes a spec as a flat wire object. The `mc` execution parameters are
/// deliberately dropped: they cannot change the record, and the server owns
/// its execution budget.
pub fn spec_to_json(spec: &ExperimentSpec) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("name", s(&spec.name)),
        ("scenario", s(spec.scenario.label())),
    ];
    match spec.scenario {
        Scenario::Memory { rounds } => fields.push(("rounds", s(rounds_to_wire(rounds)))),
        Scenario::TransversalCnot {
            patches,
            depth,
            cnots_per_round,
        } => {
            fields.push(("patches", unum(patches)));
            fields.push(("depth", unum(depth)));
            fields.push(("cnots_per_round", num(cnots_per_round)));
        }
        Scenario::GhzFanout { targets } => fields.push(("targets", unum(targets))),
        Scenario::DeepCnot {
            patches,
            rounds,
            cnots_per_round,
        } => {
            fields.push(("patches", unum(patches)));
            fields.push(("rounds", s(rounds_to_wire(rounds))));
            fields.push(("cnots_per_round", num(cnots_per_round)));
        }
        // The protocol/kind is carried by the per-variant scenario label.
        Scenario::MagicFactory { rounds, .. } => {
            fields.push(("rounds", s(rounds_to_wire(rounds))));
        }
        Scenario::Gadget { width, rounds, .. } => {
            fields.push(("width", unum(width)));
            fields.push(("rounds", s(rounds_to_wire(rounds))));
        }
        Scenario::Code832Memory { rounds } => {
            fields.push(("rounds", s(rounds_to_wire(rounds))));
        }
    }
    fields.extend([
        ("distance", num(f64::from(spec.distance))),
        ("basis", s(basis_to_wire(spec.basis))),
        ("p2", num(spec.noise.p2)),
        ("p_idle", num(spec.noise.p_idle)),
        ("p_prep", num(spec.noise.p_prep)),
        ("p_meas", num(spec.noise.p_meas)),
        ("decoder", s(spec.decoder.label())),
        ("sampler", s(spec.sampler.label())),
        ("streaming", Json::Bool(spec.streaming)),
        ("shots", s(shots_to_wire(spec.shots))),
        ("seed", s(spec.seed.to_string())),
    ]);
    obj(fields)
}

/// Decodes a wire spec. The resulting spec carries default `mc` execution
/// parameters — the server decides its own threading.
pub fn spec_from_json(v: &Json) -> Result<ExperimentSpec, String> {
    let scenario = match req_str(v, "scenario")?.as_str() {
        "memory" => Scenario::Memory {
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "transversal_cnot" => Scenario::TransversalCnot {
            patches: req_usize(v, "patches")?,
            depth: req_usize(v, "depth")?,
            cnots_per_round: req_f64(v, "cnots_per_round")?,
        },
        "ghz_fanout" => Scenario::GhzFanout {
            targets: req_usize(v, "targets")?,
        },
        "deep_cnot" => Scenario::DeepCnot {
            patches: req_usize(v, "patches")?,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
            cnots_per_round: req_f64(v, "cnots_per_round")?,
        },
        "factory_distill15" => Scenario::MagicFactory {
            protocol: FactoryProtocol::Distill15,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "factory_ccz" => Scenario::MagicFactory {
            protocol: FactoryProtocol::Ccz,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "factory_cultivation" => Scenario::MagicFactory {
            protocol: FactoryProtocol::Cultivation,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "gadget_adder" => Scenario::Gadget {
            kind: GadgetKind::Adder,
            width: req_usize(v, "width")?,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "gadget_lookup" => Scenario::Gadget {
            kind: GadgetKind::Lookup,
            width: req_usize(v, "width")?,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "gadget_fanout" => Scenario::Gadget {
            kind: GadgetKind::Fanout,
            width: req_usize(v, "width")?,
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        "code832_memory" => Scenario::Code832Memory {
            rounds: rounds_from_wire(&req_str(v, "rounds")?)?,
        },
        other => return Err(format!("unknown scenario {other:?}")),
    };
    let distance = req_usize(v, "distance")? as u32;
    let mut spec = ExperimentSpec::new(req_str(v, "name")?, scenario, distance);
    spec.basis = basis_from_wire(&req_str(v, "basis")?)?;
    spec.noise = NoiseModel {
        p2: req_f64(v, "p2")?,
        p_idle: req_f64(v, "p_idle")?,
        p_prep: req_f64(v, "p_prep")?,
        p_meas: req_f64(v, "p_meas")?,
    };
    spec.decoder = decoder_from_label(&req_str(v, "decoder")?)?;
    spec.sampler = sampler_from_label(&req_str(v, "sampler")?)?;
    spec.streaming = req_bool(v, "streaming")?;
    spec.shots = shots_from_wire(&req_str(v, "shots")?)?;
    spec.seed = req_u64_str(v, "seed")?;
    Ok(spec)
}

fn specs_from_field(v: &Json) -> Result<Vec<ExperimentSpec>, String> {
    req_arr(v, "specs")?
        .iter()
        .enumerate()
        .map(|(i, item)| spec_from_json(item).map_err(|e| format!("spec #{i}: {e}")))
        .collect()
}

// ---------------------------------------------------------------------------
// Calibration config codec
// ---------------------------------------------------------------------------

fn config_to_json(cfg: &CalibrationConfig) -> Json {
    obj(vec![
        ("p_phys", num(cfg.p_phys)),
        (
            "distances",
            Json::Arr(cfg.distances.iter().map(|&d| num(f64::from(d))).collect()),
        ),
        (
            "cnots_per_round",
            Json::Arr(cfg.cnots_per_round.iter().map(|&x| num(x)).collect()),
        ),
        ("memory_shots", unum(cfg.memory_shots)),
        ("cnot_shots", unum(cfg.cnot_shots)),
        ("memory_rounds_factor", unum(cfg.memory_rounds_factor)),
        ("cnot_depth", unum(cfg.cnot_depth)),
        ("c", num(cfg.c)),
        ("memory_seed", s(cfg.memory_seed.to_string())),
        ("cnot_seed", s(cfg.cnot_seed.to_string())),
    ])
}

/// Decodes a wire calibration config. `cache_dir` and `point_threads` are
/// not wire fields: the server's own cache and worker pool are used.
fn config_from_json(v: &Json) -> Result<CalibrationConfig, String> {
    let uint_arr = |key: &str| -> Result<Vec<u32>, String> {
        req_arr(v, key)?
            .iter()
            .map(|item| {
                item.as_f64()
                    .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                    .map(|x| x as u32)
                    .ok_or_else(|| format!("field {key:?} must hold non-negative integers"))
            })
            .collect()
    };
    let f64_arr = |key: &str| -> Result<Vec<f64>, String> {
        req_arr(v, key)?
            .iter()
            .map(|item| {
                item.as_f64()
                    .ok_or_else(|| format!("field {key:?} must hold numbers"))
            })
            .collect()
    };
    Ok(CalibrationConfig {
        p_phys: req_f64(v, "p_phys")?,
        distances: uint_arr("distances")?,
        cnots_per_round: f64_arr("cnots_per_round")?,
        memory_shots: req_usize(v, "memory_shots")?,
        cnot_shots: req_usize(v, "cnot_shots")?,
        memory_rounds_factor: req_usize(v, "memory_rounds_factor")?,
        cnot_depth: req_usize(v, "cnot_depth")?,
        c: req_f64(v, "c")?,
        memory_seed: req_u64_str(v, "memory_seed")?,
        cnot_seed: req_u64_str(v, "cnot_seed")?,
        cache_dir: None,
        point_threads: 0,
    })
}

// ---------------------------------------------------------------------------
// Record transport
// ---------------------------------------------------------------------------

/// A record travels as its exact JSON line inside one JSON string — the
/// escaping is lossless, so the bytes a warm client replays are identical
/// to what a local sweep writes.
fn record_to_wire(record: &ExperimentRecord) -> Json {
    Json::Str(record.to_json())
}

fn record_from_wire(v: &Json) -> Result<Option<ExperimentRecord>, String> {
    match v {
        Json::Null => Ok(None),
        Json::Str(line) => ExperimentRecord::from_json(line).map(Some),
        _ => Err("record slots must be strings or null".into()),
    }
}

fn records_to_wire(records: &[Option<ExperimentRecord>]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|slot| slot.as_ref().map_or(Json::Null, record_to_wire))
            .collect(),
    )
}

fn records_from_field(v: &Json, key: &str) -> Result<Vec<Option<ExperimentRecord>>, String> {
    req_arr(v, key)?
        .iter()
        .enumerate()
        .map(|(i, item)| record_from_wire(item).map_err(|e| format!("{key}[{i}]: {e}")))
        .collect()
}

fn dense_records(
    slots: Vec<Option<ExperimentRecord>>,
    key: &str,
) -> Result<Vec<ExperimentRecord>, String> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or_else(|| format!("{key}[{i}] must not be null")))
        .collect()
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One client → daemon job, one JSON line on the wire.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run every spec (cache-first), sampling misses.
    Sweep {
        /// Client-chosen job id, echoed in the response.
        id: String,
        /// The grid points to run.
        specs: Vec<ExperimentSpec>,
    },
    /// Warm-cache query: answer from the cache only, never sample.
    Query {
        /// Client-chosen job id, echoed in the response.
        id: String,
        /// The grid points to look up.
        specs: Vec<ExperimentSpec>,
    },
    /// Run the full calibration chain (two sweeps + the (α, Λ) fit) on the
    /// server's cache and worker pool.
    Calibrate {
        /// Client-chosen job id, echoed in the response.
        id: String,
        /// The calibration to run (`cache_dir`/`point_threads` are the
        /// server's, not wire fields).
        config: CalibrationConfig,
    },
    /// Daemon health/counters snapshot.
    Status {
        /// Client-chosen job id, echoed in the response.
        id: String,
    },
    /// One cache integrity scrub/evict pass, now.
    Scrub {
        /// Client-chosen job id, echoed in the response.
        id: String,
    },
    /// Ask the daemon to drain: in-flight points finish and persist,
    /// queued jobs are shed, then the process exits.
    Shutdown {
        /// Client-chosen job id, echoed in the response.
        id: String,
    },
}

impl Request {
    /// The job id the response will echo.
    pub fn id(&self) -> &str {
        match self {
            Request::Sweep { id, .. }
            | Request::Query { id, .. }
            | Request::Calibrate { id, .. }
            | Request::Status { id }
            | Request::Scrub { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// Encodes as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Request::Sweep { id, specs } => obj(vec![
                ("type", s("sweep")),
                ("id", s(id)),
                ("specs", Json::Arr(specs.iter().map(spec_to_json).collect())),
            ]),
            Request::Query { id, specs } => obj(vec![
                ("type", s("query")),
                ("id", s(id)),
                ("specs", Json::Arr(specs.iter().map(spec_to_json).collect())),
            ]),
            Request::Calibrate { id, config } => obj(vec![
                ("type", s("calibrate")),
                ("id", s(id)),
                ("config", config_to_json(config)),
            ]),
            Request::Status { id } => obj(vec![("type", s("status")), ("id", s(id))]),
            Request::Scrub { id } => obj(vec![("type", s("scrub")), ("id", s(id))]),
            Request::Shutdown { id } => obj(vec![("type", s("shutdown")), ("id", s(id))]),
        };
        v.to_line()
    }

    /// Decodes one JSON line.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line.trim())?;
        let id = req_str(&v, "id")?;
        match req_str(&v, "type")?.as_str() {
            "sweep" => Ok(Request::Sweep {
                id,
                specs: specs_from_field(&v)?,
            }),
            "query" => Ok(Request::Query {
                id,
                specs: specs_from_field(&v)?,
            }),
            "calibrate" => Ok(Request::Calibrate {
                id,
                config: config_from_json(req_field(&v, "config")?)?,
            }),
            "status" => Ok(Request::Status { id }),
            "scrub" => Ok(Request::Scrub { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A point quarantined by the daemon (its engine run panicked once; it is
/// refused thereafter by cache key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedPoint {
    /// The point's content-addressed cache key.
    pub key: String,
    /// The point's record name at quarantine time.
    pub name: String,
    /// The panic message.
    pub message: String,
}

/// A daemon health/counters snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStatus {
    /// Whether the daemon is draining (new jobs are shed).
    pub draining: bool,
    /// Worker threads serving the point queue.
    pub workers: usize,
    /// Jobs fully completed since startup.
    pub jobs_completed: u64,
    /// Grid points processed since startup.
    pub points_completed: u64,
    /// Points answered from the cache.
    pub cache_hits: u64,
    /// Points freshly sampled.
    pub fresh_points: u64,
    /// Monte-Carlo shots sampled.
    pub fresh_shots: u64,
    /// Corrupt cache entries found and overwritten.
    pub corrupt_replaced: u64,
    /// Points shed (drain or abandoned jobs).
    pub shed_points: u64,
    /// The poisoned-point quarantine list.
    pub quarantined: Vec<QuarantinedPoint>,
}

/// One daemon → client answer, one JSON line on the wire. Every variant
/// echoes the request's id; the wire carries a `status` field (`ok`,
/// `draining`, `shed`, `error`) so clients can branch before decoding the
/// payload.
#[derive(Debug, Clone)]
pub enum Response {
    /// A sweep job's outcome: accounting, the quarantine entries it hit,
    /// and one record slot per submitted spec (`null` where the point was
    /// poisoned, shed or failed — the `poisoned` list says which).
    Sweep {
        /// Echoed job id.
        id: String,
        /// Points freshly sampled.
        fresh_points: usize,
        /// Points replayed from the cache.
        cached_points: usize,
        /// Monte-Carlo shots sampled for this job.
        fresh_shots: usize,
        /// Corrupt cache entries found and overwritten.
        corrupt_replaced: usize,
        /// Points whose engine run panicked (now quarantined).
        poisoned: Vec<PoisonedPoint>,
        /// Per-spec record slots, in submission order.
        records: Vec<Option<ExperimentRecord>>,
    },
    /// A warm-cache query's outcome: hits verbatim, misses as `null`,
    /// nothing sampled.
    Query {
        /// Echoed job id.
        id: String,
        /// Cache hits.
        hits: usize,
        /// Cache misses (including corrupt entries).
        misses: usize,
        /// Per-spec record slots, in submission order.
        records: Vec<Option<ExperimentRecord>>,
    },
    /// A calibration job's outcome: the full [`Calibration`] the in-process
    /// path would have produced (fit, params, records, accounting).
    Calibrate {
        /// Echoed job id.
        id: String,
        /// The reconstructed calibration.
        calibration: Calibration,
    },
    /// A status snapshot.
    Status {
        /// Echoed job id.
        id: String,
        /// The snapshot.
        status: ServiceStatus,
    },
    /// A scrub pass's report.
    Scrub {
        /// Echoed job id.
        id: String,
        /// What the pass did.
        report: ScrubReport,
    },
    /// Shutdown acknowledged; the daemon is draining.
    Draining {
        /// Echoed job id.
        id: String,
    },
    /// The job was shed (daemon draining); nothing ran.
    Shed {
        /// Echoed job id.
        id: String,
        /// Why.
        message: String,
    },
    /// The job failed as a whole (malformed request, fit failure, cache
    /// I/O past the retry budget, job timeout).
    Error {
        /// Echoed job id (empty when the request line had none).
        id: String,
        /// What failed.
        message: String,
    },
}

fn poisoned_to_wire(p: &PoisonedPoint) -> Json {
    obj(vec![
        ("index", unum(p.index)),
        ("name", s(&p.name)),
        ("key", s(&p.key)),
        ("message", s(&p.message)),
    ])
}

fn poisoned_from_wire(v: &Json) -> Result<PoisonedPoint, String> {
    Ok(PoisonedPoint {
        index: req_usize(v, "index")?,
        name: req_str(v, "name")?,
        key: req_str(v, "key")?,
        message: req_str(v, "message")?,
    })
}

impl Response {
    /// The echoed job id.
    pub fn id(&self) -> &str {
        match self {
            Response::Sweep { id, .. }
            | Response::Query { id, .. }
            | Response::Calibrate { id, .. }
            | Response::Status { id, .. }
            | Response::Scrub { id, .. }
            | Response::Draining { id }
            | Response::Shed { id, .. }
            | Response::Error { id, .. } => id,
        }
    }

    /// Encodes as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let v = match self {
            Response::Sweep {
                id,
                fresh_points,
                cached_points,
                fresh_shots,
                corrupt_replaced,
                poisoned,
                records,
            } => obj(vec![
                ("type", s("sweep")),
                ("id", s(id)),
                ("status", s("ok")),
                ("fresh_points", unum(*fresh_points)),
                ("cached_points", unum(*cached_points)),
                ("fresh_shots", unum(*fresh_shots)),
                ("corrupt_replaced", unum(*corrupt_replaced)),
                (
                    "poisoned",
                    Json::Arr(poisoned.iter().map(poisoned_to_wire).collect()),
                ),
                ("records", records_to_wire(records)),
            ]),
            Response::Query {
                id,
                hits,
                misses,
                records,
            } => obj(vec![
                ("type", s("query")),
                ("id", s(id)),
                ("status", s("ok")),
                ("hits", unum(*hits)),
                ("misses", unum(*misses)),
                ("records", records_to_wire(records)),
            ]),
            Response::Calibrate { id, calibration } => {
                let memory: Vec<Option<ExperimentRecord>> = calibration
                    .memory_records
                    .iter()
                    .cloned()
                    .map(Some)
                    .collect();
                let cnot: Vec<Option<ExperimentRecord>> =
                    calibration.cnot_records.iter().cloned().map(Some).collect();
                obj(vec![
                    ("type", s("calibrate")),
                    ("id", s(id)),
                    ("status", s("ok")),
                    ("alpha", num(calibration.fit.alpha)),
                    ("lambda", num(calibration.fit.lambda)),
                    ("c", num(calibration.fit.c)),
                    ("residual", num(calibration.fit.residual)),
                    (
                        "lambda_memory",
                        calibration.lambda_memory.map_or(Json::Null, num),
                    ),
                    ("p_phys", num(calibration.params.p_phys)),
                    ("p_thres", num(calibration.params.p_thres)),
                    ("fresh_points", unum(calibration.fresh_points)),
                    ("cached_points", unum(calibration.cached_points)),
                    ("fresh_shots", unum(calibration.fresh_shots)),
                    ("memory_records", records_to_wire(&memory)),
                    ("cnot_records", records_to_wire(&cnot)),
                ])
            }
            Response::Status { id, status } => obj(vec![
                ("type", s("status")),
                ("id", s(id)),
                ("status", s("ok")),
                ("draining", Json::Bool(status.draining)),
                ("workers", unum(status.workers)),
                ("jobs_completed", unum(status.jobs_completed as usize)),
                ("points_completed", unum(status.points_completed as usize)),
                ("cache_hits", unum(status.cache_hits as usize)),
                ("fresh_points", unum(status.fresh_points as usize)),
                ("fresh_shots", unum(status.fresh_shots as usize)),
                ("corrupt_replaced", unum(status.corrupt_replaced as usize)),
                ("shed_points", unum(status.shed_points as usize)),
                (
                    "quarantined",
                    Json::Arr(
                        status
                            .quarantined
                            .iter()
                            .map(|q| {
                                obj(vec![
                                    ("key", s(&q.key)),
                                    ("name", s(&q.name)),
                                    ("message", s(&q.message)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Scrub { id, report } => obj(vec![
                ("type", s("scrub")),
                ("id", s(id)),
                ("status", s("ok")),
                ("scanned", unum(report.scanned)),
                ("healthy", unum(report.healthy)),
                ("quarantined", unum(report.quarantined)),
                ("evicted", unum(report.evicted)),
                ("stale_tmps_removed", unum(report.stale_tmps_removed)),
                ("stale_locks_removed", unum(report.stale_locks_removed)),
                ("skipped_locked", unum(report.skipped_locked)),
                ("bytes_after", num(report.bytes_after as f64)),
            ]),
            Response::Draining { id } => obj(vec![
                ("type", s("shutdown")),
                ("id", s(id)),
                ("status", s("draining")),
            ]),
            Response::Shed { id, message } => obj(vec![
                ("type", s("shed")),
                ("id", s(id)),
                ("status", s("shed")),
                ("message", s(message)),
            ]),
            Response::Error { id, message } => obj(vec![
                ("type", s("error")),
                ("id", s(id)),
                ("status", s("error")),
                ("message", s(message)),
            ]),
        };
        v.to_line()
    }

    /// Decodes one JSON line.
    pub fn from_line(line: &str) -> Result<Response, String> {
        let v = Json::parse(line.trim())?;
        let id = req_str(&v, "id")?;
        match (
            req_str(&v, "type")?.as_str(),
            req_str(&v, "status")?.as_str(),
        ) {
            ("sweep", "ok") => Ok(Response::Sweep {
                id,
                fresh_points: req_usize(&v, "fresh_points")?,
                cached_points: req_usize(&v, "cached_points")?,
                fresh_shots: req_usize(&v, "fresh_shots")?,
                corrupt_replaced: req_usize(&v, "corrupt_replaced")?,
                poisoned: req_arr(&v, "poisoned")?
                    .iter()
                    .map(poisoned_from_wire)
                    .collect::<Result<_, _>>()?,
                records: records_from_field(&v, "records")?,
            }),
            ("query", "ok") => Ok(Response::Query {
                id,
                hits: req_usize(&v, "hits")?,
                misses: req_usize(&v, "misses")?,
                records: records_from_field(&v, "records")?,
            }),
            ("calibrate", "ok") => {
                let fit = FitResult {
                    alpha: req_f64(&v, "alpha")?,
                    lambda: req_f64(&v, "lambda")?,
                    c: req_f64(&v, "c")?,
                    residual: req_f64(&v, "residual")?,
                };
                let params = ErrorModelParams {
                    c: fit.c,
                    p_phys: req_f64(&v, "p_phys")?,
                    p_thres: req_f64(&v, "p_thres")?,
                    alpha: fit.alpha,
                };
                let lambda_memory = match req_field(&v, "lambda_memory")? {
                    Json::Null => None,
                    other => Some(
                        other
                            .as_f64()
                            .ok_or("field \"lambda_memory\" must be a number or null")?,
                    ),
                };
                Ok(Response::Calibrate {
                    id,
                    calibration: Calibration {
                        fit,
                        lambda_memory,
                        params,
                        memory_records: dense_records(
                            records_from_field(&v, "memory_records")?,
                            "memory_records",
                        )?,
                        cnot_records: dense_records(
                            records_from_field(&v, "cnot_records")?,
                            "cnot_records",
                        )?,
                        fresh_points: req_usize(&v, "fresh_points")?,
                        cached_points: req_usize(&v, "cached_points")?,
                        fresh_shots: req_usize(&v, "fresh_shots")?,
                    },
                })
            }
            ("status", "ok") => Ok(Response::Status {
                id,
                status: ServiceStatus {
                    draining: req_bool(&v, "draining")?,
                    workers: req_usize(&v, "workers")?,
                    jobs_completed: req_usize(&v, "jobs_completed")? as u64,
                    points_completed: req_usize(&v, "points_completed")? as u64,
                    cache_hits: req_usize(&v, "cache_hits")? as u64,
                    fresh_points: req_usize(&v, "fresh_points")? as u64,
                    fresh_shots: req_usize(&v, "fresh_shots")? as u64,
                    corrupt_replaced: req_usize(&v, "corrupt_replaced")? as u64,
                    shed_points: req_usize(&v, "shed_points")? as u64,
                    quarantined: req_arr(&v, "quarantined")?
                        .iter()
                        .map(|q| {
                            Ok(QuarantinedPoint {
                                key: req_str(q, "key")?,
                                name: req_str(q, "name")?,
                                message: req_str(q, "message")?,
                            })
                        })
                        .collect::<Result<_, String>>()?,
                },
            }),
            ("scrub", "ok") => Ok(Response::Scrub {
                id,
                report: ScrubReport {
                    scanned: req_usize(&v, "scanned")?,
                    healthy: req_usize(&v, "healthy")?,
                    quarantined: req_usize(&v, "quarantined")?,
                    evicted: req_usize(&v, "evicted")?,
                    stale_tmps_removed: req_usize(&v, "stale_tmps_removed")?,
                    stale_locks_removed: req_usize(&v, "stale_locks_removed")?,
                    skipped_locked: req_usize(&v, "skipped_locked")?,
                    bytes_after: req_f64(&v, "bytes_after")? as u64,
                },
            }),
            ("shutdown", "draining") => Ok(Response::Draining { id }),
            (_, "shed") => Ok(Response::Shed {
                id,
                message: req_str(&v, "message")?,
            }),
            (_, "error") => Ok(Response::Error {
                id,
                message: req_str(&v, "message")?,
            }),
            (ty, status) => Err(format!("unknown response {ty:?} with status {status:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;
    use crate::spec::SweepGrid;

    fn sample_specs() -> Vec<ExperimentSpec> {
        let mut specs = SweepGrid::new(
            "jobs/mixed",
            Scenario::TransversalCnot {
                patches: 2,
                depth: 4,
                cnots_per_round: 1.0,
            },
        )
        .with_distances(vec![3])
        .with_cnots_per_round(vec![0.5, 2.0])
        .with_decoders(vec![
            DecoderChoice::UnionFind,
            DecoderChoice::Windowed {
                commit: 2,
                buffer: 3,
            },
        ])
        .specs();
        let mut memory = ExperimentSpec::new(
            "jobs/mem \"quoted\"\n",
            Scenario::Memory {
                rounds: Rounds::TimesDistance(2),
            },
            5,
        );
        memory.basis = Basis::X;
        memory.streaming = true;
        memory.shots = ShotBudget::UntilFailures {
            max_shots: 10_000,
            target_failures: 7,
        };
        memory.seed = u64::MAX - 3; // does not fit f64
        specs.push(memory);
        specs.push(ExperimentSpec::new(
            "jobs/ghz",
            Scenario::GhzFanout { targets: 3 },
            3,
        ));
        specs.push(ExperimentSpec::new(
            "jobs/deep",
            Scenario::DeepCnot {
                patches: 2,
                rounds: Rounds::TimesDistance(20),
                cnots_per_round: 0.5,
            },
            3,
        ));
        for protocol in FactoryProtocol::ALL {
            specs.push(ExperimentSpec::new(
                format!("jobs/factory/{}", protocol.label()),
                Scenario::MagicFactory {
                    protocol,
                    rounds: Rounds::Fixed(4),
                },
                3,
            ));
        }
        for kind in GadgetKind::ALL {
            specs.push(ExperimentSpec::new(
                format!("jobs/gadget/{}", kind.label()),
                Scenario::Gadget {
                    kind,
                    width: 3,
                    rounds: Rounds::TimesDistance(2),
                },
                3,
            ));
        }
        specs.push(ExperimentSpec::new(
            "jobs/code832",
            Scenario::Code832Memory {
                rounds: Rounds::Fixed(4),
            },
            2,
        ));
        specs
    }

    #[test]
    fn json_value_round_trips() {
        let line = r#"{"a":[1,2.5,-3e-2],"b":{"nested":"va\"l\nue"},"c":null,"d":true}"#;
        let v = Json::parse(line).unwrap();
        assert_eq!(Json::parse(&v.to_line()).unwrap(), v);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_str(),
            Some("va\"l\nue")
        );
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            &format!(
                "{}1{}",
                "[".repeat(MAX_DEPTH + 2),
                "]".repeat(MAX_DEPTH + 2)
            ),
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn spec_codec_round_trips_every_scenario() {
        for spec in sample_specs() {
            let decoded = spec_from_json(&spec_to_json(&spec)).unwrap();
            // The spec's semantic identity — its fingerprint — survives.
            assert_eq!(
                crate::orchestrator::spec_fingerprint(&decoded),
                crate::orchestrator::spec_fingerprint(&spec),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn sweep_request_survives_the_wire() {
        let request = Request::Sweep {
            id: "job-42".into(),
            specs: sample_specs(),
        };
        let line = request.to_line();
        assert!(!line.contains('\n'));
        match Request::from_line(&line).unwrap() {
            Request::Sweep { id, specs } => {
                assert_eq!(id, "job-42");
                assert_eq!(specs.len(), sample_specs().len());
                assert_eq!(specs[4].seed, u64::MAX - 3, "u64 seed exact");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn calibrate_request_survives_the_wire() {
        let config = CalibrationConfig {
            memory_seed: u64::MAX,
            cache_dir: Some("/client/side/path".into()), // must NOT travel
            point_threads: 5,                            // must NOT travel
            ..CalibrationConfig::default()
        };
        let line = Request::Calibrate {
            id: "cal-1".into(),
            config: config.clone(),
        }
        .to_line();
        match Request::from_line(&line).unwrap() {
            Request::Calibrate {
                config: decoded, ..
            } => {
                assert_eq!(decoded.p_phys, config.p_phys);
                assert_eq!(decoded.distances, config.distances);
                assert_eq!(decoded.memory_seed, u64::MAX);
                assert_eq!(decoded.cache_dir, None, "server owns the cache");
                assert_eq!(decoded.point_threads, 0, "server owns the pool");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn records_survive_the_wire_byte_for_byte() {
        let mut spec = ExperimentSpec::new(
            "jobs/bytes \"x\"",
            Scenario::Memory {
                rounds: Rounds::Fixed(2),
            },
            3,
        );
        spec.shots = ShotBudget::Fixed(256);
        let record = engine::run(&spec);
        let response = Response::Sweep {
            id: "j".into(),
            fresh_points: 1,
            cached_points: 0,
            fresh_shots: 256,
            corrupt_replaced: 0,
            poisoned: vec![PoisonedPoint {
                index: 9,
                name: "bad".into(),
                key: "ab".repeat(16),
                message: "need at least one SE round".into(),
            }],
            records: vec![Some(record.clone()), None],
        };
        match Response::from_line(&response.to_line()).unwrap() {
            Response::Sweep {
                records, poisoned, ..
            } => {
                assert_eq!(
                    records[0].as_ref().unwrap().to_json(),
                    record.to_json(),
                    "byte-identical through the wire"
                );
                assert!(records[1].is_none());
                assert_eq!(poisoned[0].index, 9);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn status_scrub_and_error_responses_round_trip() {
        let status = Response::Status {
            id: "s".into(),
            status: ServiceStatus {
                draining: true,
                workers: 4,
                jobs_completed: 10,
                points_completed: 40,
                cache_hits: 30,
                fresh_points: 9,
                fresh_shots: 4_608,
                corrupt_replaced: 1,
                shed_points: 2,
                quarantined: vec![QuarantinedPoint {
                    key: "cd".repeat(16),
                    name: "poison".into(),
                    message: "boom".into(),
                }],
            },
        };
        match Response::from_line(&status.to_line()).unwrap() {
            Response::Status { status: got, .. } => {
                assert!(got.draining);
                assert_eq!(got.fresh_shots, 4_608);
                assert_eq!(got.quarantined.len(), 1);
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let scrub = Response::Scrub {
            id: "sc".into(),
            report: ScrubReport {
                scanned: 12,
                healthy: 10,
                quarantined: 1,
                evicted: 1,
                stale_tmps_removed: 2,
                stale_locks_removed: 1,
                skipped_locked: 0,
                bytes_after: 4_096,
            },
        };
        match Response::from_line(&scrub.to_line()).unwrap() {
            Response::Scrub { report, .. } => assert_eq!(report.bytes_after, 4_096),
            other => panic!("wrong variant: {other:?}"),
        }

        for (resp, needle) in [
            (
                Response::Error {
                    id: "e".into(),
                    message: "spec #2: unknown decoder".into(),
                },
                "decoder",
            ),
            (
                Response::Shed {
                    id: "sh".into(),
                    message: "daemon draining".into(),
                },
                "draining",
            ),
        ] {
            let line = resp.to_line();
            match Response::from_line(&line).unwrap() {
                Response::Error { message, .. } | Response::Shed { message, .. } => {
                    assert!(message.contains(needle))
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_context() {
        for (line, needle) in [
            ("{\"type\":\"sweep\"}", "id"),
            ("{\"type\":\"nope\",\"id\":\"x\"}", "unknown request"),
            (
                "{\"type\":\"sweep\",\"id\":\"x\",\"specs\":[{}]}",
                "spec #0",
            ),
            ("not json", "unexpected"),
        ] {
            let err = Request::from_line(line).unwrap_err();
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }
}
