//! Deep-circuit streaming anchors: the regime the paper's windowed
//! decoding (§II.4) exists for — memory sweeps at rounds ≥ 20·d — run
//! through the time-sliced streaming pipeline with resident syndrome
//! memory bounded by the decoding window, bit-identical across thread
//! counts and against the whole-batch reference entry point, with exact
//! failure counts pinned. A separate convergence suite pins
//! windowed/streaming accuracy against whole-circuit decoding as the
//! buffer grows.
//!
//! Pinned counts depend on the vendored StdRng stream (`vendor/rand`) and
//! the per-layer stream derivation of the streaming pipeline — re-pin if
//! those change, investigate the pipeline if not.

use raa_decode::mc::{logical_error_rate_sampled, logical_error_rate_streamed, DecodeStats};
use raa_decode::{DecodingGraph, McConfig, UniformLayers, UnionFindDecoder, WindowedDecoder};
use raa_sim::{
    build_circuit, run_sweep, DecoderChoice, ExperimentSpec, Rounds, Scenario, ShotBudget,
    SweepGrid,
};
use raa_stabsim::{DetectorErrorModel, StreamingDemSampler, StreamingScratch};

/// Builds the memory circuit, DEM, streaming sampler and decoding graph of
/// a d-distance memory spec at `rounds` SE rounds.
fn memory_parts(
    d: u32,
    rounds: usize,
    p: f64,
) -> (DetectorErrorModel, StreamingDemSampler, DecodingGraph) {
    let mut spec = ExperimentSpec::new(
        "deep/memory",
        Scenario::Memory {
            rounds: Rounds::Fixed(rounds),
        },
        d,
    );
    spec.noise = raa_sim::NoiseModel::uniform(p);
    let circuit = build_circuit(&spec);
    let dem = DetectorErrorModel::from_circuit(&circuit);
    let dpl = (d * d - 1) as usize;
    assert_eq!(circuit.num_detectors() % dpl, 0, "uniform layering");
    let sampler = StreamingDemSampler::new(&dem, dpl);
    let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
    (dem, sampler, graph)
}

fn windowed(
    graph: DecodingGraph,
    dpl: usize,
    commit: usize,
    buffer: usize,
) -> WindowedDecoder<UniformLayers> {
    WindowedDecoder::new(
        graph,
        UniformLayers {
            detectors_per_layer: dpl,
        },
        commit,
        buffer,
    )
}

#[test]
fn deep_memory_anchor_streamed_pinned_and_bit_identical() {
    // d = 3 at rounds = 20·d = 60: the deep regime. The whole-batch path
    // would materialize 480 detectors per shot; the streaming path keeps a
    // two-layer window resident.
    let (_, sampler, graph) = memory_parts(3, 60, 3e-3);
    assert_eq!(sampler.num_layers(), 60);
    assert_eq!(sampler.num_detectors(), 480);
    let decoder = windowed(graph, 8, 2, 3);
    let seed = 0xDEE9;
    let shots = 4_000;

    // Resident syndrome memory is bounded by the window — the acceptance
    // assertion. Mechanisms of this circuit span at most two layers, so
    // three layers stay resident regardless of depth.
    assert_eq!(sampler.window_layers(), 3);
    assert_eq!(sampler.window_detectors(), 24);
    let mut scratch = StreamingScratch::default();
    sampler.start_batch(256, &mut scratch);
    assert_eq!(scratch.resident_detectors(), 24);
    assert!(scratch.resident_detectors() * 20 <= sampler.num_detectors());

    let base = logical_error_rate_streamed(
        &sampler,
        &decoder,
        shots,
        seed,
        &McConfig::default().with_threads(1),
    )
    .unwrap();
    // Exact pinned anchor (see module docs for the re-pin policy).
    assert_eq!(base.shots, shots);
    assert_eq!(
        base.failures, 590,
        "pinned d=3 rounds=60 failure count drifted"
    );

    // Bit-identical across thread counts.
    for threads in [2usize, 8] {
        let multi = logical_error_rate_streamed(
            &sampler,
            &decoder,
            shots,
            seed,
            &McConfig::default().with_threads(threads),
        )
        .unwrap();
        assert_eq!(base, multi, "threads = {threads}");
    }

    // Bit-identical against the whole-batch reference entry point (the
    // same time-sliced sampler through the Sampler trait, O(circuit)
    // memory instead of O(window)).
    let batch =
        logical_error_rate_sampled(&sampler, &decoder, shots, seed, &McConfig::default()).unwrap();
    assert_eq!(base, batch, "streaming vs batch entry point");
}

#[test]
fn deep_sweep_streams_through_engine() {
    // The engine-level deep sweep: rounds = 20·d via the scenario knob,
    // streaming toggled on the grid, bit-identical JSON across thread
    // counts, pinned failure counts.
    let grid = |threads: usize| {
        SweepGrid::new(
            "deep/sweep",
            Scenario::Memory {
                rounds: Rounds::TimesDistance(20),
            },
        )
        .with_distances(vec![3])
        .with_p_phys(vec![4e-3])
        .with_decoders(vec![DecoderChoice::Windowed {
            commit: 2,
            buffer: 3,
        }])
        .with_streaming(true)
        .with_shots(ShotBudget::Fixed(2_000))
        .with_seed(0xDEE7)
        .with_mc(McConfig::default().with_threads(threads))
    };
    let base = run_sweep(&grid(1));
    assert_eq!(base.len(), 1);
    assert_eq!(base[0].se_rounds, 60);
    assert!(base[0].to_json().contains("\"streaming\":true"));
    assert_eq!(base[0].shots, 2_000);
    assert_eq!(
        base[0].failures, 432,
        "pinned deep-sweep failure count drifted"
    );
    for threads in [2usize, 8] {
        let multi = run_sweep(&grid(threads));
        assert_eq!(base[0].to_json(), multi[0].to_json(), "threads = {threads}");
    }
}

/// Streams a windowed decode at the given buffer and returns its stats.
fn streamed_at_buffer(
    sampler: &StreamingDemSampler,
    graph: &DecodingGraph,
    dpl: usize,
    buffer: usize,
    shots: usize,
    seed: u64,
) -> DecodeStats {
    let decoder = windowed(graph.clone(), dpl, 2, buffer);
    logical_error_rate_streamed(sampler, &decoder, shots, seed, &McConfig::default()).unwrap()
}

#[test]
fn convergence_to_whole_circuit_with_buffer_d3() {
    // Windowed/streaming vs whole-circuit decoding on the *same* sampled
    // realizations (same time-sliced sampler, same seed): accuracy
    // approaches whole-circuit decoding as the buffer grows, reaching it
    // exactly once the window covers the circuit.
    let (_, sampler, graph) = memory_parts(3, 12, 6e-3);
    let uf = UnionFindDecoder::new(graph.clone());
    let shots = 3_000;
    let seed = 0xC0117;
    let global =
        logical_error_rate_sampled(&sampler, &uf, shots, seed, &McConfig::default()).unwrap();
    assert_eq!(global.failures, 301, "pinned whole-circuit count drifted");

    let buffers = [0usize, 1, 2, 4, 8, 10];
    let failures: Vec<usize> = buffers
        .iter()
        .map(|&b| {
            let stats = streamed_at_buffer(&sampler, &graph, 8, b, shots, seed);
            assert_eq!(stats.shots, shots);
            stats.failures
        })
        .collect();
    // Exact pinned counts per buffer size (windowed decoding is
    // deterministic given the realizations).
    assert_eq!(
        failures,
        vec![441, 319, 316, 303, 301, 301],
        "pinned per-buffer failure counts drifted"
    );
    // Accuracy approaches whole-circuit decoding as the buffer grows...
    let gap_first = failures[0].abs_diff(global.failures);
    let gap_last = failures[buffers.len() - 2].abs_diff(global.failures);
    assert!(gap_last <= gap_first, "buffer growth must close the gap");
    // ...and reaches it exactly when the window covers every layer
    // (commit 2 + buffer 10 ≥ 12 layers → global fallback).
    assert_eq!(failures[buffers.len() - 1], global.failures);
}

#[test]
fn convergence_to_whole_circuit_with_buffer_d5() {
    let (_, sampler, graph) = memory_parts(5, 10, 6e-3);
    let uf = UnionFindDecoder::new(graph.clone());
    let shots = 2_000;
    let seed = 0xC0115;
    let global =
        logical_error_rate_sampled(&sampler, &uf, shots, seed, &McConfig::default()).unwrap();
    assert_eq!(global.failures, 111, "pinned whole-circuit count drifted");

    let buffers = [0usize, 2, 4, 8];
    let failures: Vec<usize> = buffers
        .iter()
        .map(|&b| streamed_at_buffer(&sampler, &graph, 24, b, shots, seed).failures)
        .collect();
    assert_eq!(
        failures,
        vec![415, 152, 117, 111],
        "pinned per-buffer failure counts drifted"
    );
    // commit 2 + buffer 8 ≥ 10 layers → exact whole-circuit decoding.
    assert_eq!(failures[buffers.len() - 1], global.failures);
    let gap_first = failures[0].abs_diff(global.failures);
    let gap_mid = failures[1].abs_diff(global.failures);
    assert!(gap_mid <= gap_first, "buffer growth must close the gap");
}
