//! End-to-end determinism of the experiment engine: an identical
//! `ExperimentSpec` (and sweep grid) must produce **bit-identical JSON
//! records** at 1, 2 and 8 worker threads, extending the `DecodeStats`
//! guarantee of the parallel Monte-Carlo pipeline through circuit
//! construction, DEM extraction and record serialization.

use raa_sim::{
    run, run_sweep, to_json_lines, DecoderChoice, ExperimentSpec, McConfig, NoiseModel, Rounds,
    SamplerChoice, Scenario, ShotBudget, SweepGrid,
};

const THREADS: [usize; 3] = [1, 2, 8];

fn with_threads(spec: &ExperimentSpec, threads: usize) -> ExperimentSpec {
    ExperimentSpec {
        mc: McConfig::default().with_threads(threads),
        ..spec.clone()
    }
}

#[test]
fn memory_spec_json_identical_across_thread_counts() {
    let mut spec = ExperimentSpec::new(
        "determinism/memory",
        Scenario::Memory {
            rounds: Rounds::TimesDistance(1),
        },
        3,
    );
    spec.noise = NoiseModel::uniform(5e-3);
    spec.shots = ShotBudget::Fixed(4_000);
    spec.seed = 0xD17E;
    let base = run(&with_threads(&spec, THREADS[0])).to_json();
    assert!(base.contains("\"failures\""));
    for &threads in &THREADS[1..] {
        let json = run(&with_threads(&spec, threads)).to_json();
        assert_eq!(base, json, "threads = {threads}");
    }
}

#[test]
fn both_sampler_paths_json_identical_across_thread_counts() {
    // The compiled-DEM path (the default above) and the gate-level circuit
    // path must each be bit-deterministic across thread counts; the two
    // paths consume randomness differently, so their records must *differ*
    // from each other only in sampled statistics, never in shape.
    let mut spec = ExperimentSpec::new(
        "determinism/sampler",
        Scenario::Memory {
            rounds: Rounds::TimesDistance(1),
        },
        3,
    );
    spec.noise = NoiseModel::uniform(5e-3);
    spec.shots = ShotBudget::Fixed(4_000);
    spec.seed = 0x5A3;
    let mut jsons = Vec::new();
    for sampler in [SamplerChoice::Dem, SamplerChoice::Circuit] {
        spec.sampler = sampler;
        let base = run(&with_threads(&spec, THREADS[0])).to_json();
        assert!(base.contains(&format!("\"sampler\":\"{}\"", sampler.label())));
        for &threads in &THREADS[1..] {
            let json = run(&with_threads(&spec, threads)).to_json();
            assert_eq!(base, json, "sampler = {:?}, threads = {threads}", sampler);
        }
        jsons.push(base);
    }
    assert_ne!(
        jsons[0], jsons[1],
        "dem and circuit paths draw different streams"
    );
}

#[test]
fn transversal_spec_with_early_stop_identical_across_thread_counts() {
    // The early-stop path is the trickiest to keep deterministic (workers
    // race to claim batches); the engine must inherit its batch-prefix
    // guarantee.
    let mut spec = ExperimentSpec::new(
        "determinism/cnot",
        Scenario::TransversalCnot {
            patches: 2,
            depth: 6,
            cnots_per_round: 2.0,
        },
        3,
    );
    spec.noise = NoiseModel::uniform(6e-3);
    spec.shots = ShotBudget::UntilFailures {
        max_shots: 100_000,
        target_failures: 20,
    };
    spec.seed = 0xBEE;
    let base = run(&with_threads(&spec, THREADS[0]));
    assert!(base.failures >= 20, "elevated p must reach the target");
    for &threads in &THREADS[1..] {
        let record = run(&with_threads(&spec, threads));
        assert_eq!(base.to_json(), record.to_json(), "threads = {threads}");
    }
}

#[test]
fn sweep_json_lines_identical_across_thread_counts() {
    let grid = SweepGrid::new(
        "determinism/sweep",
        Scenario::Memory {
            rounds: Rounds::Fixed(2),
        },
    )
    .with_distances(vec![3])
    .with_p_phys(vec![3e-3, 6e-3])
    .with_decoders(vec![DecoderChoice::UnionFind, DecoderChoice::Matching])
    .with_shots(ShotBudget::Fixed(2_000))
    .with_seed(7);
    let base = to_json_lines(&run_sweep(
        &grid
            .clone()
            .with_mc(McConfig::default().with_threads(THREADS[0])),
    ));
    assert_eq!(base.lines().count(), 4);
    for &threads in &THREADS[1..] {
        let lines = to_json_lines(&run_sweep(
            &grid
                .clone()
                .with_mc(McConfig::default().with_threads(threads)),
        ));
        assert_eq!(base, lines, "threads = {threads}");
    }
}
