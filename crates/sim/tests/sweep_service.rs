//! End-to-end coverage of the `raa-sweepd` service core and its TCP
//! JSON-lines front end: job round trips, warm-cache queries, poisoned-
//! point quarantine across jobs, drain/shed semantics, and malformed-
//! request containment.

use raa_sim::jobs::{Request, Response};
use raa_sim::service::{serve, PointResult};
use raa_sim::{
    run_sweep, ExperimentSpec, Rounds, Scenario, ServiceClient, ServiceConfig, ShotBudget,
    SweepGrid, SweepService,
};
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("raa-svc-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn grid() -> SweepGrid {
    SweepGrid::new(
        "svc/memory",
        Scenario::Memory {
            rounds: Rounds::Fixed(2),
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![4e-3])
    .with_shots(ShotBudget::Fixed(256))
    .with_seed(0x5EC)
}

fn poison_spec() -> ExperimentSpec {
    let mut spec = grid().specs().remove(0);
    spec.name = "svc/poison".into();
    spec.scenario = Scenario::Memory {
        rounds: Rounds::Fixed(0),
    };
    spec
}

/// Starts a daemon on an ephemeral port; returns the address, the shutdown
/// flag, the serve-thread handle, and the service.
fn start_daemon(
    cache_dir: Option<&std::path::Path>,
) -> (
    SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
    SweepService,
) {
    let service = SweepService::start(ServiceConfig {
        cache_dir: cache_dir.map(Into::into),
        workers: 2,
        job_timeout: Duration::from_secs(60),
        ..ServiceConfig::default()
    })
    .unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let serve_service = service.clone();
    let serve_shutdown = Arc::clone(&shutdown);
    let handle =
        std::thread::spawn(move || serve(listener, &serve_service, &serve_shutdown).unwrap());
    (addr, shutdown, handle, service)
}

#[test]
fn tcp_sweep_then_query_round_trip_is_byte_identical() {
    let tmp = TempDir::new("roundtrip");
    let (addr, _shutdown, handle, _service) = start_daemon(Some(&tmp.0));
    let grid = grid();
    let specs = grid.specs();
    let reference = run_sweep(&grid);

    let mut client = ServiceClient::connect(addr).unwrap();
    match client.sweep(&specs).unwrap() {
        Response::Sweep {
            fresh_points,
            cached_points,
            fresh_shots,
            records,
            poisoned,
            ..
        } => {
            assert_eq!(fresh_points, 2);
            assert_eq!(cached_points, 0);
            assert_eq!(fresh_shots, 2 * 256);
            assert!(poisoned.is_empty());
            for (a, b) in reference.iter().zip(&records) {
                assert_eq!(
                    a.to_json(),
                    b.as_ref().unwrap().to_json(),
                    "daemon record byte-identical to local sweep"
                );
            }
        }
        other => panic!("expected sweep response, got {other:?}"),
    }

    // Warm query: hits everything, samples nothing, same bytes.
    match client.query(&specs).unwrap() {
        Response::Query {
            hits,
            misses,
            records,
            ..
        } => {
            assert_eq!((hits, misses), (2, 0));
            for (a, b) in reference.iter().zip(&records) {
                assert_eq!(a.to_json(), b.as_ref().unwrap().to_json());
            }
        }
        other => panic!("expected query response, got {other:?}"),
    }

    // A second sweep of the same grid is fully cached.
    match client.sweep(&specs).unwrap() {
        Response::Sweep {
            fresh_shots,
            cached_points,
            ..
        } => {
            assert_eq!(fresh_shots, 0, "warm sweep samples nothing");
            assert_eq!(cached_points, 2);
        }
        other => panic!("expected sweep response, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn poisoned_point_is_reported_then_refused_and_daemon_survives() {
    let tmp = TempDir::new("poison");
    let (addr, _shutdown, handle, service) = start_daemon(Some(&tmp.0));
    let grid = grid();
    let mut specs = grid.specs();
    specs.insert(1, poison_spec());

    let mut client = ServiceClient::connect(addr).unwrap();
    match client.sweep(&specs).unwrap() {
        Response::Sweep {
            poisoned, records, ..
        } => {
            assert_eq!(poisoned.len(), 1);
            assert_eq!(poisoned[0].index, 1);
            assert!(poisoned[0].message.contains("SE round"));
            assert!(records[1].is_none());
            assert!(records[0].is_some() && records[2].is_some());
        }
        other => panic!("expected sweep response, got {other:?}"),
    }

    // The same point in a later job is refused from quarantine — no second
    // panic, and the message says why.
    match client.sweep(&[poison_spec()]).unwrap() {
        Response::Sweep { poisoned, .. } => {
            assert_eq!(poisoned.len(), 1);
            assert!(
                poisoned[0].message.contains("quarantined"),
                "{}",
                poisoned[0].message
            );
        }
        other => panic!("expected sweep response, got {other:?}"),
    }

    // Daemon is alive and the quarantine shows in status.
    match client.status().unwrap() {
        Response::Status { status, .. } => {
            assert_eq!(status.quarantined.len(), 1);
            assert_eq!(status.quarantined[0].name, "svc/poison");
            assert!(!status.draining);
        }
        other => panic!("expected status response, got {other:?}"),
    }
    assert!(!service.is_draining());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_request_gets_error_and_connection_survives() {
    let tmp = TempDir::new("malformed");
    let (addr, _shutdown, handle, _service) = start_daemon(Some(&tmp.0));

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    match Response::from_line(&line).unwrap() {
        Response::Error { message, .. } => assert!(message.contains("malformed")),
        other => panic!("expected error response, got {other:?}"),
    }

    // Same connection still works for a real request.
    let request = Request::Status { id: "after".into() };
    stream
        .write_all(format!("{}\n", request.to_line()).as_bytes())
        .unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    match Response::from_line(&line).unwrap() {
        Response::Status { id, .. } => assert_eq!(id, "after"),
        other => panic!("expected status response, got {other:?}"),
    }

    let mut client = ServiceClient::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn drain_sheds_new_jobs_cleanly() {
    let tmp = TempDir::new("drain");
    let service = SweepService::start(ServiceConfig {
        cache_dir: Some(tmp.0.clone()),
        workers: 1,
        ..ServiceConfig::default()
    })
    .unwrap();

    // A job completes normally before the drain…
    let specs = grid().specs();
    let handle = service.submit(specs.clone()).unwrap();
    let results = handle.wait(Duration::from_secs(60)).unwrap();
    assert!(results
        .iter()
        .all(|r| matches!(r, PointResult::Record { .. })));

    service.drain();
    // …and is refused after it.
    assert!(service.submit(specs.clone()).is_none(), "draining sheds");
    match service.handle(Request::Sweep {
        id: "late".into(),
        specs,
    }) {
        Response::Shed { id, .. } => assert_eq!(id, "late"),
        other => panic!("expected shed response, got {other:?}"),
    }
    assert!(service.status().draining);
    service.shutdown();
}

#[test]
fn killed_client_connection_does_not_kill_daemon_and_work_persists() {
    let tmp = TempDir::new("killconn");
    let (addr, _shutdown, handle, _service) = start_daemon(Some(&tmp.0));
    let grid = grid();
    let specs = grid.specs();

    // Fire a sweep and slam the connection before the response arrives —
    // the killed-worker-connection fault of the acceptance criteria.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = Request::Sweep {
            id: "doomed".into(),
            specs: specs.clone(),
        };
        stream
            .write_all(format!("{}\n", request.to_line()).as_bytes())
            .unwrap();
        stream.flush().unwrap();
        // Drop without reading: RST or FIN mid-job.
    }

    // The daemon keeps serving, and the doomed job's work persisted: a
    // fresh client sees a fully warm cache (poll briefly — the doomed
    // job's points finish asynchronously).
    let mut client = ServiceClient::connect(addr).unwrap();
    let mut warm_hits = 0;
    for _ in 0..200 {
        match client.query(&specs).unwrap() {
            Response::Query { hits, .. } => {
                warm_hits = hits;
                if warm_hits == specs.len() {
                    break;
                }
            }
            other => panic!("expected query response, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert_eq!(warm_hits, specs.len(), "abandoned job's work persisted");
    let reference = run_sweep(&grid);
    match client.query(&specs).unwrap() {
        Response::Query { records, .. } => {
            for (a, b) in reference.iter().zip(&records) {
                assert_eq!(a.to_json(), b.as_ref().unwrap().to_json());
            }
        }
        other => panic!("expected query response, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn calibrate_job_over_tcp_matches_local_calibration() {
    let tmp = TempDir::new("cal");
    let (addr, _shutdown, handle, _service) = start_daemon(Some(&tmp.0));

    let config = raa_sim::CalibrationConfig {
        memory_shots: 1_500,
        cnot_shots: 1_000,
        ..raa_sim::CalibrationConfig::default()
    };
    let local = raa_sim::calibrate(&config).unwrap();

    let mut client = ServiceClient::connect(addr).unwrap();
    match client.calibrate(&config).unwrap() {
        Response::Calibrate { calibration, .. } => {
            assert_eq!(calibration.fit, local.fit, "identical fit through the wire");
            assert_eq!(calibration.params.p_thres, local.params.p_thres);
            assert_eq!(calibration.lambda_memory, local.lambda_memory);
            for (a, b) in local.memory_records.iter().chain(&local.cnot_records).zip(
                calibration
                    .memory_records
                    .iter()
                    .chain(&calibration.cnot_records),
            ) {
                assert_eq!(a.to_json(), b.to_json(), "records byte-identical");
            }
        }
        other => panic!("expected calibrate response, got {other:?}"),
    }

    // Second calibration is answered entirely from the daemon's cache.
    match client.calibrate(&config).unwrap() {
        Response::Calibrate { calibration, .. } => {
            assert_eq!(calibration.fresh_shots, 0, "warm calibration free");
            assert_eq!(calibration.fit, local.fit);
        }
        other => panic!("expected calibrate response, got {other:?}"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// The new algorithm scenarios flow through the daemon's job codec and
/// land in the same content-addressed cache the local orchestrator uses:
/// sweeping one `MagicFactory` point over the wire must produce a record
/// byte-identical to a local `Orchestrator` run *and* to the raw cache
/// line on disk (`SweepCache::entry_path` / `load`).
#[test]
fn factory_scenario_daemon_record_matches_local_cache_line() {
    use raa_sim::{FactoryProtocol, NoiseModel, Orchestrator, SweepCache};

    let spec = {
        let mut s = ExperimentSpec::new(
            "svc/factory",
            Scenario::MagicFactory {
                protocol: FactoryProtocol::Ccz,
                rounds: Rounds::Fixed(3),
            },
            3,
        );
        s.noise = NoiseModel::uniform(4e-3);
        s.shots = ShotBudget::Fixed(256);
        s.seed = 0xFAC;
        s
    };

    // Local reference through the orchestrator onto its own cache.
    let local_tmp = TempDir::new("factory-local");
    let local = Orchestrator::new()
        .with_cache_dir(&local_tmp.0)
        .unwrap()
        .run_specs(std::slice::from_ref(&spec))
        .unwrap();
    assert_eq!(local.fresh_points, 1);
    let local_json = local.records[0].to_json();

    // Daemon pass over the wire onto a separate cache.
    let tmp = TempDir::new("factory-daemon");
    let (addr, _shutdown, handle, _service) = start_daemon(Some(&tmp.0));
    let mut client = ServiceClient::connect(addr).unwrap();
    match client.sweep(std::slice::from_ref(&spec)).unwrap() {
        Response::Sweep {
            fresh_points,
            records,
            poisoned,
            ..
        } => {
            assert_eq!(fresh_points, 1);
            assert!(poisoned.is_empty());
            assert_eq!(
                records[0].as_ref().unwrap().to_json(),
                local_json,
                "daemon factory record byte-identical to local orchestrator"
            );
        }
        other => panic!("expected sweep response, got {other:?}"),
    }

    // Both cache lines — the daemon's and the local orchestrator's — hold
    // the identical bytes for the identical spec key.
    for dir in [&tmp.0, &local_tmp.0] {
        let cache = SweepCache::open(dir).unwrap();
        let entry = cache.entry_path(&spec);
        assert!(entry.is_file(), "cache line exists at {}", entry.display());
        let raw = fs::read_to_string(&entry).unwrap();
        assert_eq!(raw.trim_end(), local_json, "raw cache line bytes");
        assert_eq!(cache.load(&spec).unwrap().to_json(), local_json);
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}
