//! Statistical validation of the compiled DEM sampler against the
//! gate-level Pauli-frame simulator on the d = 3 rotated surface-code
//! memory — the circuit family behind the paper's Eq. (4) calibration.
//!
//! Three layers of evidence that the fast path samples the right
//! distribution:
//!
//! 1. **exact footprints** — injecting each compiled DEM mechanism
//!    deterministically reproduces exactly its detector/observable
//!    footprint (no statistics involved);
//! 2. **marginal agreement** — per-detector firing rates from the two
//!    samplers agree under a chi-square test sized to the Monte-Carlo
//!    noise (the DEM's independent-mechanism approximation differs from
//!    the circuit distribution only at O(p²) per depolarizing channel,
//!    far below the test's resolution);
//! 3. **aggregate agreement** — mean defect weight and observable-flip
//!    rate agree within binomial error.

use raa_sim::{build_circuit, ExperimentSpec, NoiseModel, Rounds, Scenario};
use raa_stabsim::{DemSampler, DetectorErrorModel, DetectorSamples, FrameSim};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn d3_memory(p: f64) -> raa_stabsim::Circuit {
    let mut spec = ExperimentSpec::new(
        "validation/memory",
        Scenario::Memory {
            rounds: Rounds::TimesDistance(1),
        },
        3,
    );
    spec.noise = NoiseModel::uniform(p);
    build_circuit(&spec)
}

#[test]
fn every_dem_mechanism_injects_its_exact_footprint() {
    let circuit = d3_memory(1e-3);
    let dem = DetectorErrorModel::from_circuit(&circuit);
    assert!(dem.len() > 50, "d=3 memory should have a rich DEM");
    let sampler = DemSampler::new(&dem);
    let mut out = DetectorSamples::default();
    out.reset(1, dem.num_detectors, dem.num_observables);
    for (i, e) in dem.iter().enumerate() {
        sampler.inject_into(i, 0, &mut out);
        assert_eq!(
            out.fired_detectors(0),
            e.detectors,
            "mechanism {i} detector footprint"
        );
        assert_eq!(
            out.observable_mask(0),
            e.observables,
            "mechanism {i} observable footprint"
        );
        // Undo: footprints are XOR, so a second injection must cancel.
        sampler.inject_into(i, 0, &mut out);
        assert!(out.fired_detectors(0).is_empty(), "mechanism {i} cancel");
        assert_eq!(out.observable_mask(0), 0, "mechanism {i} cancel");
    }
}

#[test]
fn dem_and_frame_detector_marginals_agree_chi_square() {
    let p = 5e-3;
    let circuit = d3_memory(p);
    let dem = DetectorErrorModel::from_circuit(&circuit);
    let sampler = DemSampler::new(&dem);

    let shots = 200_000usize;
    let frame = FrameSim::sample(&circuit, shots, &mut StdRng::seed_from_u64(0xF4A3));
    let dems = sampler.sample(shots, &mut StdRng::seed_from_u64(0xD3A1));

    // Two-sample chi-square over per-detector firing rates: for detector d
    // with empirical rates p̂_f, p̂_d, the standardized difference
    // z² = (p̂_f − p̂_d)² / (var_f + var_d) is ~χ²(1) under H₀, so the sum
    // is ~χ²(D) with mean D and s.d. √(2D). Accept within 5 s.d. plus an
    // absolute epsilon floor for near-zero-variance detectors.
    let nd = dem.num_detectors;
    let mut chi2 = 0.0;
    for d in 0..nd {
        let nf = (0..shots).filter(|&s| frame.detector(s, d)).count() as f64;
        let ndm = (0..shots).filter(|&s| dems.detector(s, d)).count() as f64;
        let (pf, pd) = (nf / shots as f64, ndm / shots as f64);
        let var = (pf * (1.0 - pf) + pd * (1.0 - pd)) / shots as f64;
        chi2 += (pf - pd).powi(2) / (var + 1e-12);
    }
    let bound = nd as f64 + 5.0 * (2.0 * nd as f64).sqrt();
    assert!(
        chi2 < bound,
        "chi-square over {nd} detector marginals: {chi2:.1} ≥ {bound:.1}"
    );
}

#[test]
fn dem_and_frame_aggregates_agree() {
    let p = 5e-3;
    let circuit = d3_memory(p);
    let dem = DetectorErrorModel::from_circuit(&circuit);
    let sampler = DemSampler::new(&dem);

    let shots = 200_000usize;
    let frame = FrameSim::sample(&circuit, shots, &mut StdRng::seed_from_u64(0xF4A3));
    let dems = sampler.sample(shots, &mut StdRng::seed_from_u64(0xD3A1));

    let defect_mean = |s: &raa_stabsim::DetectorSamples| {
        let mut total = 0usize;
        for shot in 0..shots {
            total += s.fired_detectors(shot).len();
        }
        total as f64 / shots as f64
    };
    let (mf, md) = (defect_mean(&frame), defect_mean(&dems));
    assert!(
        (mf - md).abs() / mf < 0.02,
        "mean defect weight: frame {mf:.4} vs dem {md:.4}"
    );

    let flip_rate = |s: &raa_stabsim::DetectorSamples| {
        (0..shots).filter(|&i| s.observable_mask(i) != 0).count() as f64 / shots as f64
    };
    let (ff, fd) = (flip_rate(&frame), flip_rate(&dems));
    let se = (ff * (1.0 - ff) / shots as f64).sqrt();
    assert!(
        (ff - fd).abs() < 6.0 * se + 1e-4,
        "observable flip rate: frame {ff:.5} vs dem {fd:.5} (se {se:.6})"
    );
}
