//! Fault-injection coverage for the cached sweep orchestrator: every
//! failure class the `raa-sweepd` tentpole contains — corrupt entries,
//! panicking points, cross-process cache contention, kill-mid-write
//! litter — exercised end to end against the byte-determinism contract.

use raa_sim::lock::LockOptions;
use raa_sim::{
    run_sweep, spec_cache_key, Orchestrator, OrchestratorError, Rounds, Scenario, ScrubOptions,
    ShotBudget, SweepCache, SweepGrid,
};
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("raa-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn grid() -> SweepGrid {
    SweepGrid::new(
        "fault/memory",
        Scenario::Memory {
            rounds: Rounds::Fixed(2),
        },
    )
    .with_distances(vec![3, 5])
    .with_p_phys(vec![3e-3, 5e-3])
    .with_shots(ShotBudget::Fixed(384))
    .with_seed(0xFA17)
}

/// A corrupt entry discovered mid-sweep is recomputed in place and the
/// final records are byte-identical to an untouched cold sweep.
#[test]
fn corrupt_entry_mid_sweep_heals_and_matches_reference() {
    let tmp = TempDir::new("corrupt");
    let grid = grid();
    let reference = run_sweep(&grid);
    let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
    orch.run(&grid).unwrap();

    // Corrupt one entry three different ways across three sweeps: torn
    // JSON, binary garbage, an empty file.
    let specs = grid.specs();
    for (i, garbage) in [
        "{\"name\":\"fault/mem",
        "\u{0}\u{1}\u{2}not json at all",
        "",
    ]
    .iter()
    .enumerate()
    {
        let victim = orch.cache().unwrap().entry_path(&specs[i]);
        fs::write(&victim, garbage).unwrap();
        let healed = orch.run(&grid).unwrap();
        assert_eq!(healed.fresh_points, 1, "only the corrupt point re-ran");
        assert_eq!(healed.corrupt_replaced, 1);
        for (a, b) in reference.iter().zip(&healed.records) {
            assert_eq!(a.to_json(), b.to_json(), "byte-identical after healing");
        }
    }
}

/// A panicking grid point is quarantined in the report while the sweep
/// completes; without isolation the same point fails the job typed (and
/// the process survives either way).
#[test]
fn panicking_point_is_quarantined_and_sweep_completes() {
    let tmp = TempDir::new("poison");
    let grid = grid();
    let mut specs = grid.specs();
    let mut poison = specs[0].clone();
    poison.name = "fault/poison".into();
    poison.scenario = Scenario::Memory {
        rounds: Rounds::Fixed(0), // trips the "need at least one SE round" assert
    };
    specs.insert(2, poison.clone());

    let isolated = Orchestrator::new()
        .with_panic_isolation(true)
        .with_cache_dir(&tmp.0)
        .unwrap();
    let report = isolated.run_specs(&specs).unwrap();
    assert_eq!(report.poisoned.len(), 1);
    assert_eq!(report.poisoned[0].index, 2);
    assert_eq!(report.poisoned[0].key, spec_cache_key(&poison));
    assert!(report.poisoned[0].message.contains("SE round"));
    let reference = run_sweep(&grid);
    assert_eq!(report.records.len(), reference.len());
    for (a, b) in reference.iter().zip(&report.records) {
        assert_eq!(a.to_json(), b.to_json(), "healthy points unaffected");
    }

    // Same spec list without isolation: a typed job failure, not a crash,
    // and the healthy points' cache entries are still there.
    let strict = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
    match strict.run_specs(&specs) {
        Err(OrchestratorError::Poisoned(p)) => assert_eq!(p.index, 2),
        other => panic!("expected Poisoned, got {other:?}"),
    }
    let warm = strict.run(&grid).unwrap();
    assert_eq!(warm.fresh_shots, 0, "cache survived the poisoned job");
}

/// Two orchestrators in separate threads contending on one cache dir: the
/// merged cache equals a single-process cold sweep byte for byte, and no
/// point was lost or torn.
#[test]
fn contending_orchestrators_share_one_cache_without_corruption() {
    let tmp = TempDir::new("contend");
    let grid = grid();
    let reference = run_sweep(&grid);
    let dir = tmp.0.clone();

    let threads: Vec<_> = (0..2)
        .map(|i| {
            let dir = dir.clone();
            let grid = grid.clone();
            std::thread::Builder::new()
                .name(format!("contender-{i}"))
                .spawn(move || {
                    let orch = Orchestrator::new()
                        .with_point_threads(2)
                        .with_cache_dir(&dir)
                        .unwrap();
                    orch.run(&grid).unwrap()
                })
                .unwrap()
        })
        .collect();
    let reports: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    for report in &reports {
        assert_eq!(report.records.len(), reference.len());
        for (a, b) in reference.iter().zip(&report.records) {
            assert_eq!(a.to_json(), b.to_json(), "contended run bit-identical");
        }
    }
    // Entry locking means the two processes together sampled each point at
    // most once wherever the lock arbitration won; in every case the total
    // work is bounded and the cache holds exactly the reference bytes.
    let cache = SweepCache::open(&tmp.0).unwrap();
    for (spec, expected) in grid.specs().iter().zip(&reference) {
        let entry = fs::read_to_string(cache.entry_path(spec)).unwrap();
        assert_eq!(entry.trim_end(), expected.to_json(), "on-disk bytes exact");
    }
}

/// Kill-mid-write: a writer died leaving a temp file and a held lock. The
/// next sweep must resume past the litter (bounded lock wait, then
/// sampling), and a scrub pass must clean the litter up.
#[test]
fn kill_mid_write_litter_does_not_block_resume() {
    let tmp = TempDir::new("killed");
    let grid = grid();
    let specs = grid.specs();
    let orch = Orchestrator::new()
        .with_lock_options(LockOptions {
            wait: Duration::from_millis(50),
            stale_after: Duration::from_secs(3_600), // stale-breaking off: the wait must save us
            ..LockOptions::default()
        })
        .with_cache_dir(&tmp.0)
        .unwrap();
    let cache = orch.cache().unwrap();

    // The killed process left: a partial temp file, a held entry lock for
    // a point that never completed, and one missing entry.
    let key = spec_cache_key(&specs[1]);
    fs::write(tmp.0.join(format!("{key}.tmp.99999.0")), "{\"partial").unwrap();
    fs::write(cache.lock_path(&specs[1]), "pid 99999\n").unwrap();

    let report = orch.run(&grid).unwrap();
    assert_eq!(
        report.fresh_points, 4,
        "all points completed despite litter"
    );
    let reference = run_sweep(&grid);
    for (a, b) in reference.iter().zip(&report.records) {
        assert_eq!(a.to_json(), b.to_json());
    }

    // Scrub clears what the dead writer left behind.
    std::thread::sleep(Duration::from_millis(20));
    let scrub = cache
        .scrub(&ScrubOptions {
            stale_tmp_after: Duration::from_millis(5),
            stale_lock_after: Duration::from_millis(5),
            ..ScrubOptions::default()
        })
        .unwrap();
    assert_eq!(scrub.stale_tmps_removed, 1);
    assert_eq!(scrub.stale_locks_removed, 1);
    assert_eq!(scrub.quarantined, 0);
    assert_eq!(scrub.healthy, 4);

    // And the cache is fully warm afterwards.
    let warm = orch.run(&grid).unwrap();
    assert_eq!(warm.fresh_shots, 0);
}

/// A sweep interrupted *between* entries (some cached, some not) resumes
/// exactly the missing work — under lock contention from a parallel
/// duplicate of itself.
#[test]
fn interrupted_then_contended_resume_is_exact() {
    let tmp = TempDir::new("resume");
    let grid = grid();
    let specs = grid.specs();
    let orch = Orchestrator::new().with_cache_dir(&tmp.0).unwrap();
    orch.run(&grid).unwrap();
    // Drop half the entries (simulated crash halfway).
    let cache = orch.cache().unwrap();
    fs::remove_file(cache.entry_path(&specs[1])).unwrap();
    fs::remove_file(cache.entry_path(&specs[3])).unwrap();

    let dir = tmp.0.clone();
    let racers: Vec<_> = (0..2)
        .map(|_| {
            let dir = dir.clone();
            let grid = grid.clone();
            std::thread::spawn(move || {
                Orchestrator::new()
                    .with_cache_dir(&dir)
                    .unwrap()
                    .run(&grid)
                    .unwrap()
            })
        })
        .collect();
    let reports: Vec<_> = racers.into_iter().map(|t| t.join().unwrap()).collect();
    let total_fresh: usize = reports.iter().map(|r| r.fresh_points).sum();
    assert!(
        (2..=4).contains(&total_fresh),
        "at most both racers re-ran the two missing points, got {total_fresh}"
    );
    let reference = run_sweep(&grid);
    for report in &reports {
        for (a, b) in reference.iter().zip(&report.records) {
            assert_eq!(a.to_json(), b.to_json());
        }
    }
}
