//! Pinned integration test of the Eq. (4) calibration loop: a spec-driven
//! memory sweep at d = 3 and d = 5 plus a transversal-CNOT sweep, run
//! through the engine at an elevated physical error rate (the substitution
//! rule — the paper's p = 0.1% needs ≥10⁸ shots per point), must reproduce
//! the model's suppression-exponent structure within tolerance — and,
//! because the engine is deterministic, the raw failure counts themselves
//! are pinned as regression anchors.

use raa_sim::{analysis, run_sweep, Rounds, Scenario, ShotBudget, SweepGrid};

const P_PHYS: f64 = 4e-3;

fn memory_records() -> Vec<raa_sim::ExperimentRecord> {
    run_sweep(
        &SweepGrid::new(
            "pinned/memory",
            Scenario::Memory {
                rounds: Rounds::TimesDistance(3),
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![P_PHYS])
        .with_shots(ShotBudget::Fixed(20_000))
        .with_seed(0x6B),
    )
}

#[test]
fn memory_sweep_reproduces_suppression_exponent() {
    let records = memory_records();
    assert_eq!(records.len(), 2);

    // Pinned counts: the engine is bit-deterministic, so these are exact.
    // A change here means the sampling/decoding pipeline changed behaviour.
    assert_eq!(records[0].shots, 20_000);
    assert_eq!(records[1].shots, 20_000);
    let failures: Vec<usize> = records.iter().map(|r| r.failures).collect();
    assert_eq!(
        failures,
        vec![887, 582],
        "pinned d=3/d=5 failure counts drifted (note: counts depend on the \
         vendored StdRng stream in vendor/rand and on the engine's default \
         compiled-DEM sampling path — re-pin if the shims are swapped for \
         registry crates or the default sampler changes, but investigate \
         the pipeline if not)"
    );

    // Eq. (4) structure: the per-round error falls by Λ per unit of
    // (d+1)/2. Union–find at p = 4e-3 sits at Λ ≈ 2.3 (the paper's MLE at
    // p = 0.1% gives ≈ 20); what must hold is genuine suppression within
    // the below-threshold band.
    let lambda = analysis::memory_lambda(&records).expect("two distances");
    assert!(
        (1.5..6.0).contains(&lambda),
        "suppression base out of band: {lambda}"
    );
}

#[test]
fn transversal_sweep_fit_matches_memory_anchor() {
    let cnot_records = run_sweep(
        &SweepGrid::new(
            "pinned/cnot",
            Scenario::TransversalCnot {
                patches: 2,
                depth: 16,
                cnots_per_round: 1.0,
            },
        )
        .with_distances(vec![3, 5])
        .with_p_phys(vec![P_PHYS])
        .with_cnots_per_round(vec![0.5, 1.0, 2.0, 4.0])
        .with_shots(ShotBudget::Fixed(6_000))
        .with_seed(0x6A),
    );
    assert_eq!(cnot_records.len(), 8);
    for r in &cnot_records {
        assert!(
            r.failures > 0,
            "elevated p must produce failures: {}",
            r.name
        );
        assert!(
            r.error_per_cnot().expect("cnots > 0") < 0.4,
            "saturated point: {}",
            r.name
        );
    }
    // Two pinned regression anchors out of the eight deterministic points
    // (RNG-stream-dependent like the memory pins: re-pin on a vendor swap).
    assert_eq!(cnot_records[1].failures, 2375, "d=3, x=1 drifted");
    assert_eq!(cnot_records[7].failures, 723, "d=5, x=4 drifted");

    let fit = analysis::fit_eq4(&cnot_records, 0.1).expect("eight usable points");
    // The fitted decoding factor must be a sane Eq. (4) exponent...
    assert!(
        (0.01..1.5).contains(&fit.alpha),
        "alpha out of band: {}",
        fit.alpha
    );
    // ...and the fitted suppression base must agree with the independent
    // memory-sweep anchor (Λ ≈ 2.30 from `memory_sweep_reproduces_
    // suppression_exponent`, not re-run here) within Monte-Carlo tolerance.
    let lambda_mem = 2.30;
    let ratio = fit.lambda / lambda_mem;
    assert!(
        (0.5..2.0).contains(&ratio),
        "fitted Lambda {} vs memory anchor {}",
        fit.lambda,
        lambda_mem
    );
}
