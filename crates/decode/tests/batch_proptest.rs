//! Property tests of the batch and streaming decode contracts.
//!
//! On random graphlike DEMs, `predict_batch_into` must agree shot for
//! shot with extracting each shot's defects and calling `predict_into` —
//! the batched union–find (compiled graph, epoch-tagged scratch reset,
//! word-skipping defect extraction) is an execution strategy, never a
//! semantic change.
//!
//! On random *layered* DEMs, the streamed window-major Monte-Carlo entry
//! point must reproduce the whole-batch entry point bit for bit through
//! the compiled window-template path, for any commit/buffer geometry and
//! any thread count, with templates on or off.

use proptest::prelude::*;
use raa_decode::mc::{self, McConfig};
use raa_decode::{Decoder, DecodingGraph, UniformLayers, UnionFindDecoder, WindowedDecoder};
use raa_stabsim::dem::{DemError, DetectorErrorModel};
use raa_stabsim::{StreamingDemSampler, SyndromeBatch};

/// Builds a graphlike DEM over `nd ≤ 8` detectors from raw draws: every
/// mechanism touches one detector (a boundary edge) or two (an internal
/// edge), with varied probabilities (hence varied quantized weights) and
/// small observable masks.
fn build_dem(nd: usize, raw: &[(f64, u8, u8, u64)]) -> DetectorErrorModel {
    let errors = raw
        .iter()
        .map(|&(p, a, b, obs)| {
            let a = a as usize % nd;
            // One extra slot in b's range selects a boundary edge.
            let b = b as usize % (nd + 1);
            let detectors = if b == nd || b == a {
                vec![a as u32]
            } else {
                vec![a as u32, b as u32]
            };
            DemError {
                probability: p,
                detectors,
                observables: obs,
            }
        })
        .collect();
    DetectorErrorModel {
        num_detectors: nd,
        num_observables: 2,
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_unionfind_matches_per_shot(
        nd in 1usize..=8,
        raw_errors in collection::vec((0.01f64..0.45, any::<u8>(), any::<u8>(), 0u64..4), 1..=20),
        shot_bits in collection::vec(any::<u8>(), 1..80),
    ) {
        let dem = build_dem(nd, &raw_errors);
        let graph = DecodingGraph::from_dem(&dem).unwrap();
        let decoder = UnionFindDecoder::new(graph);

        // Pack the random shots into a bit-packed batch.
        let mut batch = SyndromeBatch::default();
        batch.reset(shot_bits.len(), nd);
        for (s, &bits) in shot_bits.iter().enumerate() {
            for d in 0..nd {
                if bits & (1 << d) != 0 {
                    batch.set_detector(s, d);
                }
            }
        }

        let mut scratch = Default::default();
        let mut batched = Vec::new();
        decoder.predict_batch_into(&batch, &mut batched, &mut scratch);
        prop_assert_eq!(batched.len(), shot_bits.len());

        // Reference: extract each shot's defects, decode one at a time
        // through the same scratch (interleaving exercises the epoch reset).
        let mut defects = Vec::new();
        for (s, &predicted) in batched.iter().enumerate() {
            batch.fired_into(s, &mut defects);
            let reference = decoder.predict_into(&defects, &mut scratch);
            prop_assert_eq!(predicted, reference, "shot {}", s);
        }
    }
}

/// Builds a random *layered* graphlike DEM: `layers` blocks of `dpl`
/// detectors, every mechanism confined to one layer or crossing to the
/// next (edge layer span ≤ 1), so `UniformLayers` applies and the windowed
/// decoder compiles window templates for it.
fn build_layered_dem(dpl: usize, layers: usize, raw: &[(f64, u16, u8, u64)]) -> DetectorErrorModel {
    let nd = dpl * layers;
    let errors = raw
        .iter()
        .map(|&(p, a, kind, obs)| {
            let a = a as usize % nd;
            let detectors = match kind % 3 {
                // Boundary edge.
                0 => vec![a as u32],
                // Horizontal edge within the layer (or boundary at the rim).
                1 if (a % dpl) + 1 < dpl => vec![a as u32, a as u32 + 1],
                // Vertical edge into the next layer (or boundary at the top).
                2 if a + dpl < nd => vec![a as u32, (a + dpl) as u32],
                _ => vec![a as u32],
            };
            DemError {
                probability: p,
                detectors,
                observables: obs,
            }
        })
        .collect();
    DetectorErrorModel {
        num_detectors: nd,
        num_observables: 2,
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streamed (window-major, template-compiled) vs whole-batch decoding
    /// on random layered DEMs: identical `DecodeStats` across entry
    /// points, 1/2/8 decode threads, and templates on/off.
    #[test]
    fn streamed_matches_batch_on_random_layered_dems(
        dpl in 2usize..=4,
        layers in 6usize..=10,
        commit in 1usize..=3,
        buffer in 1usize..=3,
        raw_errors in collection::vec(
            (0.02f64..0.3, any::<u16>(), any::<u8>(), 0u64..4),
            4..=40,
        ),
        seed in 0u64..1_000,
    ) {
        let dem = build_layered_dem(dpl, layers, &raw_errors);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let sampler = StreamingDemSampler::new(&dem, dpl);
        let layering = UniformLayers { detectors_per_layer: dpl };
        let decoder = WindowedDecoder::new(graph, layering, commit, buffer);
        let shots = 48usize;
        let cfg1 = McConfig::single_threaded();

        let streamed = mc::logical_error_rate_streamed(&sampler, &decoder, shots, seed, &cfg1)
            .expect("single-threaded runs use the ambient pool");
        let batch = mc::logical_error_rate_sampled(&sampler, &decoder, shots, seed, &cfg1)
            .expect("single-threaded runs use the ambient pool");
        prop_assert_eq!(streamed, batch, "streamed vs batch entry point");

        let plain = decoder.clone().with_templates(false);
        let untemplated =
            mc::logical_error_rate_streamed(&sampler, &plain, shots, seed, &cfg1)
                .expect("single-threaded runs use the ambient pool");
        prop_assert_eq!(streamed, untemplated, "templates must not change outcomes");

        for threads in [2usize, 8] {
            let cfg = McConfig::default().with_threads(threads);
            let multi = mc::logical_error_rate_streamed(&sampler, &decoder, shots, seed, &cfg)
                .expect("dedicated pool build");
            prop_assert_eq!(streamed, multi, "threads = {}", threads);
        }
    }
}

/// Head, bulk and tail window templates against whole-circuit decoding:
/// every vertically adjacent defect pair — including the pairs that
/// straddle each window commit boundary — must decode to the same
/// observable mask through the windowed (template) path as through one
/// global union–find pass, with templates on or off.
#[test]
fn window_straddling_pairs_agree_with_full_graph_decode() {
    let dpl = 3usize;
    let layers = 12usize;
    // A 3-wide strip: horizontal chains with boundary exits at both rim
    // columns, vertical edges between consecutive layers, observable on
    // the left boundary column.
    let mut errors = Vec::new();
    for l in 0..layers {
        let base = (l * dpl) as u32;
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![base],
            observables: 1,
        });
        for c in 0..dpl - 1 {
            errors.push(DemError {
                probability: 0.02,
                detectors: vec![base + c as u32, base + c as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![base + dpl as u32 - 1],
            observables: 0,
        });
        if l + 1 < layers {
            for c in 0..dpl {
                errors.push(DemError {
                    probability: 0.015,
                    detectors: vec![base + c as u32, base + (dpl + c) as u32],
                    observables: 0,
                });
            }
        }
    }
    let dem = DetectorErrorModel {
        num_detectors: dpl * layers,
        num_observables: 1,
        errors,
    };
    let graph = DecodingGraph::from_dem(&dem).unwrap();
    let global = UnionFindDecoder::new(graph.clone());
    let layering = UniformLayers {
        detectors_per_layer: dpl,
    };
    for (commit, buffer) in [(1usize, 1usize), (1, 2), (2, 3), (3, 2)] {
        let windowed = WindowedDecoder::new(graph.clone(), layering, commit, buffer);
        let plain = windowed.clone().with_templates(false);
        for l in 0..layers - 1 {
            for c in 0..dpl {
                let d0 = (l * dpl + c) as u32;
                let d1 = d0 + dpl as u32;
                let expect = global.predict(&[d0, d1]);
                assert_eq!(
                    windowed.predict(&[d0, d1]),
                    expect,
                    "templated window (c={commit}, b={buffer}) diverged on pair ({d0}, {d1})"
                );
                assert_eq!(
                    plain.predict(&[d0, d1]),
                    expect,
                    "plain window (c={commit}, b={buffer}) diverged on pair ({d0}, {d1})"
                );
            }
        }
    }
}
