//! Property test of the batch decode contract: on random graphlike DEMs,
//! `predict_batch_into` must agree shot for shot with extracting each
//! shot's defects and calling `predict_into` — the batched union–find
//! (compiled graph, epoch-tagged scratch reset, word-skipping defect
//! extraction) is an execution strategy, never a semantic change.

use proptest::prelude::*;
use raa_decode::{Decoder, DecodingGraph, UnionFindDecoder};
use raa_stabsim::dem::{DemError, DetectorErrorModel};
use raa_stabsim::SyndromeBatch;

/// Builds a graphlike DEM over `nd ≤ 8` detectors from raw draws: every
/// mechanism touches one detector (a boundary edge) or two (an internal
/// edge), with varied probabilities (hence varied quantized weights) and
/// small observable masks.
fn build_dem(nd: usize, raw: &[(f64, u8, u8, u64)]) -> DetectorErrorModel {
    let errors = raw
        .iter()
        .map(|&(p, a, b, obs)| {
            let a = a as usize % nd;
            // One extra slot in b's range selects a boundary edge.
            let b = b as usize % (nd + 1);
            let detectors = if b == nd || b == a {
                vec![a as u32]
            } else {
                vec![a as u32, b as u32]
            };
            DemError {
                probability: p,
                detectors,
                observables: obs,
            }
        })
        .collect();
    DetectorErrorModel {
        num_detectors: nd,
        num_observables: 2,
        errors,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_unionfind_matches_per_shot(
        nd in 1usize..=8,
        raw_errors in collection::vec((0.01f64..0.45, any::<u8>(), any::<u8>(), 0u64..4), 1..=20),
        shot_bits in collection::vec(any::<u8>(), 1..80),
    ) {
        let dem = build_dem(nd, &raw_errors);
        let graph = DecodingGraph::from_dem(&dem).unwrap();
        let decoder = UnionFindDecoder::new(graph);

        // Pack the random shots into a bit-packed batch.
        let mut batch = SyndromeBatch::default();
        batch.reset(shot_bits.len(), nd);
        for (s, &bits) in shot_bits.iter().enumerate() {
            for d in 0..nd {
                if bits & (1 << d) != 0 {
                    batch.set_detector(s, d);
                }
            }
        }

        let mut scratch = Default::default();
        let mut batched = Vec::new();
        decoder.predict_batch_into(&batch, &mut batched, &mut scratch);
        prop_assert_eq!(batched.len(), shot_bits.len());

        // Reference: extract each shot's defects, decode one at a time
        // through the same scratch (interleaving exercises the epoch reset).
        let mut defects = Vec::new();
        for (s, &predicted) in batched.iter().enumerate() {
            batch.fired_into(s, &mut defects);
            let reference = decoder.predict_into(&defects, &mut scratch);
            prop_assert_eq!(predicted, reference, "shot {}", s);
        }
    }
}
