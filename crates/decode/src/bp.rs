//! Belief-propagation reweighting for graphlike decoding.
//!
//! The paper's decoding-factor analysis (§III.4, Fig. 13a) covers a family
//! of decoders — MLE, matching variants, BP-OSD/BP-LSD, hypergraph union
//! find — that differ in how much correlated information they exploit; less
//! accurate decoders show up as a larger α. This module implements the
//! standard BP-preprocessing step: min-sum belief propagation on the Tanner
//! graph of the detector error model, producing posterior error
//! probabilities conditioned on the observed syndrome. Re-weighting the
//! decoding graph with those posteriors before union–find (
//! [`BpUnionFindDecoder`]) recovers some of the correlation information a
//! plain matching decoder discards.
//!
//! The Tanner graph is stored in flat CSR form (error→detector slots and
//! detector→(error, slot) pairs precomputed at construction), and all
//! message buffers live in a reusable scratch, so per-syndrome BP runs
//! without heap allocation.

use crate::graph::DecodingGraph;
use crate::unionfind::{UfScratch, UnionFindDecoder};
use crate::Decoder;
use raa_stabsim::dem::DetectorErrorModel;

/// Min-sum belief propagation over a DEM's Tanner graph.
///
/// Checks are detectors (parity of incident error bits must match the
/// syndrome); variables are error mechanisms with priors from the DEM.
#[derive(Debug, Clone)]
pub struct BeliefPropagation {
    /// Per-error prior log-likelihood ratios `ln((1-p)/p)`.
    priors: Vec<f64>,
    /// CSR offsets into `error_dets`: error `e` owns slots
    /// `error_off[e]..error_off[e + 1]`.
    error_off: Vec<u32>,
    /// Flattened per-error detector lists.
    error_dets: Vec<u32>,
    /// CSR offsets into `det_slots`: detector `d` owns
    /// `det_off[d]..det_off[d + 1]`.
    det_off: Vec<u32>,
    /// Flattened per-detector message-slot indices into the flat message
    /// arrays (shared with `error_dets`).
    det_slots: Vec<u32>,
    iterations: usize,
    num_detectors: usize,
}

/// Reusable working state for [`BeliefPropagation`].
#[derive(Debug, Clone, Default)]
pub struct BpScratch {
    syndrome: Vec<bool>,
    /// Variable→check messages, one per (error, detector) slot.
    var_to_chk: Vec<f64>,
    /// Check→variable messages, one per (error, detector) slot.
    chk_to_var: Vec<f64>,
    /// Per-error posterior LLRs.
    posteriors: Vec<f64>,
    /// Hard-decision parity accumulator.
    parity: Vec<bool>,
}

impl BeliefPropagation {
    /// Builds the BP engine from a DEM (hyperedges allowed).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        let mut priors = Vec::with_capacity(dem.len());
        let mut error_off = Vec::with_capacity(dem.len() + 1);
        let mut error_dets = Vec::new();
        error_off.push(0u32);
        let mut det_degree = vec![0u32; dem.num_detectors];
        for e in dem.iter() {
            let p = e.probability.clamp(1e-12, 0.5 - 1e-12);
            priors.push(((1.0 - p) / p).ln());
            for &d in &e.detectors {
                error_dets.push(d);
                det_degree[d as usize] += 1;
            }
            error_off.push(error_dets.len() as u32);
        }
        let mut det_off = Vec::with_capacity(dem.num_detectors + 1);
        det_off.push(0u32);
        for d in 0..dem.num_detectors {
            det_off.push(det_off[d] + det_degree[d]);
        }
        let mut det_slots = vec![0u32; error_dets.len()];
        let mut cursor: Vec<u32> = det_off[..dem.num_detectors].to_vec();
        for (e, err) in dem.iter().enumerate() {
            for (k, &d) in err.detectors.iter().enumerate() {
                det_slots[cursor[d as usize] as usize] = error_off[e] + k as u32;
                cursor[d as usize] += 1;
            }
        }
        Self {
            priors,
            error_off,
            error_dets,
            det_off,
            det_slots,
            iterations: 20,
            num_detectors: dem.num_detectors,
        }
    }

    /// Sets the number of BP iterations (default 20).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        assert!(iterations >= 1, "need at least one BP iteration");
        self.iterations = iterations;
        self
    }

    /// Number of error mechanisms (variables).
    pub fn num_errors(&self) -> usize {
        self.priors.len()
    }

    /// Runs min-sum BP for the given syndrome, returning per-error posterior
    /// log-likelihood ratios (positive = probably did not fire).
    pub fn posteriors(&self, defects: &[u32]) -> Vec<f64> {
        let mut scratch = BpScratch::default();
        self.posteriors_into(defects, &mut scratch);
        scratch.posteriors
    }

    /// Like [`BeliefPropagation::posteriors`], but reuses `scratch` and
    /// leaves the result in `scratch.posteriors` (also returned as a slice).
    /// Steady state performs no heap allocation.
    pub fn posteriors_into<'s>(&self, defects: &[u32], scratch: &'s mut BpScratch) -> &'s [f64] {
        let slots = self.error_dets.len();
        let ne = self.num_errors();
        scratch.syndrome.clear();
        scratch.syndrome.resize(self.num_detectors, false);
        for &d in defects {
            scratch.syndrome[d as usize] = true;
        }
        scratch.var_to_chk.clear();
        scratch.var_to_chk.resize(slots, 0.0);
        scratch.chk_to_var.clear();
        scratch.chk_to_var.resize(slots, 0.0);
        for e in 0..ne {
            let (lo, hi) = (self.error_off[e] as usize, self.error_off[e + 1] as usize);
            scratch.var_to_chk[lo..hi].fill(self.priors[e]);
        }

        for _ in 0..self.iterations {
            // Check update: for detector d, the message to error e is the
            // sign-product / min-magnitude of the other incoming messages,
            // with the syndrome bit flipping the sign.
            for d in 0..self.num_detectors {
                let (lo, hi) = (self.det_off[d] as usize, self.det_off[d + 1] as usize);
                let mut total_sign = if scratch.syndrome[d] { -1.0f64 } else { 1.0 };
                let (mut min1, mut min2) = (f64::INFINITY, f64::INFINITY);
                for &slot in &self.det_slots[lo..hi] {
                    let m = scratch.var_to_chk[slot as usize];
                    if m < 0.0 {
                        total_sign = -total_sign;
                    }
                    let a = m.abs();
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                    } else if a < min2 {
                        min2 = a;
                    }
                }
                for &slot in &self.det_slots[lo..hi] {
                    let m = scratch.var_to_chk[slot as usize];
                    let sign_excl = total_sign * if m < 0.0 { -1.0 } else { 1.0 };
                    let mag_excl = if m.abs() <= min1 { min2 } else { min1 };
                    scratch.chk_to_var[slot as usize] = sign_excl * mag_excl.min(30.0);
                }
            }
            // Variable update.
            for e in 0..ne {
                let (lo, hi) = (self.error_off[e] as usize, self.error_off[e + 1] as usize);
                let total: f64 = self.priors[e] + scratch.chk_to_var[lo..hi].iter().sum::<f64>();
                for slot in lo..hi {
                    scratch.var_to_chk[slot] =
                        (total - scratch.chk_to_var[slot]).clamp(-30.0, 30.0);
                }
            }
        }

        scratch.posteriors.clear();
        scratch.posteriors.extend((0..ne).map(|e| {
            let (lo, hi) = (self.error_off[e] as usize, self.error_off[e + 1] as usize);
            (self.priors[e] + scratch.chk_to_var[lo..hi].iter().sum::<f64>()).clamp(-30.0, 30.0)
        }));
        &scratch.posteriors
    }

    /// Hard-decision decode: errors with negative posterior LLR are taken as
    /// fired; returns the XOR of their observable masks and whether the
    /// decision reproduces the syndrome exactly (BP converged).
    pub fn hard_decision(&self, dem: &DetectorErrorModel, defects: &[u32]) -> (u64, bool) {
        self.hard_decision_into(dem, defects, &mut BpScratch::default())
    }

    /// Like [`BeliefPropagation::hard_decision`], but reuses `scratch`.
    pub fn hard_decision_into(
        &self,
        dem: &DetectorErrorModel,
        defects: &[u32],
        scratch: &mut BpScratch,
    ) -> (u64, bool) {
        self.posteriors_into(defects, scratch);
        let mut obs = 0u64;
        scratch.parity.clear();
        scratch.parity.resize(self.num_detectors, false);
        for (e, llr) in scratch.posteriors.iter().enumerate() {
            if *llr < 0.0 {
                obs ^= dem.errors[e].observables;
                for &d in &dem.errors[e].detectors {
                    scratch.parity[d as usize] = !scratch.parity[d as usize];
                }
            }
        }
        // `scratch.syndrome` still holds the target syndrome.
        let converged = scratch.parity == scratch.syndrome;
        (obs, converged)
    }
}

/// Reusable working state for [`BpUnionFindDecoder`].
#[derive(Debug, Clone, Default)]
pub struct BpUfScratch {
    /// BP message and posterior buffers.
    pub bp: BpScratch,
    /// Union–find fallback scratch.
    pub uf: UfScratch,
}

/// Union–find decoding on a BP-reweighted graph: BP posteriors conditioned
/// on each syndrome re-weight the graphlike edges, then union–find matches
/// on the reweighted graph. Falls back to the BP hard decision when it
/// already explains the syndrome exactly.
#[derive(Debug, Clone)]
pub struct BpUnionFindDecoder {
    bp: BeliefPropagation,
    /// The DEM the BP engine runs on (hyperedges intact) — hard decisions
    /// index into this model's error list.
    dem: DetectorErrorModel,
    base: UnionFindDecoder,
}

impl BpUnionFindDecoder {
    /// Builds the decoder from any DEM (hyperedges are decomposed for the
    /// union–find stage but kept intact for BP).
    pub fn new(dem: &DetectorErrorModel) -> Self {
        let bp = BeliefPropagation::new(dem);
        let (graph, _) = DecodingGraph::from_dem_decomposed(dem);
        Self {
            bp,
            dem: dem.clone(),
            base: UnionFindDecoder::new(graph),
        }
    }

    /// Access to the BP engine.
    pub fn belief_propagation(&self) -> &BeliefPropagation {
        &self.bp
    }
}

impl Decoder for BpUnionFindDecoder {
    type Scratch = BpUfScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut BpUfScratch) -> u64 {
        if defects.is_empty() {
            return 0;
        }
        let (obs, converged) = self
            .bp
            .hard_decision_into(&self.dem, defects, &mut scratch.bp);
        if converged {
            return obs;
        }
        self.base.predict_into(defects, &mut scratch.uf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use raa_stabsim::dem::DemError;
    use raa_stabsim::{Circuit, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_dem(n: usize, p: f64) -> DetectorErrorModel {
        let mut errors = vec![DemError {
            probability: p,
            detectors: vec![0],
            observables: 1,
        }];
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: p,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: p,
            detectors: vec![n as u32 - 1],
            observables: 0,
        });
        DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        }
    }

    #[test]
    fn empty_syndrome_trivial() {
        let dem = chain_dem(4, 0.01);
        let d = BpUnionFindDecoder::new(&dem);
        assert_eq!(d.predict(&[]), 0);
    }

    #[test]
    fn bp_posterior_flags_fired_error() {
        // Single defect at node 0 of a chain: the boundary edge {0} is the
        // most likely explanation; its posterior LLR should go negative.
        let dem = chain_dem(4, 0.01);
        let bp = BeliefPropagation::new(&dem);
        let post = bp.posteriors(&[0]);
        assert!(
            post[0] < 0.0,
            "boundary edge should be blamed: posts = {post:?}"
        );
        // The interior edge {2,3} should stay positive (not blamed).
        assert!(post[3] > 0.0, "posts = {post:?}");
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let dem = chain_dem(6, 0.02);
        let d = BpUnionFindDecoder::new(&dem);
        let mut scratch = BpUfScratch::default();
        for syndrome in [vec![0u32], vec![], vec![1, 2], vec![5], vec![0, 1, 4, 5]] {
            assert_eq!(
                d.predict_into(&syndrome, &mut scratch),
                d.predict(&syndrome),
                "syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn hard_decision_matches_unionfind_on_easy_syndromes() {
        let dem = chain_dem(6, 0.02);
        let d = BpUnionFindDecoder::new(&dem);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let uf = UnionFindDecoder::new(graph);
        for syndrome in [vec![0u32], vec![1, 2], vec![5], vec![0, 1, 4, 5]] {
            assert_eq!(
                d.predict(&syndrome),
                uf.predict(&syndrome),
                "syndrome {syndrome:?}"
            );
        }
    }

    #[test]
    fn bp_uf_decodes_repetition_memory() {
        // End-to-end: BP+UF achieves a useful logical error rate on a noisy
        // repetition-code memory, comparable to plain union-find.
        let p = 0.06;
        let mut c = Circuit::new();
        let data = [0u32, 2, 4, 6, 8];
        let anc = [1u32, 3, 5, 7];
        c.r(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        for round in 0..3 {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..4)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..4usize {
                if round == 0 {
                    c.detector(&[MeasRecord::back(4 - i)]);
                } else {
                    c.detector(&[MeasRecord::back(4 - i), MeasRecord::back(8 - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..4usize {
            c.detector(&[
                MeasRecord::back(5 - i),
                MeasRecord::back(4 - i),
                MeasRecord::back(9 - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(5)]);

        let dem = DetectorErrorModel::from_circuit(&c);
        let bp_uf = BpUnionFindDecoder::new(&dem);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let uf = UnionFindDecoder::new(graph);
        let r_bp = mc::logical_error_rate(&c, &bp_uf, 8_000, &mut StdRng::seed_from_u64(9))
            .logical_error_rate();
        let r_uf = mc::logical_error_rate(&c, &uf, 8_000, &mut StdRng::seed_from_u64(9))
            .logical_error_rate();
        assert!(
            r_bp <= r_uf * 1.3 + 0.01,
            "BP+UF {r_bp} should be comparable to UF {r_uf}"
        );
        assert!(r_bp < 0.5 * p, "decoding must beat the raw rate: {r_bp}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_iterations() {
        let _ = BeliefPropagation::new(&chain_dem(3, 0.01)).with_iterations(0);
    }
}
