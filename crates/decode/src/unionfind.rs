//! Weighted union–find decoder with peeling.
//!
//! The union–find decoder (Delfosse–Nickerson style, with weighted growth)
//! grows clusters around syndrome defects until every cluster has even parity
//! or touches the boundary, then peels a spanning forest of the grown region
//! to produce a correction. It runs in near-linear time and is the workhorse
//! decoder for the paper's transversal-circuit simulations; the paper notes
//! (§III.4, Fig. 13a) that cheaper-but-less-accurate decoders simply show up
//! as a larger decoding factor α.

use crate::graph::DecodingGraph;
use crate::Decoder;

/// Outcome of a union–find decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnionFindOutcome {
    /// Predicted observable mask.
    pub observables: u64,
    /// Whether peeling fully resolved every defect (it should whenever the
    /// graph connects all detectors to the boundary).
    pub converged: bool,
}

/// Weighted union–find decoder over a [`DecodingGraph`].
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder};
///
/// // Distance-3 repetition code, single round: 2 detectors.
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// c.x_error(&[0, 2, 4], 0.01);
/// c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
/// c.mr(&[1, 3]);
/// c.detector(&[MeasRecord::back(2)]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let graph = DecodingGraph::from_dem(&dem).unwrap();
/// let decoder = UnionFindDecoder::new(graph);
/// // A single fired detector at the edge: the correction crosses the boundary.
/// let prediction = decoder.predict(&[0]);
/// assert_eq!(prediction, 1); // flips the logical observable on qubit 0
/// ```
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    /// Integer-quantized edge weights (≥ 1).
    int_weights: Vec<u32>,
}

/// Maximum quantized weight; growth iterations scale with this.
const WEIGHT_QUANTA: f64 = 32.0;

struct Dsu {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Root-indexed: parity of defect count in the cluster.
    parity: Vec<bool>,
    /// Root-indexed: whether the cluster touches the boundary node.
    boundary: Vec<bool>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            parity: vec![false; n],
            boundary: vec![false; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        if self.rank[big as usize] == self.rank[small as usize] {
            self.rank[big as usize] += 1;
        }
        let parity = self.parity[ra as usize] ^ self.parity[rb as usize];
        let boundary = self.boundary[ra as usize] | self.boundary[rb as usize];
        self.parity[big as usize] = parity;
        self.boundary[big as usize] = boundary;
        big
    }
}

impl UnionFindDecoder {
    /// Builds a decoder owning `graph`, quantizing edge weights to at most
    /// 32 growth quanta (minimum 1) for the growth stage.
    pub fn new(graph: DecodingGraph) -> Self {
        let max_w = graph
            .edges()
            .iter()
            .map(|e| e.weight)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let int_weights = graph
            .edges()
            .iter()
            .map(|e| ((e.weight / max_w * WEIGHT_QUANTA).round() as u32).max(1))
            .collect();
        Self { graph, int_weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Decodes a syndrome (the list of fired detectors), reporting convergence.
    pub fn decode(&self, defects: &[u32]) -> UnionFindOutcome {
        if defects.is_empty() {
            return UnionFindOutcome {
                observables: 0,
                converged: true,
            };
        }
        let nd = self.graph.num_detectors();
        let boundary_node = nd as u32;
        let num_nodes = nd + 1;
        let mut dsu = Dsu::new(num_nodes);
        dsu.boundary[nd] = true;
        for &d in defects {
            let r = dsu.find(d) as usize;
            dsu.parity[r] = !dsu.parity[r];
        }

        let edges = self.graph.edges();
        let mut growth = vec![0u32; edges.len()];
        let mut solid = vec![false; edges.len()];

        // Growth stage: unit growth per iteration on edges touching active clusters.
        let max_iters = (WEIGHT_QUANTA as usize + 1) * num_nodes.max(edges.len()) + 64;
        for _ in 0..max_iters {
            // Which clusters are active?
            let mut any_active = false;
            let mut to_merge: Vec<usize> = Vec::new();
            for (i, e) in edges.iter().enumerate() {
                if solid[i] {
                    continue;
                }
                let ru = dsu.find(e.u);
                let rv = dsu.find(e.v.unwrap_or(boundary_node));
                if ru == rv {
                    // Internal edge of a cluster: irrelevant for growth.
                    continue;
                }
                let active_u = dsu.parity[ru as usize] && !dsu.boundary[ru as usize];
                let active_v = dsu.parity[rv as usize] && !dsu.boundary[rv as usize];
                let increments = u32::from(active_u) + u32::from(active_v);
                if increments == 0 {
                    continue;
                }
                any_active = true;
                growth[i] += increments;
                if growth[i] >= self.int_weights[i] {
                    to_merge.push(i);
                }
            }
            for i in to_merge {
                solid[i] = true;
                let e = &edges[i];
                dsu.union(e.u, e.v.unwrap_or(boundary_node));
            }
            if !any_active {
                break;
            }
        }

        self.peel(defects, &solid)
    }

    /// Peeling stage: spanning forest over solid edges, leaves first.
    fn peel(&self, defects: &[u32], solid: &[bool]) -> UnionFindOutcome {
        let nd = self.graph.num_detectors();
        let boundary_node = nd as u32;
        let num_nodes = nd + 1;
        let edges = self.graph.edges();

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (i, e) in edges.iter().enumerate() {
            if solid[i] {
                adj[e.u as usize].push(i as u32);
                adj[e.v.unwrap_or(boundary_node) as usize].push(i as u32);
            }
        }

        let mut defect = vec![false; num_nodes];
        for &d in defects {
            defect[d as usize] = true;
        }

        let mut visited = vec![false; num_nodes];
        let mut observables = 0u64;
        let mut converged = true;

        // Component roots: boundary first so it absorbs parity where possible.
        let roots = std::iter::once(boundary_node)
            .chain(defects.iter().copied())
            .collect::<Vec<_>>();
        for root in roots {
            if visited[root as usize] {
                continue;
            }
            // BFS recording (node, parent edge) in visit order.
            let mut order: Vec<(u32, Option<u32>)> = Vec::new();
            let mut queue = std::collections::VecDeque::new();
            visited[root as usize] = true;
            queue.push_back((root, None));
            while let Some((v, pe)) = queue.pop_front() {
                order.push((v, pe));
                for &ei in &adj[v as usize] {
                    let e = &edges[ei as usize];
                    let other = if e.u == v {
                        e.v.unwrap_or(boundary_node)
                    } else if e.v.unwrap_or(boundary_node) == v {
                        e.u
                    } else {
                        continue;
                    };
                    if !visited[other as usize] {
                        visited[other as usize] = true;
                        queue.push_back((other, Some(ei)));
                    }
                }
            }
            // Peel leaves-first (reverse BFS order).
            // Track each node's parent to toggle its defect.
            let mut parent_of = vec![u32::MAX; num_nodes];
            for &(v, pe) in &order {
                if let Some(ei) = pe {
                    let e = &edges[ei as usize];
                    let p = if e.u == v {
                        e.v.unwrap_or(boundary_node)
                    } else {
                        e.u
                    };
                    parent_of[v as usize] = p;
                }
            }
            for &(v, pe) in order.iter().rev() {
                let Some(ei) = pe else {
                    // Root: leftover defect must be absorbed by the boundary.
                    if defect[v as usize] && v != boundary_node {
                        converged = false;
                    }
                    continue;
                };
                if defect[v as usize] {
                    defect[v as usize] = false;
                    let p = parent_of[v as usize];
                    if p != boundary_node {
                        defect[p as usize] = !defect[p as usize];
                    }
                    observables ^= edges[ei as usize].observables;
                }
            }
        }
        // Any defect never reached by solid edges: isolated failure.
        if defect.iter().take(nd).any(|&d| d) {
            converged = false;
        }
        UnionFindOutcome {
            observables,
            converged,
        }
    }
}

impl Decoder for UnionFindDecoder {
    fn predict(&self, defects: &[u32]) -> u64 {
        self.decode(defects).observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    /// Chain graph: B - 0 - 1 - 2 - B with uniform probability, observable on
    /// the left boundary edge (like a distance-4 repetition code slice).
    fn chain_graph(p: f64) -> DecodingGraph {
        let dem = DetectorErrorModel {
            num_detectors: 3,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: p,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: p,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![1, 2],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![2],
                    observables: 0,
                },
            ],
        };
        DecodingGraph::from_dem(&dem).unwrap()
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[]);
        assert!(out.converged);
        assert_eq!(out.observables, 0);
    }

    #[test]
    fn single_defect_matches_nearest_boundary() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        // Defect at node 0: nearest boundary is the left (observable) edge.
        assert_eq!(d.predict(&[0]), 1);
        // Defect at node 2: right boundary, no observable flip.
        assert_eq!(d.predict(&[2]), 0);
    }

    #[test]
    fn adjacent_pair_matches_internally() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "pair should match via the {{0,1}} edge");
    }

    #[test]
    fn all_defects_resolve() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1, 2]);
        assert!(out.converged);
        // 0-1 pair internal, 2 to right boundary: no observable flip expected
        // (or 1-2 pair and 0 to left: one flip). Either is a valid matching of
        // equal weight; just require convergence and a consistent parity.
        assert!(out.observables <= 1);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Node 0 has a low-probability boundary edge (heavy) and a
        // high-probability edge to node 1 which has a high-probability
        // boundary edge. With defect {0}, the correction should route through
        // node 1's side... but that flips detector 1, so matching must still
        // terminate at a boundary. The cheap path 0-1-B beats the heavy 0-B
        // when peeled; both resolve, and the observable rides on 0-B only.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 1e-6,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[0]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "should avoid the unlikely direct edge");
    }

    #[test]
    fn isolated_defect_reports_nonconvergence() {
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 0,
            errors: vec![DemError {
                probability: 0.1,
                detectors: vec![0],
                observables: 0,
            }],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[1]);
        assert!(!out.converged);
    }
}
