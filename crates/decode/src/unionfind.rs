//! Weighted union–find decoder with peeling.
//!
//! The union–find decoder (Delfosse–Nickerson style, with weighted growth)
//! grows clusters around syndrome defects until every cluster has even parity
//! or touches the boundary, then peels a spanning forest of the grown region
//! to produce a correction. It runs in near-linear time and is the workhorse
//! decoder for the paper's transversal-circuit simulations; the paper notes
//! (§III.4, Fig. 13a) that cheaper-but-less-accurate decoders simply show up
//! as a larger decoding factor α.
//!
//! Growth is frontier-driven: each odd cluster carries the list of edges on
//! its boundary and only those edges are visited per growth round, so the
//! cost of a decode scales with the grown region rather than with the whole
//! graph. Two further mechanisms make the batched Monte-Carlo hot path cheap:
//!
//! - **Compiled graph.** The decoder walks a [`CompiledGraph`] — CSR
//!   adjacency in one flat arena with pre-quantized integer weights — built
//!   once at construction and shared read-only by every worker, instead of
//!   chasing per-detector `Vec`s on each decode.
//! - **Epoch-tagged scratch.** [`UfScratch`] stamps every node/edge/frontier
//!   slot with the epoch that last wrote it and lazily reinitializes a slot
//!   on first touch per decode, so resetting between shots costs O(touched)
//!   rather than O(nodes + edges). Weighted growth additionally jumps over
//!   growth rounds in which no edge can reach its weight (the per-round
//!   increments are computed in closed form), which matters for heavy edges
//!   quantized to many growth quanta.
//!
//! Both mechanisms are exact: the decision stream (solidification order,
//! merge order, peel order) is bit-identical to the literal one-quantum-per-
//! round formulation.

use crate::graph::{CompiledGraph, DecodingGraph, GraphError};
use crate::Decoder;
use raa_stabsim::SyndromeBatch;
use std::collections::{HashMap, VecDeque};
use std::sync::{PoisonError, RwLock};

/// Outcome of a union–find decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnionFindOutcome {
    /// Predicted observable mask.
    pub observables: u64,
    /// Whether peeling fully resolved every defect (it should whenever the
    /// graph connects all detectors to the boundary).
    pub converged: bool,
}

const NONE: u32 = u32::MAX;

/// Syndromes longer than this skip the decomposition fast path outright.
const MEMO_MAX_DEFECTS: usize = 32;
/// Components larger than this are not memoized (their keys essentially
/// never recur); the whole syndrome falls back to the full decode.
const MEMO_MAX_COMPONENT: usize = 12;
/// Memo flush threshold — a backstop against adversarial syndrome streams,
/// far above what the Monte-Carlo workloads produce.
const MEMO_MAX_ENTRIES: usize = 1 << 14;

/// A memoized standalone decode of one defect component: its outcome, its
/// correction edges, and its *reach* — every edge that ever entered a
/// frontier list during the decode. Two components whose reaches are
/// disjoint cannot interact in a joint decode, so their results compose by
/// XOR (see [`UnionFindDecoder::decode_into`]).
#[derive(Debug, Clone)]
struct MemoEntry {
    observables: u64,
    converged: bool,
    correction: Box<[u32]>,
    mask: Box<[u64]>,
}

/// Result of composing a syndrome from memoized components.
enum Compose {
    /// All components hit the memo and their reaches are disjoint.
    Done(UnionFindOutcome),
    /// The two components' reaches share an edge: they must be coarsened
    /// into one piece (they may interact in the joint decode).
    Overlap(usize, usize),
    /// The component at this piece index is not memoized yet.
    Missing(usize),
}

/// Reusable working state for [`UnionFindDecoder`].
///
/// Construct with `Default::default()`; the first decode sizes every buffer
/// to the decoder's graph and later decodes reuse the capacity. One scratch
/// serves one decoder at a time (sizes adapt automatically if reused across
/// decoders of different shapes).
///
/// Per-node and per-edge state is epoch-tagged: each decode bumps a
/// generation counter and slots are lazily reinitialized on first touch, so
/// the inter-shot reset is O(1) plus the handful of explicit list clears —
/// the batched Monte-Carlo path never pays an O(graph) wipe for a sparse
/// syndrome.
#[derive(Debug, Clone, Default)]
pub struct UfScratch {
    /// Current decode generation; `*_epoch` slots not equal to this are
    /// stale and reinitialized on first touch.
    epoch: u32,
    node_epoch: Vec<u32>,
    edge_epoch: Vec<u32>,
    frontier_epoch: Vec<u32>,
    // Union-find forest over detector nodes + virtual boundary node.
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Root-indexed: parity of defect count in the cluster.
    parity: Vec<bool>,
    /// Root-indexed: whether the cluster touches the boundary node.
    boundary: Vec<bool>,
    /// Root-indexed: frontier edge list of the cluster.
    frontier: Vec<Vec<u32>>,
    /// Per-edge accumulated growth.
    growth: Vec<u32>,
    /// Per-edge solid flag.
    solid: Vec<bool>,
    /// Per-edge visit count of the current growth round (round-jump pass).
    pending: Vec<u32>,
    /// Edges visited by the current growth round (clears `pending`).
    round_edges: Vec<u32>,
    /// The current round's live frontier visits, in scan order (an edge
    /// appears once per active endpoint). Recorded by the counting pass so
    /// the literal unit round can replay it without re-resolving clusters.
    visit_edges: Vec<u32>,
    /// Solidified edge indices, in solidification order (drives peeling).
    solid_edges: Vec<u32>,
    /// Per-node: whether the node's incident edges were already added to a
    /// cluster frontier.
    seeded: Vec<bool>,
    /// Roots of clusters that may still be active.
    active: Vec<u32>,
    /// Scratch for the next round's active list.
    next_active: Vec<u32>,
    /// Edges that reached their weight this round.
    to_merge: Vec<u32>,
    // Peeling state.
    defect: Vec<bool>,
    visited: Vec<bool>,
    /// BFS visit order of (node, incoming edge).
    order: Vec<(u32, u32)>,
    queue: VecDeque<u32>,
    /// Linked-list adjacency over solid edges: per-node head into `adj_*`.
    adj_head: Vec<u32>,
    adj_next: Vec<u32>,
    adj_edge: Vec<u32>,
    /// Edge indices of the last decode's correction, in peel order.
    correction: Vec<u32>,
    /// Defect-extraction buffer for the batched decode path.
    defects_buf: Vec<u32>,
    // Decomposition fast-path state.
    /// Edges that ever entered a frontier list this epoch — the decode's
    /// reach, recorded so a component sub-decode can be checked for
    /// disjointness against its siblings.
    edge_mask: Vec<u64>,
    /// Nested scratch driving memo-miss component sub-decodes.
    sub: Option<Box<UfScratch>>,
    /// Tiny union–find over defect list indices for component grouping.
    group_parent: Vec<u32>,
    /// Concatenated canonical (sorted) per-component defect keys.
    key_buf: Vec<u32>,
    /// `(start, len)` ranges of `key_buf`, one per component.
    piece_ranges: Vec<(u32, u32)>,
    /// Accumulated reach of already-accepted components.
    acc_mask: Vec<u64>,
}

impl UfScratch {
    /// Opens a new decode epoch for a graph with `num_nodes` nodes
    /// (detectors + boundary) and `num_edges` edges. Stale per-slot state is
    /// reinitialized lazily by the `touch_*` methods; only the compact lists
    /// are cleared eagerly.
    fn begin(&mut self, num_nodes: usize, num_edges: usize) {
        if self.epoch == u32::MAX {
            // Epoch counter wrap: restamp everything as stale once.
            self.node_epoch.iter_mut().for_each(|e| *e = 0);
            self.edge_epoch.iter_mut().for_each(|e| *e = 0);
            self.frontier_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.node_epoch.len() < num_nodes {
            self.node_epoch.resize(num_nodes, 0);
            self.parent.resize(num_nodes, 0);
            self.rank.resize(num_nodes, 0);
            self.parity.resize(num_nodes, false);
            self.boundary.resize(num_nodes, false);
            self.seeded.resize(num_nodes, false);
            self.defect.resize(num_nodes, false);
            self.visited.resize(num_nodes, false);
            self.adj_head.resize(num_nodes, NONE);
        }
        if self.frontier_epoch.len() < num_nodes {
            self.frontier_epoch.resize(num_nodes, 0);
            self.frontier.resize_with(num_nodes, Vec::new);
        }
        if self.edge_epoch.len() < num_edges {
            self.edge_epoch.resize(num_edges, 0);
            self.growth.resize(num_edges, 0);
            self.solid.resize(num_edges, false);
            self.pending.resize(num_edges, 0);
        }
        self.round_edges.clear();
        self.visit_edges.clear();
        self.solid_edges.clear();
        self.active.clear();
        self.next_active.clear();
        self.to_merge.clear();
        self.order.clear();
        self.queue.clear();
        self.adj_next.clear();
        self.adj_edge.clear();
        self.correction.clear();
        self.edge_mask.clear();
        self.edge_mask.resize(num_edges.div_ceil(64).max(1), 0);
    }

    /// Records edges entering a frontier list (the decode's reach).
    #[inline]
    fn mark_edges(&mut self, edges: &[u32]) {
        for &ei in edges {
            self.edge_mask[(ei >> 6) as usize] |= 1 << (ei & 63);
        }
    }

    /// Reinitializes node `x`'s slots if they are stale.
    #[inline]
    fn touch_node(&mut self, x: u32) {
        let xi = x as usize;
        if self.node_epoch[xi] != self.epoch {
            self.node_epoch[xi] = self.epoch;
            self.parent[xi] = x;
            self.rank[xi] = 0;
            self.parity[xi] = false;
            self.boundary[xi] = false;
            self.seeded[xi] = false;
            self.defect[xi] = false;
            self.visited[xi] = false;
            self.adj_head[xi] = NONE;
        }
    }

    /// Reinitializes edge `e`'s slots if they are stale.
    #[inline]
    fn touch_edge(&mut self, e: u32) {
        let ei = e as usize;
        if self.edge_epoch[ei] != self.epoch {
            self.edge_epoch[ei] = self.epoch;
            self.growth[ei] = 0;
            self.solid[ei] = false;
            self.pending[ei] = 0;
        }
    }

    /// Clears root `r`'s frontier list if it is stale.
    #[inline]
    fn touch_frontier(&mut self, r: u32) {
        let ri = r as usize;
        if self.frontier_epoch[ri] != self.epoch {
            self.frontier_epoch[ri] = self.epoch;
            self.frontier[ri].clear();
        }
    }

    /// The correction of the last decode through this scratch: the graph
    /// edge indices peeling selected, in peel order. The predicted
    /// observable mask is the XOR of these edges' observable masks; the
    /// windowed decoder uses the edges themselves to split a correction at
    /// the commit boundary (syndrome projection).
    pub fn correction(&self) -> &[u32] {
        &self.correction
    }

    /// Whether the last decode's reach (every edge that entered a frontier
    /// list) intersects `mask`, a bitset over edge indices. Only meaningful
    /// after a non-empty decode through a decoder with reach tracking
    /// enabled (see [`UnionFindDecoder::with_reach_tracking`]); the windowed
    /// decoder uses this to prove a window-template decode never touched an
    /// edge whose neighborhood the template clips.
    pub(crate) fn reach_intersects(&self, mask: &[u64]) -> bool {
        self.edge_mask
            .iter()
            .zip(mask.iter())
            .any(|(&a, &b)| a & b != 0)
    }

    fn find(&mut self, x: u32) -> u32 {
        // Nodes on a parent chain were all touched when they were unioned,
        // so only the entry point needs the staleness check.
        self.touch_node(x);
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the clusters of `a` and `b`, merging parity, boundary flags and
    /// frontier lists (small list drains into large); returns the new root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        if self.rank[big as usize] == self.rank[small as usize] {
            self.rank[big as usize] += 1;
        }
        let parity = self.parity[ra as usize] ^ self.parity[rb as usize];
        let boundary = self.boundary[ra as usize] | self.boundary[rb as usize];
        self.parity[big as usize] = parity;
        self.boundary[big as usize] = boundary;
        // Merge frontier lists small-into-big without allocating: swap the
        // shorter one out, drain it into the longer.
        self.touch_frontier(big);
        self.touch_frontier(small);
        let (bi, si) = (big as usize, small as usize);
        if self.frontier[bi].len() < self.frontier[si].len() {
            self.frontier.swap(bi, si);
        }
        let mut donor = std::mem::take(&mut self.frontier[si]);
        self.frontier[bi].append(&mut donor);
        self.frontier[si] = donor; // restore the (now empty) allocation
        big
    }

    fn push_adj(&mut self, node: u32, edge: u32) {
        let slot = self.adj_next.len() as u32;
        self.adj_next.push(self.adj_head[node as usize]);
        self.adj_edge.push(edge);
        self.adj_head[node as usize] = slot;
    }
}

/// Weighted union–find decoder over a [`DecodingGraph`].
///
/// At construction the graph is compiled into a [`CompiledGraph`] (flat CSR
/// adjacency, quantized integer weights) that the decode loop walks; the
/// original graph stays available through [`UnionFindDecoder::graph`] for
/// callers that need edge endpoints or observables in floating-point form
/// (e.g. the windowed decoder's commit-boundary split).
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder};
///
/// // Distance-3 repetition code, single round: 2 detectors.
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// c.x_error(&[0, 2, 4], 0.01);
/// c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
/// c.mr(&[1, 3]);
/// c.detector(&[MeasRecord::back(2)]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let graph = DecodingGraph::from_dem(&dem).unwrap();
/// let decoder = UnionFindDecoder::new(graph);
/// // A single fired detector at the edge: the correction crosses the boundary.
/// let prediction = decoder.predict(&[0]);
/// assert_eq!(prediction, 1); // flips the logical observable on qubit 0
/// ```
#[derive(Debug)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    compiled: CompiledGraph,
    /// Flattened per-detector adjacency bitsets (detectors sharing an edge),
    /// driving the fast path's component grouping.
    near: Vec<u64>,
    /// Words per `near` row.
    near_words: usize,
    /// Memoized standalone component decodes, shared read-mostly by every
    /// worker thread. Hits and misses produce identical results, so the
    /// memo affects throughput only — never outcomes or determinism.
    memo: RwLock<HashMap<Box<[u32]>, MemoEntry>>,
    /// Whether the memoized component decomposition fast path is enabled.
    memo_enabled: bool,
    /// Whether `scratch.edge_mask` must hold the decode's reach after every
    /// non-empty `decode_into`, including memo-composed decodes.
    track_reach: bool,
}

impl Clone for UnionFindDecoder {
    fn clone(&self) -> Self {
        Self {
            graph: self.graph.clone(),
            compiled: self.compiled.clone(),
            near: self.near.clone(),
            near_words: self.near_words,
            memo: RwLock::new(self.read_memo().clone()),
            memo_enabled: self.memo_enabled,
            track_reach: self.track_reach,
        }
    }
}

impl UnionFindDecoder {
    /// Builds a decoder owning `graph`, quantizing edge weights to at most
    /// 32 growth quanta (minimum 1) for the growth stage.
    ///
    /// If the weights are degenerate (non-finite, or all ≈ 0 because every
    /// probability ≈ 1/2) the decoder falls back to uniform unit weights —
    /// exactly what the quantizer used to produce silently for such graphs.
    /// Use [`UnionFindDecoder::try_new`] to surface the degeneracy as a
    /// typed error instead.
    pub fn new(graph: DecodingGraph) -> Self {
        let compiled = CompiledGraph::compile(&graph)
            .unwrap_or_else(|_| CompiledGraph::compile_uniform(&graph));
        Self::from_parts(graph, compiled)
    }

    /// Builds a decoder owning `graph`, rejecting graphs whose edge weights
    /// cannot be meaningfully quantized.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DegenerateWeights`] when an edge weight is
    /// non-finite or the maximum weight is ~zero (all probabilities ≈ 1/2);
    /// quantizing such weights would silently flatten the weighted growth
    /// order. [`UnionFindDecoder::new`] instead falls back to uniform
    /// weights for these graphs.
    pub fn try_new(graph: DecodingGraph) -> Result<Self, GraphError> {
        let compiled = CompiledGraph::compile(&graph)?;
        Ok(Self::from_parts(graph, compiled))
    }

    /// Assembles a decoder from an already-compiled graph. Crate-internal:
    /// the windowed decoder uses this to build per-window-template decoders
    /// whose [`CompiledGraph`] carries weights quantized against the *full*
    /// circuit graph (see [`CompiledGraph::compile_with_weights`]).
    pub(crate) fn from_parts(graph: DecodingGraph, compiled: CompiledGraph) -> Self {
        let (near, near_words) = build_near(&compiled);
        Self {
            graph,
            compiled,
            near,
            near_words,
            memo: RwLock::new(HashMap::new()),
            memo_enabled: true,
            track_reach: false,
        }
    }

    /// Makes every non-empty [`UnionFindDecoder::decode_into`] leave the
    /// decode's *reach* — the bitset of edges that ever entered a frontier
    /// list — in `scratch.edge_mask`, even when the result came from the
    /// memoized composition path (the composed reach is the union of the
    /// pieces' standalone reaches, which equals the joint decode's reach
    /// because accepted compositions have pairwise disjoint pieces). Off by
    /// default: maintaining the union costs O(edges/64) per composed decode,
    /// which the flat batch hot path does not want to pay. The windowed
    /// decoder enables it on window-template decoders, whose exactness check
    /// intersects the reach with the template's clipped-neighborhood edges.
    #[must_use]
    pub(crate) fn with_reach_tracking(mut self, enabled: bool) -> Self {
        self.track_reach = enabled;
        self
    }

    /// The memo under its read lock; a poisoned lock is recovered (the memo
    /// is always internally consistent — a panicking writer can at worst
    /// leave a flushed map).
    fn read_memo(&self) -> std::sync::RwLockReadGuard<'_, HashMap<Box<[u32]>, MemoEntry>> {
        self.memo.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// En/disables the memoized component decomposition fast path (on by
    /// default). The fast path splits a syndrome into defect components,
    /// decodes each standalone with per-scratch memoization, and composes
    /// the results when the components' grown regions are provably
    /// disjoint; it changes throughput only, never outcomes — the
    /// `memo_on_off_bit_identical_on_random_syndromes` test pins this.
    #[must_use]
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.memo_enabled = enabled;
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// The compiled (CSR, quantized-weight) form the decode loop runs on.
    pub fn compiled(&self) -> &CompiledGraph {
        &self.compiled
    }

    /// Decodes a syndrome with a fresh scratch; prefer
    /// [`UnionFindDecoder::decode_into`] in loops.
    pub fn decode(&self, defects: &[u32]) -> UnionFindOutcome {
        self.decode_into(defects, &mut UfScratch::default())
    }

    /// Decodes a syndrome (the list of fired detectors), reporting
    /// convergence. All working state lives in `scratch`; steady state
    /// performs no heap allocation beyond the component memo.
    ///
    /// The decode first tries the memoized component decomposition: the
    /// defects are grouped into components (edge adjacency), each
    /// component is decoded standalone — memoized per scratch, so recurring
    /// local patterns (the bulk of Monte-Carlo syndromes) hit a table — and
    /// the results are XOR-composed when the components' grown regions are
    /// pairwise disjoint. Growth is frontier-driven, so a standalone
    /// component decode touches exactly the edges its clusters ever reach;
    /// when those reaches don't share an edge, the joint decode cannot
    /// couple them (clusters interact only through shared frontier edges)
    /// and the composition equals the full decode's outcome, correction
    /// *set*, and convergence flag. Any overlap, oversized component, or
    /// oversized syndrome falls back to the full decode. The fast path is
    /// deterministic per (decoder, syndrome), so repeated decodes agree
    /// regardless of scratch history.
    pub fn decode_into(&self, defects: &[u32], scratch: &mut UfScratch) -> UnionFindOutcome {
        if defects.is_empty() {
            scratch.correction.clear();
            return UnionFindOutcome {
                observables: 0,
                converged: true,
            };
        }
        if self.memo_enabled {
            if let Some(out) = self.decode_decomposed(defects, scratch) {
                return out;
            }
        }
        self.decode_full_into(defects, scratch)
    }

    /// The memoized component decomposition fast path; `None` means the
    /// syndrome must go through the full decode.
    fn decode_decomposed(
        &self,
        defects: &[u32],
        scratch: &mut UfScratch,
    ) -> Option<UnionFindOutcome> {
        let nd = self.compiled.num_detectors();
        let k = defects.len();
        if k > MEMO_MAX_DEFECTS || defects.iter().any(|&d| (d as usize) >= nd) {
            return None;
        }

        // Tiny union–find over defect list indices, path-halving find.
        fn tfind(p: &mut [u32], mut i: u32) -> u32 {
            while p[i as usize] != i {
                let gp = p[p[i as usize] as usize];
                p[i as usize] = gp;
                i = gp;
            }
            i
        }
        // Group edge-adjacent defects. The grouping is a heuristic for
        // memo-key recurrence only — tight on purpose, so that dense
        // syndromes still split into small memoizable pieces: a split
        // that separates interacting defects is caught by the reach
        // overlap check below and coarsened into a joint piece.
        let words = self.near_words;
        scratch.group_parent.clear();
        scratch.group_parent.extend(0..k as u32);
        for i in 0..k {
            let row = &self.near[defects[i] as usize * words..][..words];
            for (j, &dj) in defects.iter().enumerate().skip(i + 1) {
                let dj = dj as usize;
                if row[dj >> 6] & (1u64 << (dj & 63)) != 0 {
                    let ri = tfind(&mut scratch.group_parent, i as u32);
                    let rj = tfind(&mut scratch.group_parent, j as u32);
                    if ri != rj {
                        scratch.group_parent[rj as usize] = ri;
                    }
                }
            }
        }
        // Components in first-occurrence order, each with a canonical
        // (sorted) defect key. Seeding is order-independent, so the
        // standalone decode of the sorted key equals the component's
        // contribution under the caller's ordering.
        scratch.key_buf.clear();
        scratch.piece_ranges.clear();
        let mut emitted = 0u64;
        for i in 0..k {
            if emitted & (1 << i) != 0 {
                continue;
            }
            let r = tfind(&mut scratch.group_parent, i as u32);
            let start = scratch.key_buf.len();
            for (j, &dj) in defects.iter().enumerate().skip(i) {
                if tfind(&mut scratch.group_parent, j as u32) == r {
                    emitted |= 1 << j;
                    scratch.key_buf.push(dj);
                }
            }
            let len = scratch.key_buf.len() - start;
            if len > MEMO_MAX_COMPONENT {
                return None;
            }
            scratch.key_buf[start..].sort_unstable();
            scratch.piece_ranges.push((start as u32, len as u32));
        }

        // Compose, decoding memo-missing pieces standalone through the
        // nested scratch (no lock held) and coarsening overlapping pieces
        // into one. Each miss memoizes a piece and each overlap removes
        // one, so the loop terminates; the slack in the attempt cap
        // absorbs memo-flush races (another thread clearing a full memo
        // between insert and retry). Giving up falls back to the full
        // decode — same result either way. In steady state the first
        // attempt composes everything under a single read lock.
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > 2 * k + 4 {
                return None;
            }
            // Bind the compose result first: the read guard must drop
            // before the `Missing` arm takes the write lock.
            let composed = {
                let memo = self.read_memo();
                self.try_compose(&memo, scratch)
            };
            match composed {
                Compose::Done(out) => return Some(out),
                Compose::Missing(pi) => {
                    let (s, l) = scratch.piece_ranges[pi];
                    let (s, l) = (s as usize, l as usize);
                    let mut sub = scratch.sub.take().unwrap_or_default();
                    let out = self.decode_full_into(&scratch.key_buf[s..s + l], &mut sub);
                    let entry = MemoEntry {
                        observables: out.observables,
                        converged: out.converged,
                        correction: sub.correction.as_slice().into(),
                        mask: sub.edge_mask.as_slice().into(),
                    };
                    scratch.sub = Some(sub);
                    let mut memo = self.memo.write().unwrap_or_else(PoisonError::into_inner);
                    if memo.len() >= MEMO_MAX_ENTRIES {
                        memo.clear();
                    }
                    memo.entry(scratch.key_buf[s..s + l].to_vec().into_boxed_slice())
                        .or_insert(entry);
                }
                Compose::Overlap(a, b) => {
                    // Merge piece `b` into piece `a` (the pieces may
                    // interact, so they must be decoded jointly); the other
                    // pieces keep their order. The merged key is appended
                    // to `key_buf` — stale ranges stay valid.
                    let (sa, la) = scratch.piece_ranges[a];
                    let (sb, lb) = scratch.piece_ranges[b];
                    if (la + lb) as usize > MEMO_MAX_COMPONENT {
                        return None;
                    }
                    let start = scratch.key_buf.len();
                    scratch
                        .key_buf
                        .extend_from_within(sa as usize..(sa + la) as usize);
                    scratch
                        .key_buf
                        .extend_from_within(sb as usize..(sb + lb) as usize);
                    scratch.key_buf[start..].sort_unstable();
                    scratch.piece_ranges[a] = (start as u32, la + lb);
                    scratch.piece_ranges.remove(b);
                }
            }
        }
    }

    /// Composes the grouped components from `memo`. Reaches must be
    /// pairwise disjoint; the XOR of the standalone outcomes then equals
    /// the joint decode's outcome (components that never share an edge
    /// never exchange growth, and clusters meeting only at the virtual
    /// boundary node are inert — boundary clusters stop growing, and
    /// peeling the identical solid forest yields the same correction set).
    fn try_compose(
        &self,
        memo: &HashMap<Box<[u32]>, MemoEntry>,
        scratch: &mut UfScratch,
    ) -> Compose {
        let single = scratch.piece_ranges.len() == 1;
        if !single {
            scratch.acc_mask.clear();
            scratch
                .acc_mask
                .resize(self.compiled.num_edges().div_ceil(64).max(1), 0);
        }
        if self.track_reach {
            // The reach contract: when this compose succeeds, edge_mask must
            // hold the union of the piece reaches (on Missing/Overlap the
            // partial union is discarded — a retry rebuilds it, and the full
            // decode fallback resets edge_mask in `begin`).
            scratch.edge_mask.clear();
            scratch
                .edge_mask
                .resize(self.compiled.num_edges().div_ceil(64).max(1), 0);
        }
        let mut observables = 0u64;
        let mut converged = true;
        scratch.correction.clear();
        for pi in 0..scratch.piece_ranges.len() {
            let (s, l) = scratch.piece_ranges[pi];
            let key = &scratch.key_buf[s as usize..(s + l) as usize];
            let Some(e) = memo.get(key) else {
                return Compose::Missing(pi);
            };
            if !single {
                let overlaps = scratch
                    .acc_mask
                    .iter()
                    .zip(e.mask.iter())
                    .any(|(&a, &m)| a & m != 0);
                if overlaps {
                    // Identify the earliest prior piece sharing the reach.
                    for pj in 0..pi {
                        let (s2, l2) = scratch.piece_ranges[pj];
                        let key2 = &scratch.key_buf[s2 as usize..(s2 + l2) as usize];
                        let Some(e2) = memo.get(key2) else {
                            return Compose::Missing(pj);
                        };
                        if e2.mask.iter().zip(e.mask.iter()).any(|(&a, &m)| a & m != 0) {
                            return Compose::Overlap(pj, pi);
                        }
                    }
                    unreachable!("accumulated mask is the union of prior piece masks");
                }
                for (a, &m) in scratch.acc_mask.iter_mut().zip(e.mask.iter()) {
                    *a |= m;
                }
            }
            if self.track_reach {
                for (a, &m) in scratch.edge_mask.iter_mut().zip(e.mask.iter()) {
                    *a |= m;
                }
            }
            observables ^= e.observables;
            converged &= e.converged;
            scratch.correction.extend_from_slice(&e.correction);
        }
        Compose::Done(UnionFindOutcome {
            observables,
            converged,
        })
    }

    /// The full (non-decomposed) decode: seed, grow, merge, peel.
    fn decode_full_into(&self, defects: &[u32], scratch: &mut UfScratch) -> UnionFindOutcome {
        if defects.is_empty() {
            scratch.correction.clear();
            return UnionFindOutcome {
                observables: 0,
                converged: true,
            };
        }
        let g = &self.compiled;
        let nd = g.num_detectors();
        let boundary_node = nd as u32;
        let num_nodes = nd + 1;
        scratch.begin(num_nodes, g.num_edges());
        scratch.touch_node(boundary_node);
        scratch.boundary[nd] = true;

        // Seed odd-parity singleton clusters at the defects. Each defect's
        // frontier starts as its incident edges.
        for &d in defects {
            let r = scratch.find(d) as usize;
            scratch.parity[r] = !scratch.parity[r];
            if !scratch.seeded[d as usize] {
                scratch.seeded[d as usize] = true;
                scratch.touch_frontier(d);
                scratch.frontier[d as usize].extend_from_slice(g.incident(d));
                scratch.mark_edges(g.incident(d));
            }
        }
        for &d in defects {
            let r = scratch.find(d);
            if scratch.parity[r as usize] {
                scratch.active.push(r);
            }
        }
        scratch.active.sort_unstable();
        scratch.active.dedup();

        // Growth: per round, every edge on an odd non-boundary cluster's
        // frontier grows by one quantum per active endpoint (all growth is
        // applied before any merge, matching simultaneous dense growth);
        // edges reaching their weight solidify and merge their endpoints.
        //
        // Rounds in which no edge can reach its weight are jumped over: a
        // read-only pass counts how many frontiers grow each still-open edge
        // (`pending`), the number of whole rounds until the earliest
        // solidification is computed in closed form, and all but the last of
        // those rounds are applied as a single multiple-of-`pending`
        // increment. Because no edge solidifies during the jumped rounds,
        // cluster membership and frontiers are unchanged across them, so the
        // literal round that follows sees exactly the state the one-quantum
        // formulation would have produced — the decision stream is
        // bit-identical.
        loop {
            // Pass 1: prune dead (solid or intra-cluster) frontier edges in
            // place, count per-edge visits for the round jump, and record
            // the surviving visit sequence. `swap_remove` keeps live edges
            // in encounter order, so the recorded sequence is exactly the
            // visit order the literal unit round would produce; nothing
            // solidifies or merges between the passes, so pass 2 can replay
            // it without re-resolving clusters.
            scratch.round_edges.clear();
            scratch.visit_edges.clear();
            for ai in 0..scratch.active.len() {
                let root = scratch.active[ai];
                let rooti = root as usize;
                let mut i = 0;
                while i < scratch.frontier[rooti].len() {
                    let ei = scratch.frontier[rooti][i];
                    scratch.touch_edge(ei);
                    if scratch.solid[ei as usize] {
                        scratch.frontier[rooti].swap_remove(i);
                        continue;
                    }
                    let [u, v] = g.endpoints(ei);
                    // Every frontier edge of `root` has at least one
                    // endpoint inside the cluster, so when one endpoint
                    // resolves elsewhere the edge cannot be internal.
                    let fu = scratch.find(u);
                    debug_assert!(fu == root || scratch.find(v) == root);
                    if fu == root && scratch.find(v) == root {
                        scratch.frontier[rooti].swap_remove(i);
                        continue;
                    }
                    if scratch.pending[ei as usize] == 0 {
                        scratch.round_edges.push(ei);
                    }
                    scratch.pending[ei as usize] += 1;
                    scratch.visit_edges.push(ei);
                    i += 1;
                }
            }
            if scratch.round_edges.is_empty() {
                break; // nothing grew: all clusters even or on the boundary
            }
            // Rounds until the earliest edge reaches its weight; apply all
            // but the last silently (growth only — no merges can happen).
            let mut delta = u32::MAX;
            for &ei in &scratch.round_edges {
                let remaining = g.weight(ei) - scratch.growth[ei as usize];
                let per_round = scratch.pending[ei as usize];
                delta = delta.min(remaining.div_ceil(per_round));
            }
            for ri in 0..scratch.round_edges.len() {
                let ei = scratch.round_edges[ri] as usize;
                if delta > 1 {
                    scratch.growth[ei] += (delta - 1) * scratch.pending[ei];
                }
                scratch.pending[ei] = 0;
            }
            // Pass 2: the literal unit round — replay the recorded visits,
            // growing each live edge once per active endpoint and collecting
            // edges that reach their weight in visit order (an edge shared
            // by two active clusters may be pushed twice; the merge loop
            // below skips the duplicate via its solid check).
            scratch.to_merge.clear();
            for vi in 0..scratch.visit_edges.len() {
                let ei = scratch.visit_edges[vi];
                scratch.growth[ei as usize] += 1;
                if scratch.growth[ei as usize] >= g.weight(ei) {
                    scratch.to_merge.push(ei);
                }
            }
            for ti in 0..scratch.to_merge.len() {
                let ei = scratch.to_merge[ti];
                if scratch.solid[ei as usize] {
                    continue; // both endpoints pushed it this round
                }
                let [u, v] = g.endpoints(ei);
                if scratch.find(u) == scratch.find(v) {
                    continue; // became internal via an earlier merge
                }
                scratch.solid[ei as usize] = true;
                scratch.solid_edges.push(ei);
                // A node joining its first cluster contributes its incident
                // edges to the merged frontier (the boundary node has none).
                for node in [u, v] {
                    if node != boundary_node && !scratch.seeded[node as usize] {
                        scratch.seeded[node as usize] = true;
                        let root = scratch.find(node);
                        // `node` may already be inside a cluster only if it
                        // was seeded before, so here it is its own root or a
                        // fresh member of this merge round's cluster.
                        scratch.touch_frontier(root);
                        scratch.frontier[root as usize].extend_from_slice(g.incident(node));
                        scratch.mark_edges(g.incident(node));
                    }
                }
                scratch.union(u, v);
            }
            // Refresh the active list: re-resolve every candidate root and
            // keep odd, non-boundary clusters that can still grow.
            let mut candidates = std::mem::take(&mut scratch.active);
            for &cand in &candidates {
                let r = scratch.find(cand);
                if scratch.parity[r as usize]
                    && !scratch.boundary[r as usize]
                    && !scratch.frontier[r as usize].is_empty()
                {
                    scratch.next_active.push(r);
                }
            }
            candidates.clear();
            scratch.active = candidates;
            std::mem::swap(&mut scratch.active, &mut scratch.next_active);
            scratch.active.sort_unstable();
            scratch.active.dedup();
            if scratch.active.is_empty() {
                break;
            }
        }

        self.peel(defects, scratch)
    }

    /// Peeling stage: spanning forest over solid edges, leaves first.
    fn peel(&self, defects: &[u32], scratch: &mut UfScratch) -> UnionFindOutcome {
        let g = &self.compiled;
        let boundary_node = g.num_detectors() as u32;

        // Adjacency restricted to solidified edges. Every endpoint of a
        // solid edge was touched during growth (it joined a cluster).
        for si in 0..scratch.solid_edges.len() {
            let ei = scratch.solid_edges[si];
            let [u, v] = g.endpoints(ei);
            scratch.push_adj(u, ei);
            scratch.push_adj(v, ei);
        }

        for &d in defects {
            scratch.defect[d as usize] = true;
        }

        let mut observables = 0u64;
        let mut converged = true;

        // Component roots: boundary first so it absorbs parity where possible.
        for root_idx in 0..=defects.len() {
            let root = if root_idx == 0 {
                boundary_node
            } else {
                defects[root_idx - 1]
            };
            if scratch.visited[root as usize] {
                continue;
            }
            // BFS recording (node, incoming edge) in visit order.
            let order_start = scratch.order.len();
            scratch.visited[root as usize] = true;
            scratch.queue.push_back(root);
            scratch.order.push((root, NONE));
            while let Some(v) = scratch.queue.pop_front() {
                let mut slot = scratch.adj_head[v as usize];
                while slot != NONE {
                    let ei = scratch.adj_edge[slot as usize];
                    let [eu, ev] = g.endpoints(ei);
                    let other = if eu == v { ev } else { eu };
                    if !scratch.visited[other as usize] {
                        scratch.visited[other as usize] = true;
                        scratch.queue.push_back(other);
                        scratch.order.push((other, ei));
                    }
                    slot = scratch.adj_next[slot as usize];
                }
            }
            // Peel leaves-first (reverse BFS order), toggling the parent's
            // defect and accumulating observable flips on used edges.
            for oi in (order_start..scratch.order.len()).rev() {
                let (v, ei) = scratch.order[oi];
                if ei == NONE {
                    // Root: leftover defect must be absorbed by the boundary.
                    if scratch.defect[v as usize] && v != boundary_node {
                        converged = false;
                    }
                    continue;
                }
                if scratch.defect[v as usize] {
                    scratch.defect[v as usize] = false;
                    let [eu, ev] = g.endpoints(ei);
                    let p = if eu == v { ev } else { eu };
                    if p != boundary_node {
                        scratch.defect[p as usize] = !scratch.defect[p as usize];
                    }
                    observables ^= g.observables(ei);
                    scratch.correction.push(ei);
                }
            }
        }
        // Any defect never resolved by peeling: isolated failure. A leftover
        // defect can only sit at a BFS root (every defect is used as one),
        // so scanning the defect list — all touched this epoch — is exact;
        // untouched slots must not be read under the epoch scheme.
        if defects.iter().any(|&d| scratch.defect[d as usize]) {
            converged = false;
        }
        UnionFindOutcome {
            observables,
            converged,
        }
    }
}

/// Builds the flattened per-detector edge-adjacency bitsets (self plus
/// detectors one edge away) used by the fast path's component grouping.
/// Rows and bits range over detectors only (the virtual boundary node
/// never fires). Adjacency is deliberately tight: a wider radius makes
/// dense syndromes percolate into one oversized component, while splits
/// that separate interacting defects are repaired by reach-overlap
/// coarsening.
fn build_near(g: &CompiledGraph) -> (Vec<u64>, usize) {
    let nd = g.num_detectors();
    let words = nd.div_ceil(64).max(1);
    let boundary = nd as u32;
    let mut one = vec![0u64; nd * words];
    for d in 0..nd {
        let row = &mut one[d * words..(d + 1) * words];
        row[d >> 6] |= 1 << (d & 63);
        for &ei in g.incident(d as u32) {
            for n in g.endpoints(ei) {
                if n != boundary {
                    row[(n >> 6) as usize] |= 1 << (n & 63);
                }
            }
        }
    }
    (one, words)
}

impl Decoder for UnionFindDecoder {
    type Scratch = UfScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut UfScratch) -> u64 {
        self.decode_into(defects, scratch).observables
    }

    fn predict_batch_into(
        &self,
        syndromes: &SyndromeBatch,
        out: &mut Vec<u64>,
        scratch: &mut UfScratch,
    ) {
        out.clear();
        // Word-skipping extraction straight into the scratch-resident buffer;
        // the epoch-tagged scratch makes the per-shot reset O(touched), so
        // the all-zero rows that dominate below threshold cost almost
        // nothing.
        let mut defects = std::mem::take(&mut scratch.defects_buf);
        for s in 0..syndromes.num_shots() {
            syndromes.fired_into(s, &mut defects);
            out.push(self.decode_into(&defects, scratch).observables);
        }
        scratch.defects_buf = defects;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    /// Chain graph: B - 0 - 1 - 2 - B with uniform probability, observable on
    /// the left boundary edge (like a distance-4 repetition code slice).
    fn chain_graph(p: f64) -> DecodingGraph {
        let dem = DetectorErrorModel {
            num_detectors: 3,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: p,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: p,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![1, 2],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![2],
                    observables: 0,
                },
            ],
        };
        DecodingGraph::from_dem(&dem).unwrap()
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[]);
        assert!(out.converged);
        assert_eq!(out.observables, 0);
    }

    #[test]
    fn single_defect_matches_nearest_boundary() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        // Defect at node 0: nearest boundary is the left (observable) edge.
        assert_eq!(d.predict(&[0]), 1);
        // Defect at node 2: right boundary, no observable flip.
        assert_eq!(d.predict(&[2]), 0);
    }

    #[test]
    fn adjacent_pair_matches_internally() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "pair should match via the {{0,1}} edge");
    }

    #[test]
    fn all_defects_resolve() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1, 2]);
        assert!(out.converged);
        // 0-1 pair internal, 2 to right boundary: no observable flip expected
        // (or 1-2 pair and 0 to left: one flip). Either is a valid matching of
        // equal weight; just require convergence and a consistent parity.
        assert!(out.observables <= 1);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Node 0 has a low-probability boundary edge (heavy) and a
        // high-probability edge to node 1 which has a high-probability
        // boundary edge. With defect {0}, the correction should route through
        // node 1's side... but that flips detector 1, so matching must still
        // terminate at a boundary. The cheap path 0-1-B beats the heavy 0-B
        // when peeled; both resolve, and the observable rides on 0-B only.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 1e-6,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[0]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "should avoid the unlikely direct edge");
    }

    #[test]
    fn isolated_defect_reports_nonconvergence() {
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 0,
            errors: vec![DemError {
                probability: 0.1,
                detectors: vec![0],
                observables: 0,
            }],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[1]);
        assert!(!out.converged);
    }

    #[test]
    fn correction_edges_match_outcome_and_syndrome() {
        // The recorded correction must (a) XOR to the predicted observable
        // mask and (b) have the decoded syndrome as its boundary (every
        // defect toggled odd, every other detector even) — the invariant
        // the windowed decoder's commit-boundary split relies on.
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let mut scratch = UfScratch::default();
        for syndrome in [vec![0u32], vec![0, 1], vec![0, 1, 2], vec![2], vec![]] {
            let out = d.decode_into(&syndrome, &mut scratch);
            assert!(out.converged);
            let mut obs = 0u64;
            let mut parity = vec![false; d.graph().num_detectors()];
            for &ei in scratch.correction() {
                let e = &d.graph().edges()[ei as usize];
                obs ^= e.observables;
                parity[e.u as usize] = !parity[e.u as usize];
                if let Some(v) = e.v {
                    parity[v as usize] = !parity[v as usize];
                }
            }
            assert_eq!(obs, out.observables, "syndrome {syndrome:?}");
            for (det, &p) in parity.iter().enumerate() {
                assert_eq!(
                    p,
                    syndrome.contains(&(det as u32)),
                    "syndrome {syndrome:?}, detector {det}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        // Decoding different syndromes through one scratch gives the same
        // answers as fresh scratches every time.
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let syndromes: Vec<Vec<u32>> = vec![
            vec![0],
            vec![],
            vec![0, 1],
            vec![2],
            vec![0, 1, 2],
            vec![1],
            vec![0, 2],
        ];
        let mut scratch = UfScratch::default();
        for s in &syndromes {
            let reused = d.decode_into(s, &mut scratch);
            let fresh = d.decode(s);
            assert_eq!(reused, fresh, "syndrome {s:?}");
        }
    }

    #[test]
    fn long_chain_far_defects() {
        // Two far-apart defects on a long chain must both resolve (via
        // boundaries or an internal path) with frontier-driven growth.
        let n = 40usize;
        let mut errors = vec![DemError {
            probability: 0.01,
            detectors: vec![0],
            observables: 1,
        }];
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: 0.01,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![n as u32 - 1],
            observables: 0,
        });
        let g = DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
        .unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[1, 38]);
        assert!(out.converged);
        assert_eq!(out.observables, 1, "each defect exits its nearest boundary");
    }

    #[test]
    fn mixed_weight_growth_matches_unjumped_reference() {
        // A graph with strongly mixed weights exercises the round-jump path
        // (heavy edges take many quanta). The outcome and correction must
        // match a decode on the same graph compiled with the same weights
        // but driven only through fresh scratches (identical decisions, so
        // any divergence would show up as a different correction).
        let dem = DetectorErrorModel {
            num_detectors: 4,
            num_observables: 2,
            errors: vec![
                DemError {
                    probability: 1e-9,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.2,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 1e-4,
                    detectors: vec![1, 2],
                    observables: 2,
                },
                DemError {
                    probability: 0.3,
                    detectors: vec![2, 3],
                    observables: 0,
                },
                DemError {
                    probability: 0.05,
                    detectors: vec![3],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let mut scratch = UfScratch::default();
        for syndrome in [
            vec![0u32],
            vec![3],
            vec![0, 3],
            vec![1, 2],
            vec![0, 1, 2, 3],
            vec![2],
        ] {
            let reused = d.decode_into(&syndrome, &mut scratch);
            let reused_corr = scratch.correction().to_vec();
            let mut fresh_scratch = UfScratch::default();
            let fresh = d.decode_into(&syndrome, &mut fresh_scratch);
            assert_eq!(reused, fresh, "syndrome {syndrome:?}");
            assert_eq!(
                reused_corr,
                fresh_scratch.correction(),
                "syndrome {syndrome:?}"
            );
            assert!(reused.converged);
        }
    }

    #[test]
    fn memo_on_off_bit_identical_on_random_syndromes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // A denser graphlike DEM than the chain: a 4×4 detector grid with
        // horizontal and vertical edges, boundary edges on the top and
        // bottom rims, varied probabilities (hence varied quantized
        // weights), and scattered observables.
        fn grid_graph() -> DecodingGraph {
            let idx = |r: usize, c: usize| (r * 4 + c) as u32;
            let mut errors = Vec::new();
            for r in 0..4 {
                for c in 0..4 {
                    let p = 0.01 + 0.02 * ((r * 4 + c) % 5) as f64;
                    if c + 1 < 4 {
                        errors.push(DemError {
                            probability: p,
                            detectors: vec![idx(r, c), idx(r, c + 1)],
                            observables: ((r + c) % 4) as u64,
                        });
                    }
                    if r + 1 < 4 {
                        errors.push(DemError {
                            probability: 0.3 - p,
                            detectors: vec![idx(r, c), idx(r + 1, c)],
                            observables: ((r * c) % 3) as u64,
                        });
                    }
                    if r == 0 || r == 3 {
                        errors.push(DemError {
                            probability: p,
                            detectors: vec![idx(r, c)],
                            observables: (c % 2) as u64,
                        });
                    }
                }
            }
            DecodingGraph::from_dem(&DetectorErrorModel {
                num_detectors: 16,
                num_observables: 2,
                errors,
            })
            .unwrap()
        }

        for graph in [chain_graph(0.02), grid_graph()] {
            let nd = graph.num_detectors() as u32;
            let on = UnionFindDecoder::new(graph);
            let off = on.clone().with_memo(false);
            let mut s_on = UfScratch::default();
            let mut s_off = UfScratch::default();
            let mut rng = StdRng::seed_from_u64(41);
            for trial in 0..400 {
                let syndrome: Vec<u32> = (0..nd).filter(|_| rng.random_bool(0.3)).collect();
                let fast = on.decode_into(&syndrome, &mut s_on);
                let full = off.decode_into(&syndrome, &mut s_off);
                assert_eq!(fast, full, "trial {trial}, syndrome {syndrome:?}");
                // The fast path may order correction edges differently
                // (piece by piece), but the correction *set* must match —
                // every consumer is set-based (observable XOR, windowed
                // commit-boundary projection).
                let mut corr_fast = s_on.correction().to_vec();
                let mut corr_full = s_off.correction().to_vec();
                corr_fast.sort_unstable();
                corr_full.sort_unstable();
                assert_eq!(corr_fast, corr_full, "trial {trial}, syndrome {syndrome:?}");
            }
        }
    }

    #[test]
    fn new_falls_back_to_uniform_weights_on_degenerate_graphs() {
        // All p = 0.5: every weight ~0, so quantization would divide by ~0.
        // `new` must fall back to uniform weights and still decode.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 0.5,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.5,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.5,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g.clone());
        assert!(d.compiled().is_uniform());
        let out = d.decode(&[0]);
        assert!(out.converged);
        // And the typed-error constructor surfaces the degeneracy instead.
        assert_eq!(
            UnionFindDecoder::try_new(g).unwrap_err(),
            GraphError::DegenerateWeights { edge: None }
        );
    }

    #[test]
    fn try_new_rejects_non_finite_weights() {
        let dem = DetectorErrorModel {
            num_detectors: 1,
            num_observables: 0,
            errors: vec![
                DemError {
                    probability: 0.01,
                    detectors: vec![0],
                    observables: 0,
                },
                DemError {
                    probability: f64::NAN,
                    detectors: vec![0],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        assert_eq!(
            UnionFindDecoder::try_new(g.clone()).unwrap_err(),
            GraphError::DegenerateWeights { edge: Some(1) }
        );
        // The lenient constructor still produces a working decoder.
        let d = UnionFindDecoder::new(g);
        assert!(d.compiled().is_uniform());
        assert!(d.decode(&[0]).converged);
    }

    #[test]
    fn healthy_graphs_keep_weighted_growth_in_new() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        assert!(!d.compiled().is_uniform());
    }

    #[test]
    fn batch_predict_matches_per_shot() {
        use raa_stabsim::SyndromeBatch;
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let syndromes: Vec<Vec<u32>> = vec![
            vec![0],
            vec![],
            vec![0, 1],
            vec![2],
            vec![0, 1, 2],
            vec![1],
            vec![0, 2],
            vec![],
        ];
        let mut batch = SyndromeBatch::default();
        batch.reset(syndromes.len(), d.graph().num_detectors());
        for (s, syn) in syndromes.iter().enumerate() {
            for &det in syn {
                batch.set_detector(s, det as usize);
            }
        }
        let mut scratch = UfScratch::default();
        let mut out = Vec::new();
        d.predict_batch_into(&batch, &mut out, &mut scratch);
        assert_eq!(out.len(), syndromes.len());
        let mut per_shot_scratch = UfScratch::default();
        for (s, syn) in syndromes.iter().enumerate() {
            assert_eq!(
                out[s],
                d.predict_into(syn, &mut per_shot_scratch),
                "shot {s}"
            );
        }
    }
}
