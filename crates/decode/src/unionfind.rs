//! Weighted union–find decoder with peeling.
//!
//! The union–find decoder (Delfosse–Nickerson style, with weighted growth)
//! grows clusters around syndrome defects until every cluster has even parity
//! or touches the boundary, then peels a spanning forest of the grown region
//! to produce a correction. It runs in near-linear time and is the workhorse
//! decoder for the paper's transversal-circuit simulations; the paper notes
//! (§III.4, Fig. 13a) that cheaper-but-less-accurate decoders simply show up
//! as a larger decoding factor α.
//!
//! Growth is frontier-driven: each odd cluster carries the list of edges on
//! its boundary and only those edges are visited per growth round, so the
//! cost of a decode scales with the grown region rather than with the whole
//! graph. All working state lives in a reusable [`UfScratch`], making the
//! steady-state decode loop allocation-free.

use crate::graph::DecodingGraph;
use crate::Decoder;
use std::collections::VecDeque;

/// Outcome of a union–find decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnionFindOutcome {
    /// Predicted observable mask.
    pub observables: u64,
    /// Whether peeling fully resolved every defect (it should whenever the
    /// graph connects all detectors to the boundary).
    pub converged: bool,
}

/// Maximum quantized weight; growth iterations scale with this.
const WEIGHT_QUANTA: f64 = 32.0;

const NONE: u32 = u32::MAX;

/// Reusable working state for [`UnionFindDecoder`].
///
/// Construct with `Default::default()`; the first decode sizes every buffer
/// to the decoder's graph and later decodes reuse the capacity. One scratch
/// serves one decoder at a time (sizes adapt automatically if reused across
/// decoders of different shapes).
#[derive(Debug, Clone, Default)]
pub struct UfScratch {
    // Union-find forest over detector nodes + virtual boundary node.
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Root-indexed: parity of defect count in the cluster.
    parity: Vec<bool>,
    /// Root-indexed: whether the cluster touches the boundary node.
    boundary: Vec<bool>,
    /// Root-indexed: frontier edge list of the cluster.
    frontier: Vec<Vec<u32>>,
    /// Per-edge accumulated growth.
    growth: Vec<u32>,
    /// Per-edge solid flag.
    solid: Vec<bool>,
    /// Solidified edge indices, in solidification order (drives peeling).
    solid_edges: Vec<u32>,
    /// Per-node: whether the node's incident edges were already added to a
    /// cluster frontier.
    seeded: Vec<bool>,
    /// Roots of clusters that may still be active.
    active: Vec<u32>,
    /// Scratch for the next round's active list.
    next_active: Vec<u32>,
    /// Edges that reached their weight this round.
    to_merge: Vec<u32>,
    // Peeling state.
    defect: Vec<bool>,
    visited: Vec<bool>,
    /// BFS visit order of (node, incoming edge).
    order: Vec<(u32, u32)>,
    queue: VecDeque<u32>,
    /// Linked-list adjacency over solid edges: per-node head into `adj_*`.
    adj_head: Vec<u32>,
    adj_next: Vec<u32>,
    adj_edge: Vec<u32>,
    /// Edge indices of the last decode's correction, in peel order.
    correction: Vec<u32>,
}

impl UfScratch {
    /// Resets and (re)sizes the scratch for a graph with `num_nodes` nodes
    /// (detectors + boundary) and `num_edges` edges.
    fn reset(&mut self, num_nodes: usize, num_edges: usize) {
        self.parent.clear();
        self.parent.extend(0..num_nodes as u32);
        self.rank.clear();
        self.rank.resize(num_nodes, 0);
        self.parity.clear();
        self.parity.resize(num_nodes, false);
        self.boundary.clear();
        self.boundary.resize(num_nodes, false);
        if self.frontier.len() < num_nodes {
            self.frontier.resize_with(num_nodes, Vec::new);
        }
        for f in &mut self.frontier[..num_nodes] {
            f.clear();
        }
        self.seeded.clear();
        self.seeded.resize(num_nodes, false);
        self.growth.clear();
        self.growth.resize(num_edges, 0);
        self.solid.clear();
        self.solid.resize(num_edges, false);
        self.solid_edges.clear();
        self.active.clear();
        self.next_active.clear();
        self.to_merge.clear();
        self.defect.clear();
        self.defect.resize(num_nodes, false);
        self.visited.clear();
        self.visited.resize(num_nodes, false);
        self.order.clear();
        self.queue.clear();
        self.adj_head.clear();
        self.adj_head.resize(num_nodes, NONE);
        self.adj_next.clear();
        self.adj_edge.clear();
        self.correction.clear();
    }

    /// The correction of the last decode through this scratch: the graph
    /// edge indices peeling selected, in peel order. The predicted
    /// observable mask is the XOR of these edges' observable masks; the
    /// windowed decoder uses the edges themselves to split a correction at
    /// the commit boundary (syndrome projection).
    pub fn correction(&self) -> &[u32] {
        &self.correction
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Unions the clusters of `a` and `b`, merging parity, boundary flags and
    /// frontier lists (small list drains into large); returns the new root.
    fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        if self.rank[big as usize] == self.rank[small as usize] {
            self.rank[big as usize] += 1;
        }
        let parity = self.parity[ra as usize] ^ self.parity[rb as usize];
        let boundary = self.boundary[ra as usize] | self.boundary[rb as usize];
        self.parity[big as usize] = parity;
        self.boundary[big as usize] = boundary;
        // Merge frontier lists small-into-big without allocating: swap the
        // shorter one out, drain it into the longer.
        let (bi, si) = (big as usize, small as usize);
        if self.frontier[bi].len() < self.frontier[si].len() {
            self.frontier.swap(bi, si);
        }
        let mut donor = std::mem::take(&mut self.frontier[si]);
        self.frontier[bi].append(&mut donor);
        self.frontier[si] = donor; // restore the (now empty) allocation
        big
    }

    fn push_adj(&mut self, node: u32, edge: u32) {
        let slot = self.adj_next.len() as u32;
        self.adj_next.push(self.adj_head[node as usize]);
        self.adj_edge.push(edge);
        self.adj_head[node as usize] = slot;
    }
}

/// Weighted union–find decoder over a [`DecodingGraph`].
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder};
///
/// // Distance-3 repetition code, single round: 2 detectors.
/// let mut c = Circuit::new();
/// c.r(&[0, 1, 2, 3, 4]);
/// c.x_error(&[0, 2, 4], 0.01);
/// c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
/// c.mr(&[1, 3]);
/// c.detector(&[MeasRecord::back(2)]);
/// c.detector(&[MeasRecord::back(1)]);
/// c.m(&[0, 2, 4]);
/// c.observable_include(0, &[MeasRecord::back(3)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let graph = DecodingGraph::from_dem(&dem).unwrap();
/// let decoder = UnionFindDecoder::new(graph);
/// // A single fired detector at the edge: the correction crosses the boundary.
/// let prediction = decoder.predict(&[0]);
/// assert_eq!(prediction, 1); // flips the logical observable on qubit 0
/// ```
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: DecodingGraph,
    /// Integer-quantized edge weights (≥ 1).
    int_weights: Vec<u32>,
}

impl UnionFindDecoder {
    /// Builds a decoder owning `graph`, quantizing edge weights to at most
    /// 32 growth quanta (minimum 1) for the growth stage.
    pub fn new(graph: DecodingGraph) -> Self {
        let max_w = graph
            .edges()
            .iter()
            .map(|e| e.weight)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let int_weights = graph
            .edges()
            .iter()
            .map(|e| ((e.weight / max_w * WEIGHT_QUANTA).round() as u32).max(1))
            .collect();
        Self { graph, int_weights }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Decodes a syndrome with a fresh scratch; prefer
    /// [`UnionFindDecoder::decode_into`] in loops.
    pub fn decode(&self, defects: &[u32]) -> UnionFindOutcome {
        self.decode_into(defects, &mut UfScratch::default())
    }

    /// Decodes a syndrome (the list of fired detectors), reporting
    /// convergence. All working state lives in `scratch`; steady state
    /// performs no heap allocation.
    pub fn decode_into(&self, defects: &[u32], scratch: &mut UfScratch) -> UnionFindOutcome {
        if defects.is_empty() {
            scratch.correction.clear();
            return UnionFindOutcome {
                observables: 0,
                converged: true,
            };
        }
        let nd = self.graph.num_detectors();
        let boundary_node = nd as u32;
        let num_nodes = nd + 1;
        let edges = self.graph.edges();
        scratch.reset(num_nodes, edges.len());
        scratch.boundary[nd] = true;

        // Seed odd-parity singleton clusters at the defects. Each defect's
        // frontier starts as its incident edges.
        for &d in defects {
            let r = scratch.find(d) as usize;
            scratch.parity[r] = !scratch.parity[r];
            if !scratch.seeded[d as usize] {
                scratch.seeded[d as usize] = true;
                scratch.frontier[d as usize].extend_from_slice(self.graph.incident(d));
            }
        }
        for &d in defects {
            let r = scratch.find(d);
            if scratch.parity[r as usize] {
                scratch.active.push(r);
            }
        }
        scratch.active.sort_unstable();
        scratch.active.dedup();

        // Growth: per round, every edge on an odd non-boundary cluster's
        // frontier grows by one quantum per active endpoint (all growth is
        // applied before any merge, matching simultaneous dense growth);
        // edges reaching their weight solidify and merge their endpoints.
        loop {
            scratch.to_merge.clear();
            let mut grew = false;
            for ai in 0..scratch.active.len() {
                let root = scratch.active[ai];
                // The active list holds valid odd non-boundary roots with
                // non-empty frontiers (enforced by the refresh below, and by
                // construction for the initial list).
                let mut i = 0;
                while i < scratch.frontier[root as usize].len() {
                    let ei = scratch.frontier[root as usize][i];
                    if scratch.solid[ei as usize] {
                        scratch.frontier[root as usize].swap_remove(i);
                        continue;
                    }
                    let e = &edges[ei as usize];
                    let ru = scratch.find(e.u);
                    let rv = scratch.find(e.v.unwrap_or(boundary_node));
                    if ru == rv {
                        scratch.frontier[root as usize].swap_remove(i);
                        continue;
                    }
                    grew = true;
                    scratch.growth[ei as usize] += 1;
                    if scratch.growth[ei as usize] >= self.int_weights[ei as usize] {
                        scratch.to_merge.push(ei);
                    }
                    i += 1;
                }
            }
            if !grew {
                break;
            }
            for ti in 0..scratch.to_merge.len() {
                let ei = scratch.to_merge[ti];
                if scratch.solid[ei as usize] {
                    continue; // both endpoints pushed it this round
                }
                let e = &edges[ei as usize];
                let u = e.u;
                let v = e.v.unwrap_or(boundary_node);
                if scratch.find(u) == scratch.find(v) {
                    continue; // became internal via an earlier merge
                }
                scratch.solid[ei as usize] = true;
                scratch.solid_edges.push(ei);
                // A node joining its first cluster contributes its incident
                // edges to the merged frontier (the boundary node has none).
                for node in [u, v] {
                    if node != boundary_node && !scratch.seeded[node as usize] {
                        scratch.seeded[node as usize] = true;
                        let root = scratch.find(node);
                        // `node` may already be inside a cluster only if it
                        // was seeded before, so here it is its own root or a
                        // fresh member of this merge round's cluster.
                        scratch.frontier[root as usize]
                            .extend_from_slice(self.graph.incident(node));
                    }
                }
                scratch.union(u, v);
            }
            // Refresh the active list: re-resolve every candidate root and
            // keep odd, non-boundary clusters that can still grow.
            let mut candidates = std::mem::take(&mut scratch.active);
            for &cand in &candidates {
                let r = scratch.find(cand);
                if scratch.parity[r as usize]
                    && !scratch.boundary[r as usize]
                    && !scratch.frontier[r as usize].is_empty()
                {
                    scratch.next_active.push(r);
                }
            }
            candidates.clear();
            scratch.active = candidates;
            std::mem::swap(&mut scratch.active, &mut scratch.next_active);
            scratch.active.sort_unstable();
            scratch.active.dedup();
            if scratch.active.is_empty() {
                break;
            }
        }

        self.peel(defects, scratch)
    }

    /// Peeling stage: spanning forest over solid edges, leaves first.
    fn peel(&self, defects: &[u32], scratch: &mut UfScratch) -> UnionFindOutcome {
        let nd = self.graph.num_detectors();
        let boundary_node = nd as u32;
        let edges = self.graph.edges();

        // Adjacency restricted to solidified edges.
        for si in 0..scratch.solid_edges.len() {
            let ei = scratch.solid_edges[si];
            let e = &edges[ei as usize];
            scratch.push_adj(e.u, ei);
            scratch.push_adj(e.v.unwrap_or(boundary_node), ei);
        }

        for &d in defects {
            scratch.defect[d as usize] = true;
        }

        let mut observables = 0u64;
        let mut converged = true;

        // Component roots: boundary first so it absorbs parity where possible.
        for root_idx in 0..=defects.len() {
            let root = if root_idx == 0 {
                boundary_node
            } else {
                defects[root_idx - 1]
            };
            if scratch.visited[root as usize] {
                continue;
            }
            // BFS recording (node, incoming edge) in visit order.
            let order_start = scratch.order.len();
            scratch.visited[root as usize] = true;
            scratch.queue.push_back(root);
            scratch.order.push((root, NONE));
            while let Some(v) = scratch.queue.pop_front() {
                let mut slot = scratch.adj_head[v as usize];
                while slot != NONE {
                    let ei = scratch.adj_edge[slot as usize];
                    let e = &edges[ei as usize];
                    let other = if e.u == v {
                        e.v.unwrap_or(boundary_node)
                    } else {
                        e.u
                    };
                    if !scratch.visited[other as usize] {
                        scratch.visited[other as usize] = true;
                        scratch.queue.push_back(other);
                        scratch.order.push((other, ei));
                    }
                    slot = scratch.adj_next[slot as usize];
                }
            }
            // Peel leaves-first (reverse BFS order), toggling the parent's
            // defect and accumulating observable flips on used edges.
            for oi in (order_start..scratch.order.len()).rev() {
                let (v, ei) = scratch.order[oi];
                if ei == NONE {
                    // Root: leftover defect must be absorbed by the boundary.
                    if scratch.defect[v as usize] && v != boundary_node {
                        converged = false;
                    }
                    continue;
                }
                if scratch.defect[v as usize] {
                    scratch.defect[v as usize] = false;
                    let e = &edges[ei as usize];
                    let p = if e.u == v {
                        e.v.unwrap_or(boundary_node)
                    } else {
                        e.u
                    };
                    if p != boundary_node {
                        scratch.defect[p as usize] = !scratch.defect[p as usize];
                    }
                    observables ^= e.observables;
                    scratch.correction.push(ei);
                }
            }
        }
        // Any defect never reached by solid edges: isolated failure.
        if scratch.defect[..nd].iter().any(|&d| d) {
            converged = false;
        }
        UnionFindOutcome {
            observables,
            converged,
        }
    }
}

impl Decoder for UnionFindDecoder {
    type Scratch = UfScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut UfScratch) -> u64 {
        self.decode_into(defects, scratch).observables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    /// Chain graph: B - 0 - 1 - 2 - B with uniform probability, observable on
    /// the left boundary edge (like a distance-4 repetition code slice).
    fn chain_graph(p: f64) -> DecodingGraph {
        let dem = DetectorErrorModel {
            num_detectors: 3,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: p,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: p,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![1, 2],
                    observables: 0,
                },
                DemError {
                    probability: p,
                    detectors: vec![2],
                    observables: 0,
                },
            ],
        };
        DecodingGraph::from_dem(&dem).unwrap()
    }

    #[test]
    fn empty_syndrome_is_trivial() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[]);
        assert!(out.converged);
        assert_eq!(out.observables, 0);
    }

    #[test]
    fn single_defect_matches_nearest_boundary() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        // Defect at node 0: nearest boundary is the left (observable) edge.
        assert_eq!(d.predict(&[0]), 1);
        // Defect at node 2: right boundary, no observable flip.
        assert_eq!(d.predict(&[2]), 0);
    }

    #[test]
    fn adjacent_pair_matches_internally() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "pair should match via the {{0,1}} edge");
    }

    #[test]
    fn all_defects_resolve() {
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let out = d.decode(&[0, 1, 2]);
        assert!(out.converged);
        // 0-1 pair internal, 2 to right boundary: no observable flip expected
        // (or 1-2 pair and 0 to left: one flip). Either is a valid matching of
        // equal weight; just require convergence and a consistent parity.
        assert!(out.observables <= 1);
    }

    #[test]
    fn weighted_growth_prefers_likely_edges() {
        // Node 0 has a low-probability boundary edge (heavy) and a
        // high-probability edge to node 1 which has a high-probability
        // boundary edge. With defect {0}, the correction should route through
        // node 1's side... but that flips detector 1, so matching must still
        // terminate at a boundary. The cheap path 0-1-B beats the heavy 0-B
        // when peeled; both resolve, and the observable rides on 0-B only.
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 1,
            errors: vec![
                DemError {
                    probability: 1e-6,
                    detectors: vec![0],
                    observables: 1,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![0, 1],
                    observables: 0,
                },
                DemError {
                    probability: 0.1,
                    detectors: vec![1],
                    observables: 0,
                },
            ],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[0]);
        assert!(out.converged);
        assert_eq!(out.observables, 0, "should avoid the unlikely direct edge");
    }

    #[test]
    fn isolated_defect_reports_nonconvergence() {
        let dem = DetectorErrorModel {
            num_detectors: 2,
            num_observables: 0,
            errors: vec![DemError {
                probability: 0.1,
                detectors: vec![0],
                observables: 0,
            }],
        };
        let g = DecodingGraph::from_dem(&dem).unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[1]);
        assert!(!out.converged);
    }

    #[test]
    fn correction_edges_match_outcome_and_syndrome() {
        // The recorded correction must (a) XOR to the predicted observable
        // mask and (b) have the decoded syndrome as its boundary (every
        // defect toggled odd, every other detector even) — the invariant
        // the windowed decoder's commit-boundary split relies on.
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let mut scratch = UfScratch::default();
        for syndrome in [vec![0u32], vec![0, 1], vec![0, 1, 2], vec![2], vec![]] {
            let out = d.decode_into(&syndrome, &mut scratch);
            assert!(out.converged);
            let mut obs = 0u64;
            let mut parity = vec![false; d.graph().num_detectors()];
            for &ei in scratch.correction() {
                let e = &d.graph().edges()[ei as usize];
                obs ^= e.observables;
                parity[e.u as usize] = !parity[e.u as usize];
                if let Some(v) = e.v {
                    parity[v as usize] = !parity[v as usize];
                }
            }
            assert_eq!(obs, out.observables, "syndrome {syndrome:?}");
            for (det, &p) in parity.iter().enumerate() {
                assert_eq!(
                    p,
                    syndrome.contains(&(det as u32)),
                    "syndrome {syndrome:?}, detector {det}"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_stable() {
        // Decoding different syndromes through one scratch gives the same
        // answers as fresh scratches every time.
        let d = UnionFindDecoder::new(chain_graph(0.01));
        let syndromes: Vec<Vec<u32>> = vec![
            vec![0],
            vec![],
            vec![0, 1],
            vec![2],
            vec![0, 1, 2],
            vec![1],
            vec![0, 2],
        ];
        let mut scratch = UfScratch::default();
        for s in &syndromes {
            let reused = d.decode_into(s, &mut scratch);
            let fresh = d.decode(s);
            assert_eq!(reused, fresh, "syndrome {s:?}");
        }
    }

    #[test]
    fn long_chain_far_defects() {
        // Two far-apart defects on a long chain must both resolve (via
        // boundaries or an internal path) with frontier-driven growth.
        let n = 40usize;
        let mut errors = vec![DemError {
            probability: 0.01,
            detectors: vec![0],
            observables: 1,
        }];
        for i in 0..n - 1 {
            errors.push(DemError {
                probability: 0.01,
                detectors: vec![i as u32, i as u32 + 1],
                observables: 0,
            });
        }
        errors.push(DemError {
            probability: 0.01,
            detectors: vec![n as u32 - 1],
            observables: 0,
        });
        let g = DecodingGraph::from_dem(&DetectorErrorModel {
            num_detectors: n,
            num_observables: 1,
            errors,
        })
        .unwrap();
        let d = UnionFindDecoder::new(g);
        let out = d.decode(&[1, 38]);
        assert!(out.converged);
        assert_eq!(out.observables, 1, "each defect exits its nearest boundary");
    }
}
