//! Decoding graphs built from detector error models.
//!
//! A decoding graph has one node per detector plus a single virtual boundary
//! node. Every graphlike DEM error becomes an edge: two-detector errors join
//! their detectors, single-detector errors join the detector to the boundary.
//! Edge weights are the usual log-likelihood ratios `ln((1-p)/p)`, and each
//! edge carries the observable mask its underlying error flips.

use raa_stabsim::dem::DetectorErrorModel;
use std::fmt;

/// Error building a decoding graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The DEM contained an error flipping more than two detectors.
    NotGraphlike {
        /// Number of detectors of the offending mechanism.
        num_detectors: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotGraphlike { num_detectors } => write!(
                f,
                "detector error model is not graphlike: mechanism flips {num_detectors} detectors \
                 (decompose it first)"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// One edge of the decoding graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint (a detector index).
    pub u: u32,
    /// Second endpoint, or `None` for the boundary.
    pub v: Option<u32>,
    /// Log-likelihood weight `ln((1-p)/p)`, clamped to be positive.
    pub weight: f64,
    /// Firing probability of the underlying mechanism.
    pub probability: f64,
    /// Observable mask flipped when this edge is in the correction.
    pub observables: u64,
}

/// A matching/union-find decoding graph.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::graph::DecodingGraph;
///
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// c.x_error(&[0], 1e-3);
/// c.m(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let graph = DecodingGraph::from_dem(&dem)?;
/// assert_eq!(graph.num_edges(), 1);
/// # Ok::<(), raa_decode::graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    num_detectors: usize,
    num_observables: usize,
    edges: Vec<Edge>,
    /// Edge indices incident to each detector.
    adjacency: Vec<Vec<u32>>,
    /// Probability-weighted count of mechanisms dropped because they flip no
    /// detector but do flip observables (an irreducible logical error floor).
    undetectable_observable_probability: f64,
}

impl DecodingGraph {
    /// Builds the graph from a graphlike DEM.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotGraphlike`] if a mechanism flips more than two
    /// detectors; call [`DetectorErrorModel::decompose_graphlike`] first, or
    /// use [`DecodingGraph::from_dem_decomposed`].
    pub fn from_dem(dem: &DetectorErrorModel) -> Result<Self, GraphError> {
        let mut graph = Self {
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); dem.num_detectors],
            undetectable_observable_probability: 0.0,
        };
        for e in dem.iter() {
            match e.detectors.len() {
                0 => {
                    if e.observables != 0 {
                        let p = e.probability;
                        let q = &mut graph.undetectable_observable_probability;
                        *q = *q * (1.0 - p) + p * (1.0 - *q);
                    }
                }
                1 => graph.push_edge(e.detectors[0], None, e.probability, e.observables),
                2 => graph.push_edge(
                    e.detectors[0],
                    Some(e.detectors[1]),
                    e.probability,
                    e.observables,
                ),
                n => return Err(GraphError::NotGraphlike { num_detectors: n }),
            }
        }
        Ok(graph)
    }

    /// Builds the graph from any DEM, decomposing hyperedges first.
    ///
    /// Returns the graph and the number of hyperedges that needed arbitrary
    /// (non-matching) decomposition.
    pub fn from_dem_decomposed(dem: &DetectorErrorModel) -> (Self, usize) {
        let (graphlike, arbitrary) = dem.decompose_graphlike();
        let graph =
            Self::from_dem(&graphlike).expect("decompose_graphlike output must be graphlike");
        (graph, arbitrary)
    }

    fn push_edge(&mut self, u: u32, v: Option<u32>, probability: f64, observables: u64) {
        let p = probability.clamp(1e-15, 0.5 - 1e-15);
        let weight = ((1.0 - p) / p).ln();
        let idx = self.edges.len() as u32;
        self.edges.push(Edge {
            u,
            v,
            weight,
            probability,
            observables,
        });
        self.adjacency[u as usize].push(idx);
        if let Some(v) = v {
            self.adjacency[v as usize].push(idx);
        }
    }

    /// Number of detector nodes.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables tracked on edges.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge indices incident to detector `d`.
    pub fn incident(&self, d: u32) -> &[u32] {
        &self.adjacency[d as usize]
    }

    /// Probability that some undetectable mechanism flips an observable;
    /// a floor on the achievable logical error rate.
    pub fn undetectable_observable_probability(&self) -> f64 {
        self.undetectable_observable_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    fn dem(errors: Vec<DemError>, nd: usize) -> DetectorErrorModel {
        DetectorErrorModel {
            num_detectors: nd,
            num_observables: 1,
            errors,
        }
    }

    fn err(dets: &[u32], obs: u64, p: f64) -> DemError {
        DemError {
            probability: p,
            detectors: dets.to_vec(),
            observables: obs,
        }
    }

    #[test]
    fn builds_boundary_and_bulk_edges() {
        let d = dem(
            vec![
                err(&[0], 1, 0.01),
                err(&[0, 1], 0, 0.02),
                err(&[1], 0, 0.01),
            ],
            2,
        );
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.incident(0).len(), 2);
        assert_eq!(g.incident(1).len(), 2);
        let boundary_edges = g.edges().iter().filter(|e| e.v.is_none()).count();
        assert_eq!(boundary_edges, 2);
    }

    #[test]
    fn weights_are_log_likelihood_ratios() {
        let d = dem(vec![err(&[0], 0, 0.01)], 1);
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert!((g.edges()[0].weight - (0.99f64 / 0.01).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_hyperedges() {
        let d = dem(vec![err(&[0, 1, 2], 0, 0.01)], 3);
        let e = DecodingGraph::from_dem(&d).unwrap_err();
        assert_eq!(e, GraphError::NotGraphlike { num_detectors: 3 });
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn decomposed_constructor_accepts_hyperedges() {
        let d = dem(
            vec![
                err(&[0, 1], 0, 0.01),
                err(&[2], 1, 0.01),
                err(&[0, 1, 2], 1, 0.001),
            ],
            3,
        );
        let (g, arbitrary) = DecodingGraph::from_dem_decomposed(&d);
        assert_eq!(arbitrary, 0);
        assert!(g.num_edges() >= 2);
    }

    #[test]
    fn undetectable_observable_floor_tracked() {
        let d = dem(vec![err(&[], 1, 0.03)], 0);
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert!((g.undetectable_observable_probability() - 0.03).abs() < 1e-12);
        assert_eq!(g.num_edges(), 0);
    }
}
