//! Decoding graphs built from detector error models.
//!
//! A decoding graph has one node per detector plus a single virtual boundary
//! node. Every graphlike DEM error becomes an edge: two-detector errors join
//! their detectors, single-detector errors join the detector to the boundary.
//! Edge weights are the usual log-likelihood ratios `ln((1-p)/p)`, and each
//! edge carries the observable mask its underlying error flips.

use raa_stabsim::dem::DetectorErrorModel;
use std::fmt;

/// Error building a decoding graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The DEM contained an error flipping more than two detectors.
    NotGraphlike {
        /// Number of detectors of the offending mechanism.
        num_detectors: usize,
    },
    /// The edge weights cannot be quantized for weighted cluster growth:
    /// either an edge weight is non-finite (a NaN probability survives the
    /// construction clamp), or the maximum weight is indistinguishable from
    /// zero (every probability ≈ 1/2), so dividing by it would flatten or
    /// corrupt the growth order.
    DegenerateWeights {
        /// The first offending edge for a non-finite weight; `None` when
        /// the failure is a ~zero maximum weight.
        edge: Option<u32>,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NotGraphlike { num_detectors } => write!(
                f,
                "detector error model is not graphlike: mechanism flips {num_detectors} detectors \
                 (decompose it first)"
            ),
            GraphError::DegenerateWeights { edge: Some(e) } => write!(
                f,
                "edge {e} has a non-finite weight: cannot quantize weights for cluster growth"
            ),
            GraphError::DegenerateWeights { edge: None } => write!(
                f,
                "maximum edge weight is ~zero (all probabilities ≈ 1/2): cannot quantize weights \
                 for cluster growth"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// One edge of the decoding graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint (a detector index).
    pub u: u32,
    /// Second endpoint, or `None` for the boundary.
    pub v: Option<u32>,
    /// Log-likelihood weight `ln((1-p)/p)`, clamped to be positive.
    pub weight: f64,
    /// Firing probability of the underlying mechanism.
    pub probability: f64,
    /// Observable mask flipped when this edge is in the correction.
    pub observables: u64,
}

/// A matching/union-find decoding graph.
///
/// # Example
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::graph::DecodingGraph;
///
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// c.x_error(&[0], 1e-3);
/// c.m(&[0]);
/// c.detector(&[MeasRecord::back(1)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let graph = DecodingGraph::from_dem(&dem)?;
/// assert_eq!(graph.num_edges(), 1);
/// # Ok::<(), raa_decode::graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    num_detectors: usize,
    num_observables: usize,
    edges: Vec<Edge>,
    /// Edge indices incident to each detector.
    adjacency: Vec<Vec<u32>>,
    /// Probability-weighted count of mechanisms dropped because they flip no
    /// detector but do flip observables (an irreducible logical error floor).
    undetectable_observable_probability: f64,
}

impl DecodingGraph {
    /// Builds the graph from a graphlike DEM.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotGraphlike`] if a mechanism flips more than two
    /// detectors; call [`DetectorErrorModel::decompose_graphlike`] first, or
    /// use [`DecodingGraph::from_dem_decomposed`].
    pub fn from_dem(dem: &DetectorErrorModel) -> Result<Self, GraphError> {
        let mut graph = Self {
            num_detectors: dem.num_detectors,
            num_observables: dem.num_observables,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); dem.num_detectors],
            undetectable_observable_probability: 0.0,
        };
        for e in dem.iter() {
            match e.detectors.len() {
                0 => {
                    if e.observables != 0 {
                        let p = e.probability;
                        let q = &mut graph.undetectable_observable_probability;
                        *q = *q * (1.0 - p) + p * (1.0 - *q);
                    }
                }
                1 => graph.push_edge(e.detectors[0], None, e.probability, e.observables),
                2 => graph.push_edge(
                    e.detectors[0],
                    Some(e.detectors[1]),
                    e.probability,
                    e.observables,
                ),
                n => return Err(GraphError::NotGraphlike { num_detectors: n }),
            }
        }
        Ok(graph)
    }

    /// Builds the graph from any DEM, decomposing hyperedges first.
    ///
    /// Returns the graph and the number of hyperedges that needed arbitrary
    /// (non-matching) decomposition.
    pub fn from_dem_decomposed(dem: &DetectorErrorModel) -> (Self, usize) {
        let (graphlike, arbitrary) = dem.decompose_graphlike();
        let graph =
            Self::from_dem(&graphlike).expect("decompose_graphlike output must be graphlike");
        (graph, arbitrary)
    }

    fn push_edge(&mut self, u: u32, v: Option<u32>, probability: f64, observables: u64) {
        let p = probability.clamp(1e-15, 0.5 - 1e-15);
        let weight = ((1.0 - p) / p).ln();
        let idx = self.edges.len() as u32;
        self.edges.push(Edge {
            u,
            v,
            weight,
            probability,
            observables,
        });
        self.adjacency[u as usize].push(idx);
        if let Some(v) = v {
            self.adjacency[v as usize].push(idx);
        }
    }

    /// Number of detector nodes.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables tracked on edges.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge indices incident to detector `d`.
    pub fn incident(&self, d: u32) -> &[u32] {
        &self.adjacency[d as usize]
    }

    /// Probability that some undetectable mechanism flips an observable;
    /// a floor on the achievable logical error rate.
    pub fn undetectable_observable_probability(&self) -> f64 {
        self.undetectable_observable_probability
    }
}

/// Growth resolution for quantized union-find weights: the heaviest edge
/// costs this many unit growth steps.
pub(crate) const WEIGHT_QUANTA: f64 = 32.0;

/// A decoding graph compiled once into flat arenas for the decode hot path.
///
/// [`DecodingGraph`] keeps one `Vec` of incident edges per detector, which is
/// convenient to build but scatters the per-shot adjacency walk across as
/// many heap allocations as there are detectors. `CompiledGraph` repacks the
/// same structure into CSR form — one offsets array plus one flat edge-index
/// arena — along with struct-of-arrays edge endpoints, weights already
/// quantized to [`WEIGHT_QUANTA`] units, and the per-edge observable masks.
/// It is built once per `(DEM, window)` and shared read-only by every decode
/// worker; nothing in it changes per shot.
///
/// The virtual boundary is encoded as node index `num_detectors` so endpoint
/// comparisons stay branch-free in the growth loop.
#[derive(Debug, Clone)]
pub struct CompiledGraph {
    num_detectors: usize,
    /// CSR offsets: edges incident to detector `d` live at
    /// `adj_edges[adj_off[d]..adj_off[d + 1]]`.
    adj_off: Vec<u32>,
    adj_edges: Vec<u32>,
    /// Edge endpoints; the boundary is encoded as `num_detectors`.
    endpoints: Vec<[u32; 2]>,
    /// Edge weights in integer growth quanta (always ≥ 1).
    weights: Vec<u32>,
    /// Observable mask flipped when the edge joins a correction.
    observables: Vec<u64>,
    /// True when built by [`CompiledGraph::compile_uniform`].
    uniform: bool,
}

impl CompiledGraph {
    /// Compiles `graph` with log-likelihood weights quantized to
    /// [`WEIGHT_QUANTA`] integer growth units.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DegenerateWeights`] when a weight is non-finite
    /// or the maximum weight is ~zero (all probabilities ≈ 1/2), because the
    /// quantization divides by the maximum weight. Callers that can tolerate
    /// losing the weighting should fall back to
    /// [`CompiledGraph::compile_uniform`].
    pub fn compile(graph: &DecodingGraph) -> Result<Self, GraphError> {
        let mut max_w = 0.0f64;
        for (i, e) in graph.edges().iter().enumerate() {
            if !e.weight.is_finite() {
                return Err(GraphError::DegenerateWeights {
                    edge: Some(i as u32),
                });
            }
            max_w = max_w.max(e.weight);
        }
        if !graph.edges().is_empty() && max_w < 1e-9 {
            return Err(GraphError::DegenerateWeights { edge: None });
        }
        let weights = graph
            .edges()
            .iter()
            .map(|e| ((e.weight / max_w * WEIGHT_QUANTA).round() as u32).max(1))
            .collect();
        Ok(Self::assemble(graph, weights, false))
    }

    /// Compiles `graph` with every edge given unit weight, ignoring the
    /// probabilities. This is the degenerate-weight fallback: growth order
    /// becomes pure hop distance, which matches what the quantizer produces
    /// anyway when all weights collapse to the same quantum.
    pub fn compile_uniform(graph: &DecodingGraph) -> Self {
        Self::assemble(graph, vec![1; graph.num_edges()], true)
    }

    /// Compiles `graph` with caller-supplied quantized weights.
    ///
    /// This is the window-template entry point: a template subgraph must
    /// carry exactly the quanta its edges were assigned when the *full*
    /// circuit graph was compiled (quantization divides by the global
    /// maximum weight, which a subgraph cannot recompute locally), so the
    /// windowed decoder copies them over edge by edge. `weights[i]` is the
    /// quantum count for `graph.edges()[i]` and must be ≥ 1; `uniform`
    /// mirrors the source graph's [`CompiledGraph::is_uniform`] flag.
    pub(crate) fn compile_with_weights(
        graph: &DecodingGraph,
        weights: Vec<u32>,
        uniform: bool,
    ) -> Self {
        debug_assert_eq!(weights.len(), graph.num_edges());
        debug_assert!(weights.iter().all(|&w| w >= 1));
        Self::assemble(graph, weights, uniform)
    }

    fn assemble(graph: &DecodingGraph, weights: Vec<u32>, uniform: bool) -> Self {
        let nd = graph.num_detectors();
        let boundary = nd as u32;
        let mut adj_off = Vec::with_capacity(nd + 1);
        let mut adj_edges = Vec::new();
        adj_off.push(0);
        for d in 0..nd {
            adj_edges.extend_from_slice(graph.incident(d as u32));
            adj_off.push(adj_edges.len() as u32);
        }
        let endpoints = graph
            .edges()
            .iter()
            .map(|e| [e.u, e.v.unwrap_or(boundary)])
            .collect();
        let observables = graph.edges().iter().map(|e| e.observables).collect();
        Self {
            num_detectors: nd,
            adj_off,
            adj_edges,
            endpoints,
            weights,
            observables,
            uniform,
        }
    }

    /// Number of detector nodes (the boundary is encoded as this index).
    #[inline]
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Edge indices incident to detector `d`.
    #[inline]
    pub fn incident(&self, d: u32) -> &[u32] {
        let d = d as usize;
        &self.adj_edges[self.adj_off[d] as usize..self.adj_off[d + 1] as usize]
    }

    /// Both endpoints of edge `e`; the boundary is `num_detectors`.
    #[inline]
    pub fn endpoints(&self, e: u32) -> [u32; 2] {
        self.endpoints[e as usize]
    }

    /// Quantized integer weight of edge `e` (growth units, ≥ 1).
    #[inline]
    pub fn weight(&self, e: u32) -> u32 {
        self.weights[e as usize]
    }

    /// Observable mask of edge `e`.
    #[inline]
    pub fn observables(&self, e: u32) -> u64 {
        self.observables[e as usize]
    }

    /// Whether this graph was compiled with the uniform-weight fallback.
    #[inline]
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_stabsim::dem::{DemError, DetectorErrorModel};

    fn dem(errors: Vec<DemError>, nd: usize) -> DetectorErrorModel {
        DetectorErrorModel {
            num_detectors: nd,
            num_observables: 1,
            errors,
        }
    }

    fn err(dets: &[u32], obs: u64, p: f64) -> DemError {
        DemError {
            probability: p,
            detectors: dets.to_vec(),
            observables: obs,
        }
    }

    #[test]
    fn builds_boundary_and_bulk_edges() {
        let d = dem(
            vec![
                err(&[0], 1, 0.01),
                err(&[0, 1], 0, 0.02),
                err(&[1], 0, 0.01),
            ],
            2,
        );
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.incident(0).len(), 2);
        assert_eq!(g.incident(1).len(), 2);
        let boundary_edges = g.edges().iter().filter(|e| e.v.is_none()).count();
        assert_eq!(boundary_edges, 2);
    }

    #[test]
    fn weights_are_log_likelihood_ratios() {
        let d = dem(vec![err(&[0], 0, 0.01)], 1);
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert!((g.edges()[0].weight - (0.99f64 / 0.01).ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_hyperedges() {
        let d = dem(vec![err(&[0, 1, 2], 0, 0.01)], 3);
        let e = DecodingGraph::from_dem(&d).unwrap_err();
        assert_eq!(e, GraphError::NotGraphlike { num_detectors: 3 });
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn decomposed_constructor_accepts_hyperedges() {
        let d = dem(
            vec![
                err(&[0, 1], 0, 0.01),
                err(&[2], 1, 0.01),
                err(&[0, 1, 2], 1, 0.001),
            ],
            3,
        );
        let (g, arbitrary) = DecodingGraph::from_dem_decomposed(&d);
        assert_eq!(arbitrary, 0);
        assert!(g.num_edges() >= 2);
    }

    #[test]
    fn undetectable_observable_floor_tracked() {
        let d = dem(vec![err(&[], 1, 0.03)], 0);
        let g = DecodingGraph::from_dem(&d).unwrap();
        assert!((g.undetectable_observable_probability() - 0.03).abs() < 1e-12);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn compiled_graph_mirrors_adjacency_and_quantizes_weights() {
        let d = dem(
            vec![err(&[0], 1, 0.01), err(&[0, 1], 0, 0.1), err(&[1], 0, 0.01)],
            2,
        );
        let g = DecodingGraph::from_dem(&d).unwrap();
        let c = CompiledGraph::compile(&g).unwrap();
        assert_eq!(c.num_detectors(), 2);
        assert_eq!(c.num_edges(), 3);
        assert!(!c.is_uniform());
        for det in 0..2u32 {
            assert_eq!(c.incident(det), g.incident(det));
        }
        // Boundary encoded as num_detectors.
        assert_eq!(c.endpoints(0), [0, 2]);
        assert_eq!(c.endpoints(1), [0, 1]);
        assert_eq!(c.observables(0), 1);
        // Heaviest edge gets WEIGHT_QUANTA units; the less likely edges are
        // heavier than the p=0.1 bulk edge.
        assert_eq!(c.weight(0), WEIGHT_QUANTA as u32);
        assert!(c.weight(1) < c.weight(0));
        for e in 0..3 {
            assert!(c.weight(e) >= 1);
        }
    }

    #[test]
    fn compile_rejects_all_half_probability_weights() {
        // p = 0.5 clamps to weight ~0 for every edge: max_w ~ 0.
        let d = dem(vec![err(&[0], 0, 0.5), err(&[0, 1], 0, 0.5)], 2);
        let g = DecodingGraph::from_dem(&d).unwrap();
        let e = CompiledGraph::compile(&g).unwrap_err();
        assert_eq!(e, GraphError::DegenerateWeights { edge: None });
        assert!(e.to_string().contains("maximum edge weight"));
    }

    #[test]
    fn compile_rejects_non_finite_weights() {
        // A NaN probability survives the clamp as NaN and yields a NaN weight.
        let d = dem(vec![err(&[0], 0, 0.01), err(&[0, 1], 0, f64::NAN)], 2);
        let g = DecodingGraph::from_dem(&d).unwrap();
        let e = CompiledGraph::compile(&g).unwrap_err();
        assert_eq!(e, GraphError::DegenerateWeights { edge: Some(1) });
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn uniform_fallback_compiles_degenerate_graphs() {
        let d = dem(vec![err(&[0], 0, 0.5), err(&[0, 1], 0, 0.5)], 2);
        let g = DecodingGraph::from_dem(&d).unwrap();
        let c = CompiledGraph::compile_uniform(&g);
        assert!(c.is_uniform());
        assert_eq!(c.num_edges(), 2);
        assert!((0..2).all(|e| c.weight(e) == 1));
    }

    #[test]
    fn empty_graph_compiles() {
        let d = dem(vec![], 0);
        let g = DecodingGraph::from_dem(&d).unwrap();
        let c = CompiledGraph::compile(&g).unwrap();
        assert_eq!(c.num_edges(), 0);
        assert_eq!(c.num_detectors(), 0);
    }
}
