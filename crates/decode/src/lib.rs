//! QEC decoders for the transversal-architecture reproduction.
//!
//! Decoding turns sampled detector data into predicted logical-observable
//! flips. This crate provides, built from scratch:
//!
//! * [`graph`] — decoding graphs from detector error models (boundary edges,
//!   log-likelihood weights, per-edge observable masks);
//! * [`unionfind`] — a weighted union–find decoder with peeling, the fast
//!   workhorse for threshold-scale Monte Carlo;
//! * [`matching`] — exact minimum-weight perfect matching for small defect
//!   sets (Dijkstra + bitmask DP), the MLE-like accuracy reference used to
//!   calibrate the paper's decoding factor α;
//! * [`mc`] — the sample → decode → compare Monte-Carlo harness.
//!
//! Correlated decoding across transversal gates (paper §II.4) needs no
//! special machinery here: the decoding graph is built from the DEM of the
//! *joint* multi-patch circuit, so error mechanisms spanning patches become
//! ordinary edges.
//!
//! # Example
//!
//! ```
//! use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
//! use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder, mc};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new();
//! c.r(&[0, 1, 2, 3, 4]);
//! c.x_error(&[0, 2, 4], 0.02);
//! c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
//! c.mr(&[1, 3]);
//! c.detector(&[MeasRecord::back(2)]);
//! c.detector(&[MeasRecord::back(1)]);
//! c.m(&[0, 2, 4]);
//! c.observable_include(0, &[MeasRecord::back(3)]);
//!
//! let dem = DetectorErrorModel::from_circuit(&c);
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem)?);
//! let stats = mc::logical_error_rate(&c, &decoder, 10_000, &mut StdRng::seed_from_u64(7));
//! assert!(stats.logical_error_rate() < 0.02);
//! # Ok::<(), raa_decode::graph::GraphError>(())
//! ```

pub mod bp;
pub mod graph;
pub mod matching;
pub mod mc;
pub mod unionfind;
pub mod windowed;

pub use graph::{DecodingGraph, Edge, GraphError};
pub use matching::MatchingDecoder;
pub use mc::DecodeStats;
pub use bp::{BeliefPropagation, BpUnionFindDecoder};
pub use unionfind::{UnionFindDecoder, UnionFindOutcome};
pub use windowed::{LayerAssignment, UniformLayers, WindowedDecoder};

/// A syndrome decoder: predicts which logical observables flipped.
pub trait Decoder {
    /// Predicts the observable-flip mask for the given fired detectors.
    fn predict(&self, defects: &[u32]) -> u64;
}
