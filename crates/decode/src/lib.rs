//! QEC decoders for the transversal-architecture reproduction.
//!
//! Decoding turns sampled detector data into predicted logical-observable
//! flips. This crate provides, built from scratch:
//!
//! * [`graph`] — decoding graphs from detector error models (boundary edges,
//!   log-likelihood weights, per-edge observable masks);
//! * [`unionfind`] — a weighted union–find decoder with peeling, the fast
//!   workhorse for threshold-scale Monte Carlo;
//! * [`matching`] — exact minimum-weight perfect matching for small defect
//!   sets (Dijkstra + bitmask DP), the MLE-like accuracy reference used to
//!   calibrate the paper's decoding factor α;
//! * [`bp`] — belief-propagation reweighting ahead of union–find;
//! * [`windowed`] — sliding-window decoding over the circuit's time axis,
//!   with commit/buffer syndrome projection and an incremental streaming
//!   session;
//! * [`mc`] — the sample → decode → compare Monte-Carlo harness, sharded
//!   across threads with deterministic per-batch seeding; sampling goes
//!   through the [`mc::Sampler`] trait (gate-level [`mc::CircuitSampler`]
//!   or the compiled-DEM fast path of [`raa_stabsim::DemSampler`]), and
//!   deep circuits stream one time layer at a time through
//!   [`mc::logical_error_rate_streamed`] with O(window) resident memory.
//!
//! Correlated decoding across transversal gates (paper §II.4) needs no
//! special machinery here: the decoding graph is built from the DEM of the
//! *joint* multi-patch circuit, so error mechanisms spanning patches become
//! ordinary edges.
//!
//! # The scratch-based decoding API
//!
//! Threshold-scale Monte Carlo decodes millions of syndromes, and the cost
//! of allocating per-call working state (union–find cluster tables, Dijkstra
//! heaps, DP tables, BP message buffers) dominates small-syndrome decodes.
//! The [`Decoder`] trait therefore splits state from logic:
//!
//! * every decoder has an associated [`Decoder::Scratch`] type holding all
//!   of its mutable working state, constructed with `Default::default()`
//!   and lazily sized to the decoder's graph on first use;
//! * [`Decoder::predict_into`] decodes one syndrome using a caller-provided
//!   scratch; in steady state it performs **no heap allocation**;
//! * [`Decoder::predict`] remains as a convenience wrapper that builds a
//!   fresh scratch per call — fine for one-off decodes, wasteful in loops.
//!
//! # The batch decode contract
//!
//! [`Decoder::predict_batch_into`] decodes a whole bit-packed
//! [`raa_stabsim::SyndromeBatch`] in one call. Its contract: shot `s` of the
//! output equals what [`Decoder::predict_into`] returns for shot `s`'s
//! extracted defect list — batching changes execution strategy (epoch-tagged
//! scratch reset, word-skipping defect extraction, a graph precompiled into
//! flat arenas), never decisions, so results are **bit-identical** to the
//! per-shot path. The Monte-Carlo harness exploits this to fuse sampling and
//! decoding in L1-resident blocks when the sampler advertises a block size
//! via [`mc::Sampler::fusion_block`]: [`raa_stabsim::DemSampler`] emits
//! shots in 512-shot blocks whose bit streams do not depend on how the batch
//! is chunked, so fused decoding reproduces whole-batch `DecodeStats`
//! exactly; samplers without that guarantee (the gate-level
//! [`mc::CircuitSampler`], the streaming sampler) simply decline fusion and
//! keep the materialize-then-decode path.
//!
//! Hot loops keep one scratch per thread:
//!
//! ```
//! use raa_stabsim::dem::{DemError, DetectorErrorModel};
//! use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder};
//!
//! let dem = DetectorErrorModel {
//!     num_detectors: 2,
//!     num_observables: 1,
//!     errors: vec![
//!         DemError { probability: 0.01, detectors: vec![0], observables: 1 },
//!         DemError { probability: 0.01, detectors: vec![0, 1], observables: 0 },
//!         DemError { probability: 0.01, detectors: vec![1], observables: 0 },
//!     ],
//! };
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem).unwrap());
//! let mut scratch = Default::default();
//! for syndrome in [vec![0u32], vec![0, 1], vec![]] {
//!     let _mask = decoder.predict_into(&syndrome, &mut scratch);
//! }
//! ```
//!
//! # Example
//!
//! ```
//! use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
//! use raa_decode::{graph::DecodingGraph, unionfind::UnionFindDecoder, Decoder, mc};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut c = Circuit::new();
//! c.r(&[0, 1, 2, 3, 4]);
//! c.x_error(&[0, 2, 4], 0.02);
//! c.cx(&[(0, 1), (2, 1), (2, 3), (4, 3)]);
//! c.mr(&[1, 3]);
//! c.detector(&[MeasRecord::back(2)]);
//! c.detector(&[MeasRecord::back(1)]);
//! c.m(&[0, 2, 4]);
//! c.observable_include(0, &[MeasRecord::back(3)]);
//!
//! let dem = DetectorErrorModel::from_circuit(&c);
//! let decoder = UnionFindDecoder::new(DecodingGraph::from_dem(&dem)?);
//! let stats = mc::logical_error_rate(&c, &decoder, 10_000, &mut StdRng::seed_from_u64(7));
//! assert!(stats.logical_error_rate() < 0.02);
//! # Ok::<(), raa_decode::graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]

pub mod bp;
mod fxhash;
pub mod graph;
pub mod matching;
pub mod mc;
pub mod unionfind;
pub mod windowed;

pub use bp::{BeliefPropagation, BpUfScratch, BpUnionFindDecoder};
pub use graph::{CompiledGraph, DecodingGraph, Edge, GraphError};
pub use matching::{MatchScratch, MatchingDecoder};
pub use mc::{CircuitSampler, DecodeStats, McConfig, McError, Sampler, SeedPolicy};
pub use unionfind::{UfScratch, UnionFindDecoder, UnionFindOutcome};
pub use windowed::{
    LayerAssignment, UniformLayers, WindowError, WindowScratch, WindowState, WindowedDecoder,
};

use raa_stabsim::SyndromeBatch;

/// A syndrome decoder: predicts which logical observables flipped.
///
/// Implementations separate immutable decoding state (the graph, weights,
/// priors — owned by the decoder) from per-call working state (owned by a
/// [`Decoder::Scratch`]), so hot loops can decode millions of syndromes
/// without per-shot allocation. See the crate docs for the pattern.
pub trait Decoder {
    /// Reusable working state; `Default::default()` yields an empty scratch
    /// that is lazily sized to this decoder on first use.
    type Scratch: Default + Send;

    /// Predicts the observable-flip mask for the given fired detectors,
    /// reusing `scratch` for all working state.
    ///
    /// Steady state (after the scratch has grown to the decoder's problem
    /// size) performs no heap allocation.
    fn predict_into(&self, defects: &[u32], scratch: &mut Self::Scratch) -> u64;

    /// Predicts the observable-flip mask for the given fired detectors.
    ///
    /// Convenience wrapper building a fresh scratch per call; prefer
    /// [`Decoder::predict_into`] in loops.
    fn predict(&self, defects: &[u32]) -> u64 {
        self.predict_into(defects, &mut Self::Scratch::default())
    }

    /// Decodes every shot of a bit-packed [`SyndromeBatch`], pushing one
    /// predicted observable mask per shot into `out` (cleared first).
    ///
    /// **Contract:** shot `s` of `out` must equal what
    /// [`Decoder::predict_into`] returns for the defect list extracted from
    /// shot `s` — batching is an execution strategy, never a semantic
    /// change. The provided implementation decodes shot by shot through
    /// `predict_into`; decoders with batch-friendly internals (the
    /// union–find decoder's epoch-tagged scratch) override it to amortize
    /// per-shot reset costs while preserving the same results bit for bit.
    fn predict_batch_into(
        &self,
        syndromes: &SyndromeBatch,
        out: &mut Vec<u64>,
        scratch: &mut Self::Scratch,
    ) {
        out.clear();
        let mut defects = Vec::new();
        for s in 0..syndromes.num_shots() {
            syndromes.fired_into(s, &mut defects);
            out.push(self.predict_into(&defects, scratch));
        }
    }
}
