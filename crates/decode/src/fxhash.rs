//! FNV/Fx-style hashing for the decoders' hot-path memo tables.
//!
//! The memo keys are short sorted `u32` slices, for which SipHash's
//! per-call setup dominates the whole lookup. Hot-path table hits are
//! ~100 ns events; a DoS-resistant hash would cost more than the decode
//! it guards, and the keys come from the decoder's own syndromes, not
//! from an adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher specialized for `u32`-slice keys.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher(u64);

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub(crate) type BuildFxHasher = BuildHasherDefault<FxHasher>;

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u32(v as u32);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn slices_round_trip_through_a_map() {
        let mut m: HashMap<Box<[u32]>, u64, BuildFxHasher> = HashMap::default();
        m.insert(vec![1, 2, 3].into(), 7);
        m.insert(vec![].into(), 9);
        m.insert(vec![1, 2].into(), 11);
        assert_eq!(m.get([1u32, 2, 3].as_slice()), Some(&7));
        assert_eq!(m.get([].as_slice()), Some(&9));
        assert_eq!(m.get([1u32, 2].as_slice()), Some(&11));
        assert_eq!(m.get([2u32, 3].as_slice()), None);
    }
}
