//! Sliding-window decoding (paper §II.4).
//!
//! Transversal algorithms make the decoding problem *deep*: logical qubits
//! within distance d in the circuit must be decoded jointly, and the paper
//! manages this with "a windowed decoding approach" over the circuit's time
//! axis. This module implements the standard two-region sliding window:
//! detectors are partitioned into time layers; each window decodes
//! `commit + buffer` layers, commits the correction of the first `commit`
//! layers, projects the residual syndrome onto the next window's boundary,
//! and slides forward. Accuracy approaches whole-circuit decoding as the
//! buffer grows, while memory and latency stay bounded — this is what keeps
//! the reaction time constant for arbitrarily long computations.

use crate::graph::DecodingGraph;
use crate::unionfind::{UfScratch, UnionFindDecoder};
use crate::Decoder;

/// Reusable working state for [`WindowedDecoder`].
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Inner union–find scratch.
    pub uf: UfScratch,
    remaining: Vec<u32>,
    in_window: Vec<u32>,
    committed: Vec<u32>,
}

/// Assigns each detector to a time layer (e.g. its SE round).
pub trait LayerAssignment {
    /// The layer index of detector `d`.
    fn layer_of(&self, d: u32) -> usize;
}

/// Layering by contiguous equal-size blocks of detector indices (valid for
/// circuits that emit detectors round by round, as the builders here do).
#[derive(Debug, Clone, Copy)]
pub struct UniformLayers {
    /// Detectors per layer.
    pub detectors_per_layer: usize,
}

impl LayerAssignment for UniformLayers {
    fn layer_of(&self, d: u32) -> usize {
        d as usize / self.detectors_per_layer.max(1)
    }
}

/// A sliding-window wrapper around the union–find decoder.
#[derive(Debug, Clone)]
pub struct WindowedDecoder<L: LayerAssignment> {
    inner: UnionFindDecoder,
    layers: L,
    /// Layers whose corrections are committed per window step.
    commit: usize,
    /// Additional look-ahead layers decoded but not committed.
    buffer: usize,
    num_layers: usize,
}

impl<L: LayerAssignment> WindowedDecoder<L> {
    /// Builds a windowed decoder over `graph` with the given layering,
    /// committing `commit` layers per step with `buffer` look-ahead layers.
    ///
    /// # Panics
    ///
    /// Panics if `commit` is zero.
    pub fn new(graph: DecodingGraph, layers: L, commit: usize, buffer: usize) -> Self {
        assert!(commit >= 1, "must commit at least one layer per window");
        let num_layers = (0..graph.num_detectors() as u32)
            .map(|d| layers.layer_of(d))
            .max()
            .map_or(0, |m| m + 1);
        Self {
            inner: UnionFindDecoder::new(graph),
            layers,
            commit,
            buffer,
            num_layers,
        }
    }

    /// Number of time layers seen in the graph.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Decodes by sliding a window with a fresh scratch; prefer
    /// [`WindowedDecoder::decode_windowed_into`] in loops.
    pub fn decode_windowed(&self, defects: &[u32]) -> u64 {
        self.decode_windowed_into(defects, &mut WindowScratch::default())
    }

    /// Decodes by sliding a `commit + buffer` window over the layers.
    ///
    /// Within each window the full union–find decoder runs on the windowed
    /// syndrome; edges whose correction crosses the commit boundary re-toggle
    /// the boundary defects of the next window (syndrome projection). All
    /// working state lives in `scratch`.
    pub fn decode_windowed_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        if self.num_layers <= self.commit + self.buffer {
            return self.inner.predict_into(defects, &mut scratch.uf);
        }
        scratch.remaining.clear();
        scratch.remaining.extend_from_slice(defects);
        let mut observables = 0u64;
        let mut start = 0usize;
        while start < self.num_layers {
            let commit_end = start + self.commit;
            let window_end = commit_end + self.buffer;
            scratch.in_window.clear();
            scratch
                .in_window
                .extend(scratch.remaining.iter().copied().filter(|&d| {
                    let l = self.layers.layer_of(d);
                    l >= start && l < window_end
                }));
            if !scratch.in_window.is_empty() {
                // Commit only matters for the final observable mask: the
                // windowed correction's observable flips accumulate, and the
                // defects inside the committed region are consumed. Buffer
                // defects are re-decoded next window; to avoid double
                // counting their observable contributions, the committed
                // region is decoded alone and the rest re-decoded later.
                scratch.committed.clear();
                scratch.committed.extend(
                    scratch
                        .in_window
                        .iter()
                        .copied()
                        .filter(|&d| self.layers.layer_of(d) < commit_end),
                );
                if !scratch.committed.is_empty() {
                    // Decode committed defects in the context of the window,
                    // then drop them from the remaining syndrome.
                    let commit_outcome =
                        self.inner.decode_into(&scratch.committed, &mut scratch.uf);
                    observables ^= commit_outcome.observables;
                    scratch
                        .remaining
                        .retain(|&d| self.layers.layer_of(d) >= commit_end);
                }
            } else {
                scratch
                    .remaining
                    .retain(|&d| self.layers.layer_of(d) >= commit_end);
            }
            start = commit_end;
        }
        observables
    }
}

impl<L: LayerAssignment> Decoder for WindowedDecoder<L> {
    type Scratch = WindowScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        self.decode_windowed_into(defects, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use raa_stabsim::{Circuit, DetectorErrorModel, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d-bit repetition code memory over `rounds` rounds; detectors come out
    /// in per-round blocks of (d-1), so UniformLayers applies.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_anc = d - 1;
        let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        c.r(&(0..(d + n_anc) as u32).collect::<Vec<_>>());
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(d - i),
                MeasRecord::back(d - i - 1),
                MeasRecord::back(d + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(d)]);
        c
    }

    fn build(
        c: &Circuit,
        commit: usize,
        buffer: usize,
        per_layer: usize,
    ) -> WindowedDecoder<UniformLayers> {
        let dem = DetectorErrorModel::from_circuit(c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        WindowedDecoder::new(
            graph,
            UniformLayers {
                detectors_per_layer: per_layer,
            },
            commit,
            buffer,
        )
    }

    #[test]
    fn small_circuit_falls_back_to_global() {
        let c = repetition(3, 2, 0.05);
        let w = build(&c, 4, 4, 2);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        for syndrome in [vec![0u32], vec![1, 3], vec![0, 2, 4]] {
            assert_eq!(w.predict(&syndrome), global.predict(&syndrome));
        }
    }

    #[test]
    fn layer_counting() {
        let c = repetition(5, 10, 0.01);
        let w = build(&c, 2, 2, 4);
        // 10 rounds + final layer of 4 detectors = 11 layers.
        assert_eq!(w.num_layers(), 11);
    }

    #[test]
    fn windowed_accuracy_close_to_global() {
        let p = 0.04;
        let c = repetition(5, 12, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        let windowed = build(&c, 3, 3, 4);
        let r_g = mc::logical_error_rate(&c, &global, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        let r_w = mc::logical_error_rate(&c, &windowed, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        assert!(
            r_w <= r_g * 2.0 + 0.01,
            "windowed {r_w} vs global {r_g}: buffer should keep accuracy close"
        );
        assert!(r_w < p, "windowed decoding must still beat raw errors");
    }

    #[test]
    fn bigger_buffer_does_not_hurt() {
        let p = 0.05;
        let c = repetition(5, 12, p);
        let narrow = build(&c, 2, 1, 4);
        let wide = build(&c, 2, 5, 4);
        let r_narrow = mc::logical_error_rate(&c, &narrow, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        let r_wide = mc::logical_error_rate(&c, &wide, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        assert!(
            r_wide <= r_narrow * 1.25 + 0.01,
            "wide buffer {r_wide} vs narrow {r_narrow}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_commit() {
        let c = repetition(3, 2, 0.01);
        let _ = build(&c, 0, 1, 2);
    }
}
