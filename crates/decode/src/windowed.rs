//! Sliding-window decoding (paper §II.4).
//!
//! Transversal algorithms make the decoding problem *deep*: logical qubits
//! within distance d in the circuit must be decoded jointly, and the paper
//! manages this with "a windowed decoding approach" over the circuit's time
//! axis. This module implements the standard two-region sliding window:
//! detectors are partitioned into time layers; each window decodes
//! `commit + buffer` layers, commits the correction of the first `commit`
//! layers, projects the residual syndrome onto the next window's boundary,
//! and slides forward. Accuracy approaches whole-circuit decoding as the
//! buffer grows, while memory and latency stay bounded — this is what keeps
//! the reaction time constant for arbitrarily long computations.
//!
//! # Commit / buffer semantics
//!
//! Each window step decodes every pending defect in layers
//! `[start, start + commit + buffer)` with the inner union–find decoder,
//! then splits the resulting correction at the commit boundary
//! (`start + commit`):
//!
//! * edges entirely inside the commit region are **committed**: their
//!   observable flips accumulate and their defects are consumed;
//! * edges *crossing* the boundary are committed too, and the buffer-side
//!   endpoint is toggled into the pending syndrome — the **syndrome
//!   projection** that hands the half-finished matching to the next window;
//! * edges entirely inside the buffer are discarded; their defects are
//!   re-decoded by the next window with one more window of look-ahead.
//!
//! # Streaming
//!
//! The same engine runs incrementally: [`WindowedDecoder::stream_push`]
//! feeds defects layer by layer as a streaming sampler finalizes them,
//! [`WindowedDecoder::stream_advance`] runs every window step whose full
//! look-ahead is available, and [`WindowedDecoder::stream_finish`] drains
//! the tail. The batch entry point ([`Decoder::predict_into`]) is a thin
//! wrapper over the same steps, so for identical defect sets the two are
//! **bit-identical** — the property the streaming Monte-Carlo pipeline of
//! [`crate::mc`] pins. Pending state per shot is the sparse projected
//! syndrome of the open window only: O(window), not O(circuit).

use crate::graph::DecodingGraph;
use crate::unionfind::{UfScratch, UnionFindDecoder};
use crate::Decoder;

/// Reusable working state for [`WindowedDecoder`] (shared across shots;
/// the per-shot streaming state is [`WindowState`]).
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Inner union–find scratch.
    pub uf: UfScratch,
    /// Defects of the window currently being decoded.
    in_window: Vec<u32>,
    /// Per-shot state used by the batch entry point.
    state: WindowState,
}

/// Per-shot state of an incremental windowed decode: the pending (sparse,
/// sorted) defects of the open window plus the committed observable flips.
/// Reusable across shots via [`WindowedDecoder::stream_reset`].
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    /// Pending defects (original and projected), sorted ascending. Layers
    /// below `start` have been consumed.
    remaining: Vec<u32>,
    /// First layer of the next window.
    start: usize,
    /// Accumulated observable flips of committed correction edges.
    observables: u64,
}

impl WindowState {
    /// Number of pending (uncommitted) defects — bounded by the open
    /// window's hits, not by the circuit depth (except in the
    /// global-fallback regime where the window covers the whole circuit).
    pub fn pending_defects(&self) -> usize {
        self.remaining.len()
    }
}

/// Toggles membership of `d` in the sorted defect list (XOR semantics —
/// projecting a defect onto a detector that already fired cancels it).
fn toggle(remaining: &mut Vec<u32>, d: u32) {
    match remaining.binary_search(&d) {
        Ok(i) => {
            remaining.remove(i);
        }
        Err(i) => remaining.insert(i, d),
    }
}

/// Assigns each detector to a time layer (e.g. its SE round).
pub trait LayerAssignment {
    /// The layer index of detector `d`.
    fn layer_of(&self, d: u32) -> usize;

    /// Validates the layering against a detector count, panicking on
    /// inconsistency. The default accepts anything; implementations should
    /// reject parameters that would silently misassign detectors.
    fn validate(&self, num_detectors: usize) {
        let _ = num_detectors;
    }
}

/// Layering by contiguous equal-size blocks of detector indices (valid for
/// circuits that emit detectors round by round, as the builders here do).
#[derive(Debug, Clone, Copy)]
pub struct UniformLayers {
    /// Detectors per layer.
    pub detectors_per_layer: usize,
}

impl LayerAssignment for UniformLayers {
    fn layer_of(&self, d: u32) -> usize {
        d as usize / self.detectors_per_layer
    }

    /// Rejects a detector count the uniform layering cannot represent.
    ///
    /// # Panics
    ///
    /// Panics if `detectors_per_layer` is zero or does not divide
    /// `num_detectors` — a trailing partial layer means the block size does
    /// not match the circuit's round structure, and every detector after
    /// the mismatch would land in the wrong layer.
    fn validate(&self, num_detectors: usize) {
        raa_stabsim::validate_uniform_layers(num_detectors, self.detectors_per_layer);
    }
}

/// A sliding-window wrapper around the union–find decoder.
///
/// # Example: incremental (streaming) decoding
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{DecodingGraph, UniformLayers, WindowedDecoder, WindowScratch, WindowState};
///
/// // Four rounds of one repeated measurement: one detector per layer.
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// for _ in 0..4 {
///     c.x_error(&[0], 0.1);
///     c.mr(&[0]);
///     c.detector(&[MeasRecord::back(1)]);
/// }
/// c.observable_include(0, &[MeasRecord::back(1)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
/// let w = WindowedDecoder::new(graph, UniformLayers { detectors_per_layer: 1 }, 1, 1);
///
/// // One X error in round 1 fires detectors 1 and 2. Stream them in as
/// // their layers finalize; the batch entry point gives the same answer.
/// let per_layer: [&[u32]; 4] = [&[], &[1], &[2], &[]];
/// let (mut state, mut scratch) = (WindowState::default(), WindowScratch::default());
/// w.stream_reset(&mut state);
/// for (layer, defects) in per_layer.iter().enumerate() {
///     w.stream_push(&mut state, defects);
///     w.stream_advance(&mut state, layer + 1, &mut scratch);
/// }
/// let streamed = w.stream_finish(&mut state, &mut scratch);
/// assert_eq!(streamed, w.decode_windowed(&[1, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct WindowedDecoder<L: LayerAssignment> {
    inner: UnionFindDecoder,
    layers: L,
    /// Layers whose corrections are committed per window step.
    commit: usize,
    /// Additional look-ahead layers decoded but not committed.
    buffer: usize,
    num_layers: usize,
}

impl<L: LayerAssignment> WindowedDecoder<L> {
    /// Builds a windowed decoder over `graph` with the given layering,
    /// committing `commit` layers per step with `buffer` look-ahead layers.
    ///
    /// # Panics
    ///
    /// Panics if `commit` is zero, or if `layers` rejects the graph's
    /// detector count (see [`LayerAssignment::validate`] — for
    /// [`UniformLayers`] that is a block size that does not divide it).
    pub fn new(graph: DecodingGraph, layers: L, commit: usize, buffer: usize) -> Self {
        assert!(commit >= 1, "must commit at least one layer per window");
        layers.validate(graph.num_detectors());
        let num_layers = (0..graph.num_detectors() as u32)
            .map(|d| layers.layer_of(d))
            .max()
            .map_or(0, |m| m + 1);
        Self {
            inner: UnionFindDecoder::new(graph),
            layers,
            commit,
            buffer,
            num_layers,
        }
    }

    /// Number of time layers seen in the graph.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Detectors in the underlying decoding graph.
    pub fn num_detectors(&self) -> usize {
        self.inner.graph().num_detectors()
    }

    /// The layer assignment.
    pub fn layers(&self) -> &L {
        &self.layers
    }

    /// Whether the window covers the whole circuit, in which case every
    /// decode falls back to one global union–find pass (exactly
    /// whole-circuit decoding).
    pub fn is_global(&self) -> bool {
        self.num_layers <= self.commit + self.buffer
    }

    /// Decodes by sliding a window with a fresh scratch; prefer
    /// [`WindowedDecoder::decode_windowed_into`] in loops.
    pub fn decode_windowed(&self, defects: &[u32]) -> u64 {
        self.decode_windowed_into(defects, &mut WindowScratch::default())
    }

    /// Decodes a full shot's defects (sorted ascending) by sliding a
    /// `commit + buffer` window over the layers; see the [module
    /// docs](self) for the commit/projection semantics. All working state
    /// lives in `scratch`.
    pub fn decode_windowed_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        if self.is_global() {
            return self.inner.predict_into(defects, &mut scratch.uf);
        }
        // Run the incremental engine over the complete defect list: the
        // batch and streaming entry points share every step, so they are
        // bit-identical by construction.
        let mut state = std::mem::take(&mut scratch.state);
        self.stream_reset(&mut state);
        self.stream_push(&mut state, defects);
        let observables = self.stream_finish(&mut state, scratch);
        scratch.state = state; // return the allocation
        observables
    }

    /// Resets a per-shot streaming state (reusing its allocation).
    pub fn stream_reset(&self, state: &mut WindowState) {
        state.remaining.clear();
        state.start = 0;
        state.observables = 0;
    }

    /// Feeds newly finalized defects (sorted ascending, no duplicates)
    /// into the pending syndrome. Layers must arrive in order: a pushed
    /// defect's layer must not precede a window step already run by
    /// [`WindowedDecoder::stream_advance`].
    pub fn stream_push(&self, state: &mut WindowState, defects: &[u32]) {
        for &d in defects {
            debug_assert!(
                self.layers.layer_of(d) >= state.start,
                "defect {d} pushed after its window was committed"
            );
            match state.remaining.binary_search(&d) {
                Ok(_) => debug_assert!(false, "defect {d} pushed twice"),
                Err(i) => state.remaining.insert(i, d),
            }
        }
    }

    /// Runs every window step whose full `commit + buffer` look-ahead lies
    /// within the first `available_layers` finalized layers. In the
    /// global-fallback regime this is a no-op (the one global decode
    /// happens in [`WindowedDecoder::stream_finish`]).
    pub fn stream_advance(
        &self,
        state: &mut WindowState,
        available_layers: usize,
        scratch: &mut WindowScratch,
    ) {
        if self.is_global() {
            return;
        }
        while state.start < self.num_layers
            && state.start + self.commit + self.buffer <= available_layers
        {
            self.step(state, scratch);
        }
    }

    /// Runs the remaining window steps (every layer is now available) and
    /// returns the accumulated observable prediction for the shot.
    pub fn stream_finish(&self, state: &mut WindowState, scratch: &mut WindowScratch) -> u64 {
        if self.is_global() {
            return self.inner.predict_into(&state.remaining, &mut scratch.uf);
        }
        while state.start < self.num_layers {
            self.step(state, scratch);
        }
        state.observables
    }

    /// One window step: decode `[start, start + commit + buffer)`, commit
    /// the correction's first `commit` layers, project crossing edges.
    fn step(&self, state: &mut WindowState, scratch: &mut WindowScratch) {
        let start = state.start;
        let commit_end = start + self.commit;
        let window_end = commit_end + self.buffer;
        scratch.in_window.clear();
        scratch
            .in_window
            .extend(state.remaining.iter().copied().filter(|&d| {
                let l = self.layers.layer_of(d);
                l >= start && l < window_end
            }));
        if !scratch.in_window.is_empty() {
            self.inner.decode_into(&scratch.in_window, &mut scratch.uf);
            let edges = self.inner.graph().edges();
            for &ei in scratch.uf.correction() {
                let e = &edges[ei as usize];
                let lu = self.layers.layer_of(e.u);
                let lv = e.v.map_or(lu, |v| self.layers.layer_of(v));
                if lu.min(lv) >= commit_end {
                    continue; // entirely in the buffer: re-decoded later
                }
                state.observables ^= e.observables;
                // A crossing edge hands its buffer-side endpoint to the
                // next window as a projected defect.
                if lu >= commit_end {
                    toggle(&mut state.remaining, e.u);
                } else if let Some(v) = e.v {
                    if lv >= commit_end {
                        toggle(&mut state.remaining, v);
                    }
                }
            }
        }
        // Defects of the committed region are consumed (matched or
        // projected forward); later layers stay pending.
        let layers = &self.layers;
        state
            .remaining
            .retain(|&d| layers.layer_of(d) >= commit_end);
        state.start = commit_end;
    }
}

impl<L: LayerAssignment> Decoder for WindowedDecoder<L> {
    type Scratch = WindowScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        self.decode_windowed_into(defects, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use raa_stabsim::{Circuit, DetectorErrorModel, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d-bit repetition code memory over `rounds` rounds; detectors come out
    /// in per-round blocks of (d-1), so UniformLayers applies.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_anc = d - 1;
        let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        c.r(&(0..(d + n_anc) as u32).collect::<Vec<_>>());
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(d - i),
                MeasRecord::back(d - i - 1),
                MeasRecord::back(d + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(d)]);
        c
    }

    fn build(
        c: &Circuit,
        commit: usize,
        buffer: usize,
        per_layer: usize,
    ) -> WindowedDecoder<UniformLayers> {
        let dem = DetectorErrorModel::from_circuit(c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        WindowedDecoder::new(
            graph,
            UniformLayers {
                detectors_per_layer: per_layer,
            },
            commit,
            buffer,
        )
    }

    #[test]
    fn small_circuit_falls_back_to_global() {
        let c = repetition(3, 2, 0.05);
        let w = build(&c, 4, 4, 2);
        assert!(w.is_global());
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        for syndrome in [vec![0u32], vec![1, 3], vec![0, 2, 4]] {
            assert_eq!(w.predict(&syndrome), global.predict(&syndrome));
        }
    }

    #[test]
    fn layer_counting() {
        let c = repetition(5, 10, 0.01);
        let w = build(&c, 2, 2, 4);
        // 10 rounds + final layer of 4 detectors = 11 layers.
        assert_eq!(w.num_layers(), 11);
        assert_eq!(w.num_detectors(), 44);
        assert!(!w.is_global());
    }

    #[test]
    fn windowed_accuracy_close_to_global() {
        let p = 0.04;
        let c = repetition(5, 12, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        let windowed = build(&c, 3, 3, 4);
        let r_g = mc::logical_error_rate(&c, &global, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        let r_w = mc::logical_error_rate(&c, &windowed, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        assert!(
            r_w <= r_g * 2.0 + 0.01,
            "windowed {r_w} vs global {r_g}: buffer should keep accuracy close"
        );
        assert!(r_w < p, "windowed decoding must still beat raw errors");
    }

    #[test]
    fn bigger_buffer_does_not_hurt() {
        let p = 0.05;
        let c = repetition(5, 12, p);
        let narrow = build(&c, 2, 1, 4);
        let wide = build(&c, 2, 5, 4);
        let r_narrow = mc::logical_error_rate(&c, &narrow, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        let r_wide = mc::logical_error_rate(&c, &wide, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        assert!(
            r_wide <= r_narrow * 1.25 + 0.01,
            "wide buffer {r_wide} vs narrow {r_narrow}"
        );
    }

    #[test]
    fn projection_resolves_boundary_straddling_pair() {
        // Two defects in adjacent rounds of the same chain position are one
        // measurement-error edge. With commit = 1 the pair straddles every
        // commit boundary; projection must still match them internally
        // (no observable flip), where a projection-free chop would match
        // each to its nearest boundary separately.
        let c = repetition(5, 10, 0.01);
        let w = build(&c, 1, 2, 4);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        // Same chain position (detector 1 of each round block), rounds 4/5.
        let pair = vec![4 * 4 + 1, 5 * 4 + 1];
        assert_eq!(w.predict(&pair), global.predict(&pair));
    }

    #[test]
    fn streaming_session_matches_batch_decode() {
        // Feeding the same defects layer by layer through the streaming
        // session must reproduce the batch decode bit for bit, for every
        // commit/buffer geometry.
        let p = 0.06;
        let c = repetition(5, 12, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let shots = 400;
        let mut syndromes = raa_stabsim::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(
            shots,
            &mut StdRng::seed_from_u64(42),
            &mut syndromes,
            &mut masks,
        );
        for (commit, buffer) in [(1usize, 0usize), (1, 2), (2, 3), (3, 1)] {
            let w = build(&c, commit, buffer, 4);
            let mut scratch = WindowScratch::default();
            let mut state = WindowState::default();
            let mut defects = Vec::new();
            let mut layer_defects = Vec::new();
            for s in 0..shots {
                syndromes.fired_into(s, &mut defects);
                let batch = w.decode_windowed_into(&defects, &mut scratch);

                w.stream_reset(&mut state);
                for layer in 0..w.num_layers() {
                    layer_defects.clear();
                    layer_defects.extend(
                        defects
                            .iter()
                            .copied()
                            .filter(|&d| w.layers().layer_of(d) == layer),
                    );
                    w.stream_push(&mut state, &layer_defects);
                    w.stream_advance(&mut state, layer + 1, &mut scratch);
                }
                let streamed = w.stream_finish(&mut state, &mut scratch);
                assert_eq!(
                    batch, streamed,
                    "shot {s}, commit {commit}, buffer {buffer}"
                );
            }
        }
    }

    #[test]
    fn pending_state_stays_window_sized() {
        // The streaming session's per-shot memory is the projected syndrome
        // of the open window — it must not accumulate across a deep shot.
        let c = repetition(3, 200, 0.05);
        let w = build(&c, 2, 2, 2);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let mut syndromes = raa_stabsim::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(
            64,
            &mut StdRng::seed_from_u64(9),
            &mut syndromes,
            &mut masks,
        );
        let mut scratch = WindowScratch::default();
        let mut state = WindowState::default();
        let mut defects = Vec::new();
        let mut layer_defects = Vec::new();
        let window_detectors = (2 + 2 + 1) * 2; // commit+buffer+1 layers is ample
        for s in 0..64 {
            syndromes.fired_into(s, &mut defects);
            w.stream_reset(&mut state);
            for layer in 0..w.num_layers() {
                layer_defects.clear();
                layer_defects.extend(
                    defects
                        .iter()
                        .copied()
                        .filter(|&d| w.layers().layer_of(d) == layer),
                );
                w.stream_push(&mut state, &layer_defects);
                w.stream_advance(&mut state, layer + 1, &mut scratch);
                assert!(
                    state.pending_defects() <= window_detectors,
                    "pending {} defects at layer {layer} exceeds the window",
                    state.pending_defects()
                );
            }
            w.stream_finish(&mut state, &mut scratch);
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_commit() {
        let c = repetition(3, 2, 0.01);
        let _ = build(&c, 0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_divisible_layer_size() {
        // 44 detectors do not split into layers of 3: constructing the
        // decoder must fail loudly instead of silently misassigning.
        let c = repetition(5, 10, 0.01);
        let _ = build(&c, 2, 2, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_layer_size() {
        let c = repetition(3, 2, 0.01);
        let _ = build(&c, 1, 1, 0);
    }
}
