//! Sliding-window decoding (paper §II.4).
//!
//! Transversal algorithms make the decoding problem *deep*: logical qubits
//! within distance d in the circuit must be decoded jointly, and the paper
//! manages this with "a windowed decoding approach" over the circuit's time
//! axis. This module implements the standard two-region sliding window:
//! detectors are partitioned into time layers; each window decodes
//! `commit + buffer` layers, commits the correction of the first `commit`
//! layers, projects the residual syndrome onto the next window's boundary,
//! and slides forward. Accuracy approaches whole-circuit decoding as the
//! buffer grows, while memory and latency stay bounded — this is what keeps
//! the reaction time constant for arbitrarily long computations.
//!
//! # Commit / buffer semantics
//!
//! Each window step decodes every pending defect in layers
//! `[start, start + commit + buffer)` with the inner union–find decoder,
//! then splits the resulting correction at the commit boundary
//! (`start + commit`):
//!
//! * edges entirely inside the commit region are **committed**: their
//!   observable flips accumulate and their defects are consumed;
//! * edges *crossing* the boundary are committed too, and the buffer-side
//!   endpoint is toggled into the pending syndrome — the **syndrome
//!   projection** that hands the half-finished matching to the next window;
//! * edges entirely inside the buffer are discarded; their defects are
//!   re-decoded by the next window with one more window of look-ahead.
//!
//! # Window templates
//!
//! The space–time graph of a memory circuit is (mostly) time-translation
//! invariant, so the cluster growth of one window step never needs the
//! whole-circuit graph — only a slab of layers around the window. At
//! construction the decoder compiles one **window template** per
//! structurally distinct window position: a standalone
//! [`crate::graph::CompiledGraph`] over the layers
//! `[start − margin, start + commit + buffer + margin)` where
//! `margin = commit + buffer + max_edge_layer_span`. Bulk windows of a
//! uniform circuit all collapse onto a single template; head and tail
//! windows, whose slabs are clipped by the circuit's ends, get their own
//! boundary variants. The compilation contract:
//!
//! * **Compiled once** (at [`WindowedDecoder::new`]): the template's CSR
//!   adjacency, its quantized growth weights — copied edge-for-edge from
//!   the full circuit's compiled graph, so growth order is identical — and
//!   the *unsafe* edge set: template edges incident to a rim node whose
//!   neighborhood the slab clips.
//! * **Rebased per window step**: only two integers — the window's first
//!   detector id (subtracted from each defect before the template decode)
//!   and the window's edge-id offset (added to each correction edge after
//!   it). No per-step graph work happens.
//! * **Memo sharing**: each template decoder carries its own PR 7
//!   component memo keyed by *rebased* defect ids, so an identical local
//!   defect pattern hits the same entry no matter which window, which
//!   shot, or which thread produced it — this is what makes the streamed
//!   hot path L1-resident.
//!
//! Exactness is checked, not assumed: template decodes track their *reach*
//! (every edge that entered a frontier list) and a window step falls back
//! to the whole-circuit decoder whenever the reach touches an unsafe edge.
//! Growth is frontier-driven, so a decode whose reach stays on complete
//! neighborhoods evolves in lockstep with the same decode on the full
//! graph — the fallback therefore never changes a result, it only restores
//! the pre-template cost for the rare cluster that outgrows its slab.
//!
//! # Streaming
//!
//! The same engine runs incrementally: [`WindowedDecoder::stream_push`]
//! feeds defects layer by layer as a streaming sampler finalizes them,
//! [`WindowedDecoder::stream_advance`] runs every window step whose full
//! look-ahead is available, and [`WindowedDecoder::stream_finish`] drains
//! the tail. The batch entry point ([`Decoder::predict_into`]) is a thin
//! wrapper over the same steps, so for identical defect sets the two are
//! **bit-identical** — the property the streaming Monte-Carlo pipeline of
//! [`crate::mc`] pins. Pending state per shot is the sparse projected
//! syndrome of the open window only: O(window), not O(circuit).
//!
//! [`crate::mc`]'s shot-batched pipeline drives the third entry point,
//! [`WindowedDecoder::stream_step_fired`]: the caller extracts each
//! window's fired defects straight from the sampler's bitplanes and the
//! decoder merges them (XOR) with the shot's pending projections — the
//! same window steps again, in window-major order across a whole shot
//! block.

use crate::fxhash::BuildFxHasher;
use crate::graph::{CompiledGraph, DecodingGraph, Edge};
use crate::unionfind::{UfScratch, UnionFindDecoder};
use crate::Decoder;
use raa_stabsim::dem::{DemError, DetectorErrorModel};
use std::collections::HashMap;
use std::fmt;
use std::sync::{PoisonError, RwLock};

type StepMemo = HashMap<Box<[u32]>, StepEntry, BuildFxHasher>;

/// Cap on memoized window steps per template, mirroring the inner
/// decoder's component-memo bound; a full table is flushed wholesale.
const STEP_MEMO_MAX_ENTRIES: usize = 1 << 14;

/// Cap on distinct compiled window templates per decoder. A uniform
/// circuit needs ~`2 × (margin / commit)` boundary variants plus one bulk
/// template; a circuit whose windows keep producing new structures is not
/// time-translation invariant and stops benefiting, so further windows
/// simply fall back to the whole-circuit decoder.
const MAX_TEMPLATES: usize = 32;

/// Reusable working state for [`WindowedDecoder`] (shared across shots;
/// the per-shot streaming state is [`WindowState`]).
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Inner union–find scratch.
    pub uf: UfScratch,
    /// Defects of the window currently being decoded.
    in_window: Vec<u32>,
    /// `in_window` rebased to template-local detector ids.
    rebased: Vec<u32>,
    /// Slab-relative projections of the current template step, sorted and
    /// XOR-collapsed before being applied and memoized.
    toggles: Vec<u32>,
    /// Per-shot state used by the batch entry point.
    state: WindowState,
}

/// Per-shot state of an incremental windowed decode: the pending (sparse,
/// sorted) defects of the open window plus the committed observable flips.
/// Reusable across shots via [`WindowedDecoder::stream_reset`].
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    /// Pending defects (original and projected), sorted ascending. Layers
    /// below `start` have been consumed.
    remaining: Vec<u32>,
    /// First layer of the next window.
    start: usize,
    /// Accumulated observable flips of committed correction edges.
    observables: u64,
}

impl WindowState {
    /// Number of pending (uncommitted) defects — bounded by the open
    /// window's hits, not by the circuit depth (except in the
    /// global-fallback regime where the window covers the whole circuit).
    pub fn pending_defects(&self) -> usize {
        self.remaining.len()
    }

    /// Accumulated observable flips of every correction committed so far.
    /// After the final window step (`start` past the last layer) this is
    /// the shot's prediction — what [`WindowedDecoder::stream_finish`]
    /// returns.
    pub fn committed_observables(&self) -> u64 {
        self.observables
    }
}

/// Toggles membership of `d` in the sorted defect list (XOR semantics —
/// projecting a defect onto a detector that already fired cancels it).
fn toggle(remaining: &mut Vec<u32>, d: u32) {
    match remaining.binary_search(&d) {
        Ok(i) => {
            remaining.remove(i);
        }
        Err(i) => remaining.insert(i, d),
    }
}

/// Geometry or layering problem reported by [`WindowedDecoder::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowError {
    /// `commit` was zero: the window would never advance.
    ZeroCommit,
    /// `buffer` was zero: every correction would commit with no look-ahead,
    /// silently costing accuracy on every boundary-straddling error chain.
    ZeroBuffer,
    /// `commit + buffer` does not fit in the circuit: the decoder would
    /// silently degenerate to whole-circuit (global) decoding.
    WindowExceedsCircuit {
        /// Requested window size (`commit + buffer`).
        window: usize,
        /// Layers actually present in the graph.
        num_layers: usize,
    },
    /// The layer assignment cannot cover the graph's detectors (see
    /// [`LayerAssignment::check`]).
    Layering(String),
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroCommit => write!(f, "must commit at least one layer per window"),
            Self::ZeroBuffer => write!(f, "window needs at least one buffer (look-ahead) layer"),
            Self::WindowExceedsCircuit { window, num_layers } => write!(
                f,
                "window of {window} layers exceeds the circuit's {num_layers} layers: \
                 decoding would silently fall back to whole-circuit decode"
            ),
            Self::Layering(msg) => write!(f, "layer assignment rejected the graph: {msg}"),
        }
    }
}

impl std::error::Error for WindowError {}

/// Assigns each detector to a time layer (e.g. its SE round).
pub trait LayerAssignment {
    /// The layer index of detector `d`.
    fn layer_of(&self, d: u32) -> usize;

    /// Validates the layering against a detector count, panicking on
    /// inconsistency. The default accepts anything; implementations should
    /// reject parameters that would silently misassign detectors.
    fn validate(&self, num_detectors: usize) {
        let _ = num_detectors;
    }

    /// Non-panicking form of [`LayerAssignment::validate`] used by
    /// [`WindowedDecoder::try_new`]: returns the reason the layering cannot
    /// cover `num_detectors` detectors, or `Ok(())`. The default accepts
    /// anything.
    ///
    /// # Errors
    ///
    /// Implementations return a human-readable description of the
    /// mismatch (e.g. a block size that does not divide the detector
    /// count).
    fn check(&self, num_detectors: usize) -> Result<(), String> {
        let _ = num_detectors;
        Ok(())
    }
}

/// Layering by contiguous equal-size blocks of detector indices (valid for
/// circuits that emit detectors round by round, as the builders here do).
#[derive(Debug, Clone, Copy)]
pub struct UniformLayers {
    /// Detectors per layer.
    pub detectors_per_layer: usize,
}

impl LayerAssignment for UniformLayers {
    fn layer_of(&self, d: u32) -> usize {
        d as usize / self.detectors_per_layer
    }

    /// Rejects a detector count the uniform layering cannot represent.
    ///
    /// # Panics
    ///
    /// Panics if `detectors_per_layer` is zero or does not divide
    /// `num_detectors` — a trailing partial layer means the block size does
    /// not match the circuit's round structure, and every detector after
    /// the mismatch would land in the wrong layer.
    fn validate(&self, num_detectors: usize) {
        raa_stabsim::validate_uniform_layers(num_detectors, self.detectors_per_layer);
    }

    fn check(&self, num_detectors: usize) -> Result<(), String> {
        if self.detectors_per_layer == 0 {
            return Err("detectors_per_layer must be at least 1".into());
        }
        if !num_detectors.is_multiple_of(self.detectors_per_layer) {
            return Err(format!(
                "detector count {num_detectors} is not divisible by detectors_per_layer {}",
                self.detectors_per_layer
            ));
        }
        Ok(())
    }
}

/// One compiled window template: a standalone decoder over a slab of
/// layers, shared by every window position with the same local structure.
#[derive(Debug)]
struct WindowTemplate {
    /// Union–find decoder over the slab's subgraph, with reach tracking on
    /// and its own cross-window, cross-shot component memo.
    decoder: UnionFindDecoder,
    /// Bitset over template edges: incident to a rim node whose
    /// neighborhood the slab clips. A decode whose reach touches this set
    /// may diverge from the whole-circuit decode and must be redone on it.
    unsafe_mask: Vec<u64>,
    /// Fast path for bulk templates deep inside the circuit: no rim at all.
    has_unsafe: bool,
    /// Per template edge: its effect when it appears in a correction — the
    /// observable mask to accumulate and the slab-relative node to project
    /// forward (`u32::MAX` = none). Buffer-only edges are `{0, MAX}`,
    /// i.e. no-ops. Precomputable because the commit boundary sits at a
    /// fixed layer offset inside the slab (part of [`TemplateKey`]).
    commit_ops: Vec<CommitOp>,
    /// Whole-step memo: rebased window syndrome → step outcome. The full
    /// outcome of a window step is a pure function of (template, rebased
    /// defects), so repeats across shots and window positions — the common
    /// case at physical error rates — skip the decode entirely.
    memo: RwLock<StepMemo>,
}

impl Clone for WindowTemplate {
    fn clone(&self) -> Self {
        Self {
            decoder: self.decoder.clone(),
            unsafe_mask: self.unsafe_mask.clone(),
            has_unsafe: self.has_unsafe,
            commit_ops: self.commit_ops.clone(),
            memo: RwLock::new(
                self.memo
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            ),
        }
    }
}

/// Effect of one template edge on a window step's committed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CommitOp {
    /// Observables accumulated when this edge is in the correction (zero
    /// for buffer-only edges, whose correction is provisional).
    observables: u64,
    /// Slab-relative id of the buffer-side endpoint a crossing edge
    /// projects forward, or `u32::MAX` for none.
    toggle: u32,
}

/// One memoized window-step outcome (see [`WindowTemplate::memo`]).
#[derive(Debug, Clone)]
struct StepEntry {
    /// Observable delta committed by the step.
    observables: u64,
    /// Slab-relative defects projected past the commit boundary, sorted,
    /// XOR-collapsed (a node projected twice cancels).
    toggles: Box<[u32]>,
}

/// Binds one window position to its [`WindowTemplate`].
#[derive(Debug, Clone, Copy)]
struct TemplateInstance {
    /// Index into `WindowedDecoder::templates`.
    template: u32,
    /// First full-circuit detector id of the slab; subtracted from defects
    /// before the template decode and added back to projections.
    node_base: u32,
}

/// Structural identity of a window slab, used to dedup templates across
/// window positions. Two windows with equal keys and equal commit ops
/// decode identically up to the constant node offset of
/// [`TemplateInstance`].
#[derive(PartialEq, Eq, Hash)]
struct TemplateKey {
    num_nodes: u32,
    /// Layer offset of the window start inside the slab: head windows
    /// truncate the slab below, shifting the commit boundary relative to
    /// it, so they must not share a template with bulk windows even when
    /// the edge structure happens to match.
    window_offset: u32,
    /// Per template edge: rebased endpoints (`u32::MAX` = boundary),
    /// quantized growth weight, observable mask.
    edges: Vec<(u32, u32, u32, u64)>,
    unsafe_mask: Vec<u64>,
}

/// A sliding-window wrapper around the union–find decoder.
///
/// # Example: incremental (streaming) decoding
///
/// ```
/// use raa_stabsim::{Circuit, MeasRecord, DetectorErrorModel};
/// use raa_decode::{DecodingGraph, UniformLayers, WindowedDecoder, WindowScratch, WindowState};
///
/// // Four rounds of one repeated measurement: one detector per layer.
/// let mut c = Circuit::new();
/// c.r(&[0]);
/// for _ in 0..4 {
///     c.x_error(&[0], 0.1);
///     c.mr(&[0]);
///     c.detector(&[MeasRecord::back(1)]);
/// }
/// c.observable_include(0, &[MeasRecord::back(1)]);
/// let dem = DetectorErrorModel::from_circuit(&c);
/// let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
/// let w = WindowedDecoder::new(graph, UniformLayers { detectors_per_layer: 1 }, 1, 1);
///
/// // One X error in round 1 fires detectors 1 and 2. Stream them in as
/// // their layers finalize; the batch entry point gives the same answer.
/// let per_layer: [&[u32]; 4] = [&[], &[1], &[2], &[]];
/// let (mut state, mut scratch) = (WindowState::default(), WindowScratch::default());
/// w.stream_reset(&mut state);
/// for (layer, defects) in per_layer.iter().enumerate() {
///     w.stream_push(&mut state, defects);
///     w.stream_advance(&mut state, layer + 1, &mut scratch);
/// }
/// let streamed = w.stream_finish(&mut state, &mut scratch);
/// assert_eq!(streamed, w.decode_windowed(&[1, 2]));
/// ```
#[derive(Debug, Clone)]
pub struct WindowedDecoder<L: LayerAssignment> {
    inner: UnionFindDecoder,
    layers: L,
    /// Layers whose corrections are committed per window step.
    commit: usize,
    /// Additional look-ahead layers decoded but not committed.
    buffer: usize,
    num_layers: usize,
    /// Compiled window templates (see the [module docs](self)); empty when
    /// the window is global or the layering is not index-monotone.
    templates: Vec<WindowTemplate>,
    /// Per window position (`start / commit`): its template binding, or
    /// `None` to decode that window on the whole-circuit graph.
    instances: Vec<Option<TemplateInstance>>,
    use_templates: bool,
}

impl<L: LayerAssignment> WindowedDecoder<L> {
    /// Builds a windowed decoder over `graph` with the given layering,
    /// committing `commit` layers per step with `buffer` look-ahead layers.
    ///
    /// This constructor is deliberately permissive about *geometry*: a
    /// zero buffer and a window covering the whole circuit (the global
    /// fallback) are accepted, because convergence studies sweep exactly
    /// those regimes. Use [`WindowedDecoder::try_new`] to reject them with
    /// a typed error instead.
    ///
    /// # Panics
    ///
    /// Panics if `commit` is zero, or if `layers` rejects the graph's
    /// detector count (see [`LayerAssignment::validate`] — for
    /// [`UniformLayers`] that is a block size that does not divide it).
    pub fn new(graph: DecodingGraph, layers: L, commit: usize, buffer: usize) -> Self {
        assert!(commit >= 1, "must commit at least one layer per window");
        layers.validate(graph.num_detectors());
        Self::assemble(graph, layers, commit, buffer)
    }

    /// Like [`WindowedDecoder::new`], but validates the full window
    /// geometry up front instead of panicking mid-stream or silently
    /// constructing a degenerate decoder.
    ///
    /// # Errors
    ///
    /// * [`WindowError::ZeroCommit`] — the window would never advance.
    /// * [`WindowError::ZeroBuffer`] — no look-ahead: every
    ///   boundary-straddling error chain would be chopped.
    /// * [`WindowError::Layering`] — `layers` cannot cover the graph's
    ///   detectors ([`LayerAssignment::check`]).
    /// * [`WindowError::WindowExceedsCircuit`] — `commit + buffer` exceeds
    ///   the layer count, i.e. the "windowed" decoder would actually run
    ///   whole-circuit decodes.
    pub fn try_new(
        graph: DecodingGraph,
        layers: L,
        commit: usize,
        buffer: usize,
    ) -> Result<Self, WindowError> {
        if commit == 0 {
            return Err(WindowError::ZeroCommit);
        }
        if buffer == 0 {
            return Err(WindowError::ZeroBuffer);
        }
        layers
            .check(graph.num_detectors())
            .map_err(WindowError::Layering)?;
        let this = Self::assemble(graph, layers, commit, buffer);
        if this.is_global() {
            return Err(WindowError::WindowExceedsCircuit {
                window: commit + buffer,
                num_layers: this.num_layers,
            });
        }
        Ok(this)
    }

    fn assemble(graph: DecodingGraph, layers: L, commit: usize, buffer: usize) -> Self {
        let num_layers = (0..graph.num_detectors() as u32)
            .map(|d| layers.layer_of(d))
            .max()
            .map_or(0, |m| m + 1);
        let inner = UnionFindDecoder::new(graph);
        let (templates, instances) =
            Self::build_templates(&inner, &layers, commit, buffer, num_layers);
        Self {
            inner,
            layers,
            commit,
            buffer,
            num_layers,
            templates,
            instances,
            use_templates: true,
        }
    }

    /// En/disables the compiled window templates (on by default). Decoding
    /// outcomes are identical either way — templates change throughput
    /// only; the off position exists for A/B testing and as a reference
    /// for the equivalence tests.
    #[must_use]
    pub fn with_templates(mut self, enabled: bool) -> Self {
        self.use_templates = enabled;
        self
    }

    /// Compiles the window templates: one per structurally distinct window
    /// slab (see the [module docs](self)). Returns no templates when the
    /// window is global (nothing to slide) or when the layering is not
    /// monotone in detector index (slabs would not be contiguous id
    /// ranges).
    fn build_templates(
        inner: &UnionFindDecoder,
        layers: &L,
        commit: usize,
        buffer: usize,
        num_layers: usize,
    ) -> (Vec<WindowTemplate>, Vec<Option<TemplateInstance>>) {
        let mut templates = Vec::new();
        let mut instances = Vec::new();
        let cb = commit + buffer;
        if num_layers <= cb {
            return (templates, instances);
        }
        let graph = inner.graph();
        let compiled = inner.compiled();
        let nd = graph.num_detectors();
        // Contiguous slabs need layer(d) monotone in d.
        let mut layer_of_d = Vec::with_capacity(nd);
        let mut prev = 0usize;
        for d in 0..nd as u32 {
            let l = layers.layer_of(d);
            if l < prev || l >= num_layers {
                return (templates, instances);
            }
            prev = l;
            layer_of_d.push(l);
        }
        // layer_start[l] = first detector id in layer >= l.
        let mut layer_start = vec![0usize; num_layers + 1];
        let mut cursor = 0usize;
        for (l, s) in layer_start.iter_mut().enumerate() {
            while cursor < nd && layer_of_d[cursor] < l {
                cursor += 1;
            }
            *s = cursor;
        }
        // Per-edge node bounds and the largest layer span of any edge: the
        // slab margin must cover a whole extra window plus that span, so
        // every node a window's clusters can reach without touching the
        // rim has its complete neighborhood inside the slab.
        let edges = graph.edges();
        let mut span = 0usize;
        let mut bounds = Vec::with_capacity(edges.len());
        for e in edges {
            let (lo, hi) = match e.v {
                Some(v) => (e.u.min(v), e.u.max(v)),
                None => (e.u, e.u),
            };
            span = span.max(layer_of_d[hi as usize] - layer_of_d[lo as usize]);
            bounds.push((lo, hi));
        }
        let margin = cb + span;
        let mut keys: HashMap<TemplateKey, u32> = HashMap::new();
        let mut ids: Vec<u32> = Vec::new();
        for wi in 0..num_layers.div_ceil(commit) {
            let s = wi * commit;
            let tlo = s.saturating_sub(margin);
            let thi = (s + cb + margin).min(num_layers);
            let node_lo = layer_start[tlo] as u32;
            let node_hi = layer_start[thi] as u32;
            let nt = (node_hi - node_lo) as usize;
            if nt == 0 {
                instances.push(None);
                continue;
            }
            ids.clear();
            ids.extend(bounds.iter().enumerate().filter_map(|(ei, &(lo, hi))| {
                (lo >= node_lo && hi < node_hi).then_some(ei as u32)
            }));
            // A slab node is complete when the slab holds its whole
            // incident list; edges touching an incomplete (rim) node form
            // the unsafe set.
            let mut incident_count = vec![0u32; nt];
            for &ei in &ids {
                let e = &edges[ei as usize];
                incident_count[(e.u - node_lo) as usize] += 1;
                if let Some(v) = e.v {
                    incident_count[(v - node_lo) as usize] += 1;
                }
            }
            let complete: Vec<bool> = incident_count
                .iter()
                .enumerate()
                .map(|(n, &c)| c as usize == graph.incident(node_lo + n as u32).len())
                .collect();
            let words = ids.len().div_ceil(64).max(1);
            let mut unsafe_mask = vec![0u64; words];
            for (ti, &ei) in ids.iter().enumerate() {
                let e = &edges[ei as usize];
                let mut clipped = !complete[(e.u - node_lo) as usize];
                if let Some(v) = e.v {
                    clipped |= !complete[(v - node_lo) as usize];
                }
                if clipped {
                    unsafe_mask[ti >> 6] |= 1 << (ti & 63);
                }
            }
            // Per-edge commit effect for THIS window position: observables
            // to accumulate and the projection endpoint, relative to the
            // slab. Structurally equal windows must also agree on these
            // (their commit boundary could still cut the slab differently
            // under an exotic layering), so they double as a dedup check.
            let commit_end = s + commit;
            let ops: Vec<CommitOp> = ids
                .iter()
                .map(|&ei| {
                    let e = &edges[ei as usize];
                    let lu = layer_of_d[e.u as usize];
                    let lv = e.v.map_or(lu, |v| layer_of_d[v as usize]);
                    if lu.min(lv) >= commit_end {
                        return CommitOp {
                            observables: 0,
                            toggle: u32::MAX,
                        };
                    }
                    let toggle = if lu >= commit_end {
                        e.u - node_lo
                    } else {
                        match e.v {
                            Some(v) if lv >= commit_end => v - node_lo,
                            _ => u32::MAX,
                        }
                    };
                    CommitOp {
                        observables: e.observables,
                        toggle,
                    }
                })
                .collect();
            let key = TemplateKey {
                num_nodes: nt as u32,
                window_offset: (s - tlo) as u32,
                edges: ids
                    .iter()
                    .map(|&ei| {
                        let e = &edges[ei as usize];
                        (
                            e.u - node_lo,
                            e.v.map_or(u32::MAX, |v| v - node_lo),
                            compiled.weight(ei),
                            e.observables,
                        )
                    })
                    .collect(),
                unsafe_mask: unsafe_mask.clone(),
            };
            if let Some(&t) = keys.get(&key) {
                // Structural repeat: bind it to the existing template when
                // the commit boundary cuts the slab the same way (always
                // true for round-by-round DEMs; anything else decodes on
                // the whole-circuit graph).
                let ops_ok = templates[t as usize].commit_ops == ops;
                instances.push(ops_ok.then_some(TemplateInstance {
                    template: t,
                    node_base: node_lo,
                }));
                continue;
            }
            if templates.len() >= MAX_TEMPLATES {
                instances.push(None);
                continue;
            }
            // New structure: compile a template decoder for the slab. The
            // synthetic DEM replays the slab's mechanisms with rebased
            // detector ids, so the template's edge order, adjacency order
            // and float weights reproduce the full graph's exactly; the
            // growth quanta are copied outright (quantization normalizes
            // by the *global* max weight, which a slab cannot recompute).
            let errors = ids
                .iter()
                .map(|&ei| {
                    let e = &edges[ei as usize];
                    DemError {
                        probability: e.probability,
                        detectors: match e.v {
                            Some(v) => vec![e.u - node_lo, v - node_lo],
                            None => vec![e.u - node_lo],
                        },
                        observables: e.observables,
                    }
                })
                .collect();
            let dem = DetectorErrorModel {
                num_detectors: nt,
                num_observables: graph.num_observables(),
                errors,
            };
            let tgraph = DecodingGraph::from_dem(&dem)
                .expect("template mechanisms are graphlike by construction");
            let weights = ids.iter().map(|&ei| compiled.weight(ei)).collect();
            let tcompiled =
                CompiledGraph::compile_with_weights(&tgraph, weights, compiled.is_uniform());
            let decoder = UnionFindDecoder::from_parts(tgraph, tcompiled).with_reach_tracking(true);
            let has_unsafe = unsafe_mask.iter().any(|&w| w != 0);
            let t = templates.len() as u32;
            keys.insert(key, t);
            templates.push(WindowTemplate {
                decoder,
                unsafe_mask,
                has_unsafe,
                commit_ops: ops,
                memo: RwLock::new(StepMemo::default()),
            });
            instances.push(Some(TemplateInstance {
                template: t,
                node_base: node_lo,
            }));
        }
        (templates, instances)
    }

    /// Number of time layers seen in the graph.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Detectors in the underlying decoding graph.
    pub fn num_detectors(&self) -> usize {
        self.inner.graph().num_detectors()
    }

    /// The layer assignment.
    pub fn layers(&self) -> &L {
        &self.layers
    }

    /// Layers committed per window step.
    pub fn commit(&self) -> usize {
        self.commit
    }

    /// Look-ahead layers decoded but not committed per window step.
    pub fn buffer(&self) -> usize {
        self.buffer
    }

    /// Whether the window covers the whole circuit, in which case every
    /// decode falls back to one global union–find pass (exactly
    /// whole-circuit decoding).
    pub fn is_global(&self) -> bool {
        self.num_layers <= self.commit + self.buffer
    }

    /// Decodes by sliding a window with a fresh scratch; prefer
    /// [`WindowedDecoder::decode_windowed_into`] in loops.
    pub fn decode_windowed(&self, defects: &[u32]) -> u64 {
        self.decode_windowed_into(defects, &mut WindowScratch::default())
    }

    /// Decodes a full shot's defects (sorted ascending) by sliding a
    /// `commit + buffer` window over the layers; see the [module
    /// docs](self) for the commit/projection semantics. All working state
    /// lives in `scratch`.
    pub fn decode_windowed_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        if self.is_global() {
            return self.inner.predict_into(defects, &mut scratch.uf);
        }
        // Run the incremental engine over the complete defect list: the
        // batch and streaming entry points share every step, so they are
        // bit-identical by construction.
        let mut state = std::mem::take(&mut scratch.state);
        self.stream_reset(&mut state);
        self.stream_push(&mut state, defects);
        let observables = self.stream_finish(&mut state, scratch);
        scratch.state = state; // return the allocation
        observables
    }

    /// Resets a per-shot streaming state (reusing its allocation).
    pub fn stream_reset(&self, state: &mut WindowState) {
        state.remaining.clear();
        state.start = 0;
        state.observables = 0;
    }

    /// Feeds newly finalized defects (sorted ascending, no duplicates)
    /// into the pending syndrome. Layers must arrive in order: a pushed
    /// defect's layer must not precede a window step already run by
    /// [`WindowedDecoder::stream_advance`].
    pub fn stream_push(&self, state: &mut WindowState, defects: &[u32]) {
        for &d in defects {
            debug_assert!(
                self.layers.layer_of(d) >= state.start,
                "defect {d} pushed after its window was committed"
            );
            match state.remaining.binary_search(&d) {
                Ok(_) => debug_assert!(false, "defect {d} pushed twice"),
                Err(i) => state.remaining.insert(i, d),
            }
        }
    }

    /// Runs every window step whose full `commit + buffer` look-ahead lies
    /// within the first `available_layers` finalized layers. In the
    /// global-fallback regime this is a no-op (the one global decode
    /// happens in [`WindowedDecoder::stream_finish`]).
    pub fn stream_advance(
        &self,
        state: &mut WindowState,
        available_layers: usize,
        scratch: &mut WindowScratch,
    ) {
        if self.is_global() {
            return;
        }
        while state.start < self.num_layers
            && state.start + self.commit + self.buffer <= available_layers
        {
            self.step(state, scratch, None);
        }
    }

    /// Runs the remaining window steps (every layer is now available) and
    /// returns the accumulated observable prediction for the shot.
    pub fn stream_finish(&self, state: &mut WindowState, scratch: &mut WindowScratch) -> u64 {
        if self.is_global() {
            return self.inner.predict_into(&state.remaining, &mut scratch.uf);
        }
        while state.start < self.num_layers {
            self.step(state, scratch, None);
        }
        state.observables
    }

    /// Runs exactly one window step for a shot whose window defects the
    /// caller extracted directly (window-major streaming: [`crate::mc`]
    /// pulls them from the sampler's shot-major bitplanes). `fired` must
    /// be sorted ascending, duplicate-free, and confined to the open
    /// window's layers `[state.start, state.start + commit + buffer)`;
    /// it is XOR-merged with the shot's pending projected defects — the
    /// same merge [`WindowedDecoder::stream_push`]'s insert-then-toggle
    /// order produces, so the two drivers are bit-identical. Not
    /// available in the global-fallback regime (use
    /// [`WindowedDecoder::decode_windowed_into`]).
    pub fn stream_step_fired(
        &self,
        state: &mut WindowState,
        fired: &[u32],
        scratch: &mut WindowScratch,
    ) {
        debug_assert!(
            !self.is_global(),
            "window-major stepping needs a sliding window"
        );
        debug_assert!(
            state.start < self.num_layers,
            "shot already fully committed"
        );
        self.step(state, scratch, Some(fired));
    }

    /// One window step: decode `[start, start + commit + buffer)`, commit
    /// the correction's first `commit` layers, project crossing edges.
    /// `fired` optionally carries this window's externally extracted
    /// defects (see [`WindowedDecoder::stream_step_fired`]).
    fn step(&self, state: &mut WindowState, scratch: &mut WindowScratch, fired: Option<&[u32]>) {
        let start = state.start;
        let commit_end = start + self.commit;
        let window_end = commit_end + self.buffer;
        let in_range = |d: &u32| {
            let l = self.layers.layer_of(*d);
            l >= start && l < window_end
        };
        scratch.in_window.clear();
        match fired {
            None => scratch
                .in_window
                .extend(state.remaining.iter().copied().filter(|d| in_range(d))),
            Some(f) => {
                // Sorted XOR-merge of the fresh window defects with the
                // pending projections: a projection onto a detector that
                // fired cancels it, exactly as `toggle` would have.
                let mut rem = state
                    .remaining
                    .iter()
                    .copied()
                    .filter(|d| in_range(d))
                    .peekable();
                let mut new = f.iter().copied().peekable();
                loop {
                    match (rem.peek().copied(), new.peek().copied()) {
                        (None, None) => break,
                        (Some(a), None) => {
                            scratch.in_window.push(a);
                            rem.next();
                        }
                        (None, Some(b)) => {
                            scratch.in_window.push(b);
                            new.next();
                        }
                        (Some(a), Some(b)) => {
                            if a < b {
                                scratch.in_window.push(a);
                                rem.next();
                            } else if b < a {
                                scratch.in_window.push(b);
                                new.next();
                            } else {
                                rem.next();
                                new.next();
                            }
                        }
                    }
                }
            }
        }
        if !scratch.in_window.is_empty() && !self.template_step(state, scratch, start) {
            self.inner.decode_into(&scratch.in_window, &mut scratch.uf);
            let edges = self.inner.graph().edges();
            for &ei in scratch.uf.correction() {
                self.commit_edge(state, commit_end, &edges[ei as usize]);
            }
        }
        // Defects of the committed region are consumed (matched or
        // projected forward); later layers stay pending.
        let layers = &self.layers;
        state
            .remaining
            .retain(|&d| layers.layer_of(d) >= commit_end);
        state.start = commit_end;
    }

    /// Decodes the current window on its compiled template, if this window
    /// position has one and the decode stays clear of the slab rim.
    /// Returns whether the step was fully handled (correction committed).
    ///
    /// The step outcome — observable delta plus projected defects — is a
    /// pure function of the rebased window syndrome, so it is memoized per
    /// template: a repeated syndrome (across shots, window positions and
    /// batches) costs one hash lookup instead of a decode.
    fn template_step(
        &self,
        state: &mut WindowState,
        scratch: &mut WindowScratch,
        start: usize,
    ) -> bool {
        if !self.use_templates {
            return false;
        }
        debug_assert_eq!(start % self.commit, 0);
        let Some(inst) = self.instances.get(start / self.commit).copied().flatten() else {
            return false;
        };
        let tpl = &self.templates[inst.template as usize];
        let nt = tpl.decoder.graph().num_detectors() as u32;
        scratch.rebased.clear();
        for &d in &scratch.in_window {
            debug_assert!(d >= inst.node_base, "window defect below its slab");
            let reb = d - inst.node_base;
            debug_assert!(reb < nt, "window defect above its slab");
            scratch.rebased.push(reb);
        }
        {
            let memo = tpl.memo.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(e) = memo.get(scratch.rebased.as_slice()) {
                state.observables ^= e.observables;
                for &t in e.toggles.iter() {
                    toggle(&mut state.remaining, inst.node_base + t);
                }
                return true;
            }
        }
        tpl.decoder.decode_into(&scratch.rebased, &mut scratch.uf);
        if tpl.has_unsafe && scratch.uf.reach_intersects(&tpl.unsafe_mask) {
            // The clusters reached a clipped neighborhood: only the
            // whole-circuit decode is authoritative out there. Never
            // memoized — the outcome depends on graph beyond the slab.
            return false;
        }
        // Apply the correction through the template's precompiled commit
        // ops, recording the outcome for the memo.
        let mut observables = 0u64;
        scratch.toggles.clear();
        for &tei in scratch.uf.correction() {
            let op = tpl.commit_ops[tei as usize];
            observables ^= op.observables;
            if op.toggle != u32::MAX {
                scratch.toggles.push(op.toggle);
            }
        }
        // XOR-collapse: projecting the same node an even number of times
        // cancels (two crossing edges sharing a buffer endpoint).
        scratch.toggles.sort_unstable();
        let mut w = 0usize;
        let mut i = 0usize;
        while i < scratch.toggles.len() {
            let v = scratch.toggles[i];
            let mut run = 1usize;
            while i + run < scratch.toggles.len() && scratch.toggles[i + run] == v {
                run += 1;
            }
            if run % 2 == 1 {
                scratch.toggles[w] = v;
                w += 1;
            }
            i += run;
        }
        scratch.toggles.truncate(w);
        state.observables ^= observables;
        for &t in &scratch.toggles {
            toggle(&mut state.remaining, inst.node_base + t);
        }
        let mut memo = tpl.memo.write().unwrap_or_else(PoisonError::into_inner);
        if memo.len() >= STEP_MEMO_MAX_ENTRIES {
            memo.clear();
        }
        memo.insert(
            scratch.rebased.as_slice().into(),
            StepEntry {
                observables,
                toggles: scratch.toggles.as_slice().into(),
            },
        );
        true
    }

    /// Commits one correction edge: accumulate its observables unless it
    /// lies entirely in the buffer, and project a crossing edge's
    /// buffer-side endpoint forward.
    fn commit_edge(&self, state: &mut WindowState, commit_end: usize, e: &Edge) {
        let lu = self.layers.layer_of(e.u);
        let lv = e.v.map_or(lu, |v| self.layers.layer_of(v));
        if lu.min(lv) >= commit_end {
            return; // entirely in the buffer: re-decoded later
        }
        state.observables ^= e.observables;
        // A crossing edge hands its buffer-side endpoint to the next
        // window as a projected defect.
        if lu >= commit_end {
            toggle(&mut state.remaining, e.u);
        } else if let Some(v) = e.v {
            if lv >= commit_end {
                toggle(&mut state.remaining, v);
            }
        }
    }
}

impl<L: LayerAssignment> Decoder for WindowedDecoder<L> {
    type Scratch = WindowScratch;

    fn predict_into(&self, defects: &[u32], scratch: &mut WindowScratch) -> u64 {
        self.decode_windowed_into(defects, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc;
    use raa_stabsim::{Circuit, DetectorErrorModel, MeasRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// d-bit repetition code memory over `rounds` rounds; detectors come out
    /// in per-round blocks of (d-1), so UniformLayers applies.
    fn repetition(d: usize, rounds: usize, p: f64) -> Circuit {
        let n_anc = d - 1;
        let data: Vec<u32> = (0..d as u32).map(|i| 2 * i).collect();
        let anc: Vec<u32> = (0..n_anc as u32).map(|i| 2 * i + 1).collect();
        let mut c = Circuit::new();
        c.r(&(0..(d + n_anc) as u32).collect::<Vec<_>>());
        for round in 0..rounds {
            c.x_error(&data, p);
            let pairs: Vec<(u32, u32)> = (0..n_anc)
                .flat_map(|i| [(data[i], anc[i]), (data[i + 1], anc[i])])
                .collect();
            c.cx(&pairs);
            c.mr(&anc);
            for i in 0..n_anc {
                if round == 0 {
                    c.detector(&[MeasRecord::back(n_anc - i)]);
                } else {
                    c.detector(&[MeasRecord::back(n_anc - i), MeasRecord::back(2 * n_anc - i)]);
                }
            }
        }
        c.m(&data);
        for i in 0..n_anc {
            c.detector(&[
                MeasRecord::back(d - i),
                MeasRecord::back(d - i - 1),
                MeasRecord::back(d + n_anc - i),
            ]);
        }
        c.observable_include(0, &[MeasRecord::back(d)]);
        c
    }

    fn build(
        c: &Circuit,
        commit: usize,
        buffer: usize,
        per_layer: usize,
    ) -> WindowedDecoder<UniformLayers> {
        let dem = DetectorErrorModel::from_circuit(c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        WindowedDecoder::new(
            graph,
            UniformLayers {
                detectors_per_layer: per_layer,
            },
            commit,
            buffer,
        )
    }

    #[test]
    fn small_circuit_falls_back_to_global() {
        let c = repetition(3, 2, 0.05);
        let w = build(&c, 4, 4, 2);
        assert!(w.is_global());
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        for syndrome in [vec![0u32], vec![1, 3], vec![0, 2, 4]] {
            assert_eq!(w.predict(&syndrome), global.predict(&syndrome));
        }
    }

    #[test]
    fn layer_counting() {
        let c = repetition(5, 10, 0.01);
        let w = build(&c, 2, 2, 4);
        // 10 rounds + final layer of 4 detectors = 11 layers.
        assert_eq!(w.num_layers(), 11);
        assert_eq!(w.num_detectors(), 44);
        assert!(!w.is_global());
    }

    #[test]
    fn windowed_accuracy_close_to_global() {
        let p = 0.04;
        let c = repetition(5, 12, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        let windowed = build(&c, 3, 3, 4);
        let r_g = mc::logical_error_rate(&c, &global, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        let r_w = mc::logical_error_rate(&c, &windowed, 12_000, &mut StdRng::seed_from_u64(1))
            .logical_error_rate();
        assert!(
            r_w <= r_g * 2.0 + 0.01,
            "windowed {r_w} vs global {r_g}: buffer should keep accuracy close"
        );
        assert!(r_w < p, "windowed decoding must still beat raw errors");
    }

    #[test]
    fn bigger_buffer_does_not_hurt() {
        let p = 0.05;
        let c = repetition(5, 12, p);
        let narrow = build(&c, 2, 1, 4);
        let wide = build(&c, 2, 5, 4);
        let r_narrow = mc::logical_error_rate(&c, &narrow, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        let r_wide = mc::logical_error_rate(&c, &wide, 10_000, &mut StdRng::seed_from_u64(2))
            .logical_error_rate();
        assert!(
            r_wide <= r_narrow * 1.25 + 0.01,
            "wide buffer {r_wide} vs narrow {r_narrow}"
        );
    }

    #[test]
    fn projection_resolves_boundary_straddling_pair() {
        // Two defects in adjacent rounds of the same chain position are one
        // measurement-error edge. With commit = 1 the pair straddles every
        // commit boundary; projection must still match them internally
        // (no observable flip), where a projection-free chop would match
        // each to its nearest boundary separately.
        let c = repetition(5, 10, 0.01);
        let w = build(&c, 1, 2, 4);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let global = UnionFindDecoder::new(graph);
        // Same chain position (detector 1 of each round block), rounds 4/5.
        let pair = vec![4 * 4 + 1, 5 * 4 + 1];
        assert_eq!(w.predict(&pair), global.predict(&pair));
    }

    #[test]
    fn streaming_session_matches_batch_decode() {
        // Feeding the same defects layer by layer through the streaming
        // session must reproduce the batch decode bit for bit, for every
        // commit/buffer geometry.
        let p = 0.06;
        let c = repetition(5, 12, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let shots = 400;
        let mut syndromes = raa_stabsim::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(
            shots,
            &mut StdRng::seed_from_u64(42),
            &mut syndromes,
            &mut masks,
        );
        for (commit, buffer) in [(1usize, 0usize), (1, 2), (2, 3), (3, 1)] {
            let w = build(&c, commit, buffer, 4);
            let mut scratch = WindowScratch::default();
            let mut state = WindowState::default();
            let mut defects = Vec::new();
            let mut layer_defects = Vec::new();
            for s in 0..shots {
                syndromes.fired_into(s, &mut defects);
                let batch = w.decode_windowed_into(&defects, &mut scratch);

                w.stream_reset(&mut state);
                for layer in 0..w.num_layers() {
                    layer_defects.clear();
                    layer_defects.extend(
                        defects
                            .iter()
                            .copied()
                            .filter(|&d| w.layers().layer_of(d) == layer),
                    );
                    w.stream_push(&mut state, &layer_defects);
                    w.stream_advance(&mut state, layer + 1, &mut scratch);
                }
                let streamed = w.stream_finish(&mut state, &mut scratch);
                assert_eq!(
                    batch, streamed,
                    "shot {s}, commit {commit}, buffer {buffer}"
                );
            }
        }
    }

    #[test]
    fn templates_change_throughput_not_outcomes() {
        // The compiled window templates and the whole-circuit window path
        // must agree shot for shot — including head and tail windows.
        let p = 0.06;
        let c = repetition(5, 14, p);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let mut syndromes = raa_stabsim::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(
            500,
            &mut StdRng::seed_from_u64(17),
            &mut syndromes,
            &mut masks,
        );
        for (commit, buffer) in [(1usize, 1usize), (1, 2), (2, 3), (3, 2)] {
            let with = build(&c, commit, buffer, 4);
            assert!(
                !with.templates.is_empty(),
                "uniform circuit must compile templates (commit {commit}, buffer {buffer})"
            );
            let without = build(&c, commit, buffer, 4).with_templates(false);
            let mut s_with = WindowScratch::default();
            let mut s_without = WindowScratch::default();
            let mut defects = Vec::new();
            for s in 0..syndromes.num_shots() {
                syndromes.fired_into(s, &mut defects);
                assert_eq!(
                    with.decode_windowed_into(&defects, &mut s_with),
                    without.decode_windowed_into(&defects, &mut s_without),
                    "shot {s}, commit {commit}, buffer {buffer}"
                );
            }
        }
    }

    #[test]
    fn window_positions_share_the_bulk_template() {
        // Time-translation invariance: the interior windows of a deep
        // uniform circuit must all bind to one template; only head/tail
        // boundary variants may add more.
        let c = repetition(5, 40, 0.01);
        let w = build(&c, 2, 3, 4);
        assert!(!w.templates.is_empty());
        let bound = w.instances.iter().filter(|i| i.is_some()).count();
        assert_eq!(bound, w.instances.len(), "every window should bind");
        assert!(
            w.templates.len() < w.instances.len() / 2,
            "{} templates for {} windows: dedup failed",
            w.templates.len(),
            w.instances.len()
        );
    }

    #[test]
    fn pending_state_stays_window_sized() {
        // The streaming session's per-shot memory is the projected syndrome
        // of the open window — it must not accumulate across a deep shot.
        let c = repetition(3, 200, 0.05);
        let w = build(&c, 2, 2, 2);
        let dem = DetectorErrorModel::from_circuit(&c);
        let sampler = raa_stabsim::DemSampler::new(&dem);
        let mut syndromes = raa_stabsim::SyndromeBatch::default();
        let mut masks = Vec::new();
        sampler.sample_syndromes_into(
            64,
            &mut StdRng::seed_from_u64(9),
            &mut syndromes,
            &mut masks,
        );
        let mut scratch = WindowScratch::default();
        let mut state = WindowState::default();
        let mut defects = Vec::new();
        let mut layer_defects = Vec::new();
        let window_detectors = (2 + 2 + 1) * 2; // commit+buffer+1 layers is ample
        for s in 0..64 {
            syndromes.fired_into(s, &mut defects);
            w.stream_reset(&mut state);
            for layer in 0..w.num_layers() {
                layer_defects.clear();
                layer_defects.extend(
                    defects
                        .iter()
                        .copied()
                        .filter(|&d| w.layers().layer_of(d) == layer),
                );
                w.stream_push(&mut state, &layer_defects);
                w.stream_advance(&mut state, layer + 1, &mut scratch);
                assert!(
                    state.pending_defects() <= window_detectors,
                    "pending {} defects at layer {layer} exceeds the window",
                    state.pending_defects()
                );
            }
            w.stream_finish(&mut state, &mut scratch);
        }
    }

    #[test]
    fn try_new_reports_each_geometry_error() {
        let c = repetition(5, 10, 0.01);
        let dem = DetectorErrorModel::from_circuit(&c);
        let (graph, _) = DecodingGraph::from_dem_decomposed(&dem);
        let layers = UniformLayers {
            detectors_per_layer: 4,
        };
        let g = || graph.clone();
        assert_eq!(
            WindowedDecoder::try_new(g(), layers, 0, 2).err(),
            Some(WindowError::ZeroCommit)
        );
        assert_eq!(
            WindowedDecoder::try_new(g(), layers, 2, 0).err(),
            Some(WindowError::ZeroBuffer)
        );
        // 11 layers: a 6+6 window cannot slide.
        assert_eq!(
            WindowedDecoder::try_new(g(), layers, 6, 6).err(),
            Some(WindowError::WindowExceedsCircuit {
                window: 12,
                num_layers: 11
            })
        );
        // 44 detectors don't split into layers of 3.
        let bad = UniformLayers {
            detectors_per_layer: 3,
        };
        assert!(matches!(
            WindowedDecoder::try_new(g(), bad, 2, 2),
            Err(WindowError::Layering(_))
        ));
        // And the happy path still constructs a sliding decoder.
        let w = WindowedDecoder::try_new(g(), layers, 2, 3).expect("valid geometry");
        assert!(!w.is_global());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_commit() {
        let c = repetition(3, 2, 0.01);
        let _ = build(&c, 0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_non_divisible_layer_size() {
        // 44 detectors do not split into layers of 3: constructing the
        // decoder must fail loudly instead of silently misassigning.
        let c = repetition(5, 10, 0.01);
        let _ = build(&c, 2, 2, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_layer_size() {
        let c = repetition(3, 2, 0.01);
        let _ = build(&c, 1, 1, 0);
    }
}
